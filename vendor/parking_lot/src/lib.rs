//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of external APIs it uses. This crate
//! wraps `std::sync` primitives behind parking_lot's panic-free lock
//! API: `lock()`/`read()`/`write()` return guards directly, and a
//! poisoned lock (a panic while held) is treated as still usable, which
//! matches parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's infallible `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
        assert!(format!("{rw:?}").contains("RwLock"));
    }
}
