//! Sampling helpers (`prop::sample::Index`, `prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list of options, like real proptest's
/// `sample::select`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs options");
    Select(options)
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

/// A position into a runtime-sized collection: generated over the whole
/// `u64` domain and reduced modulo the collection length at use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Index {
        Index(raw)
    }

    /// An index in `[0, len)`; `len` must be nonzero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_reduces_into_bounds() {
        let idx = Index::from_raw(u64::MAX - 3);
        for len in 1..50 {
            assert!(idx.index(len) < len);
        }
    }
}
