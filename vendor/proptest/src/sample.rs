//! Sampling helpers (`prop::sample::Index`).

/// A position into a runtime-sized collection: generated over the whole
/// `u64` domain and reduced modulo the collection length at use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Index {
        Index(raw)
    }

    /// An index in `[0, len)`; `len` must be nonzero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_reduces_into_bounds() {
        let idx = Index::from_raw(u64::MAX - 3);
        for len in 1..50 {
            assert!(idx.index(len) < len);
        }
    }
}
