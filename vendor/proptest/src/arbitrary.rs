//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_domain() {
        let mut rng = TestRng::from_seed(3);
        let mut saw_negative = false;
        for _ in 0..100 {
            if any::<i32>().generate(&mut rng) < 0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
        let _ = any::<bool>().generate(&mut rng);
    }
}
