//! The deterministic case runner: config, RNG, and failure type.

use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: deterministic value generation, seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over the test's full path: stable per test, run-to-run.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniform_enough() {
        let seed = seed_from_name("a::b::c");
        let mut a = TestRng::from_seed(seed);
        let mut b = TestRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
        let mean: f64 = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05);
        assert!(a.below(7) < 7);
    }
}
