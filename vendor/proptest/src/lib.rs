//! Offline stand-in for the `proptest` crate.
//!
//! The build environment is air-gapped, so the workspace vendors the
//! subset of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, regex-string strategies, numeric
//! ranges, tuples, `prop_oneof!`, collection and char strategies, and
//! the `proptest!` test macro. Case generation is deterministic (seeded
//! from the test's module path) and there is **no shrinking**: a failing
//! case reports the assertion message and its case number, which is
//! reproducible run-to-run.

pub mod arbitrary;
pub mod bool;
pub mod char;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{bool, char, collection, option, sample, strategy, string};
    }
}

/// Define property tests: each `fn` runs `config.cases` deterministic
/// cases, generating every `name in strategy` binding fresh per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    $crate::test_runner::seed_from_name(concat!(
                        module_path!(), "::", stringify!($name)
                    )),
                );
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )*
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}
