//! Regex-string strategies for the pattern subset the workspace uses:
//! concatenations of literals and character classes (with ranges and
//! escapes), each optionally quantified with `{m}`, `{m,n}`, `?`, `*`,
//! or `+`. Unbounded quantifiers generate at most eight repeats.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy generating strings matching `pattern`.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

/// Pattern parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compile a regex pattern into a generator strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    Ok(RegexGeneratorStrategy {
        atoms: parse(pattern)?,
    })
}

/// One-shot helper used by the `&str` strategy impl.
pub(crate) fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> Result<String, Error> {
    Ok(string_regex(pattern)?.generate(rng))
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let span = (atom.max - atom.min + 1) as u64;
            let count = atom.min + rng.below(span) as usize;
            for _ in 0..count {
                out.push(atom.choices.pick(rng));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
struct Atom {
    choices: CharSet,
    min: usize,
    max: usize,
}

/// Inclusive character ranges; single characters are unit ranges.
#[derive(Debug, Clone)]
struct CharSet {
    ranges: Vec<(char, char)>,
    total: u64,
}

impl CharSet {
    fn new(ranges: Vec<(char, char)>) -> CharSet {
        let total = ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        CharSet { ranges, total }
    }

    fn literal(c: char) -> CharSet {
        CharSet::new(vec![(c, c)])
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut index = rng.below(self.total);
        for &(lo, hi) in &self.ranges {
            let size = hi as u64 - lo as u64 + 1;
            if index < size {
                return char::from_u32(lo as u32 + index as u32)
                    .expect("ranges hold valid scalar values");
            }
            index -= size;
        }
        unreachable!("index is below the total size")
    }
}

fn parse(pattern: &str) -> Result<Vec<Atom>, Error> {
    let err = |msg: &str| Error(format!("{msg} in {pattern:?}"));
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        None => return Err(err("unterminated character class")),
                        Some(']') => break,
                        Some('\\') => chars.next().ok_or_else(|| err("dangling escape"))?,
                        Some(c) => c,
                    };
                    // `a-z` is a range unless the dash closes the class.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                let hi = match chars.next() {
                                    Some('\\') => {
                                        chars.next().ok_or_else(|| err("dangling escape"))?
                                    }
                                    Some(c) => c,
                                    None => unreachable!("peeked"),
                                };
                                if hi < lo {
                                    return Err(err("inverted range"));
                                }
                                ranges.push((lo, hi));
                                continue;
                            }
                            _ => {}
                        }
                    }
                    ranges.push((lo, lo));
                }
                if ranges.is_empty() {
                    return Err(err("empty character class"));
                }
                CharSet::new(ranges)
            }
            '\\' => CharSet::literal(chars.next().ok_or_else(|| err("dangling escape"))?),
            '.' => CharSet::new(vec![(' ', '~')]),
            '{' | '}' | '*' | '+' | '?' => return Err(err("quantifier without a preceding atom")),
            c => CharSet::literal(c),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        None => return Err(err("unterminated quantifier")),
                        Some('}') => break,
                        Some(c) => spec.push(c),
                    }
                }
                let parse_count = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| err("bad quantifier bound"))
                };
                match spec.split_once(',') {
                    Some((lo, hi)) => (parse_count(lo)?, parse_count(hi)?),
                    None => {
                        let n = parse_count(&spec)?;
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        if max < min {
            return Err(err("inverted quantifier"));
        }
        atoms.push(Atom { choices, min, max });
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn generated_strings_match_their_patterns() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = string_regex("[a-z_][a-z0-9_]{0,24}")
                .unwrap()
                .generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 25);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let s = string_regex("[ -~]{0,32}").unwrap().generate(&mut rng);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let s = string_regex("[0-9.]{7,15}").unwrap().generate(&mut rng);
            assert!((7..=15).contains(&s.len()));

            let s = string_regex(r"[/a-z0-9~.*?()\[\]-]{0,24}")
                .unwrap()
                .generate(&mut rng);
            assert!(s.len() <= 24);

            let s = string_regex("x[ab]?z*").unwrap().generate(&mut rng);
            assert!(s.starts_with('x'));
        }
    }

    #[test]
    fn bad_patterns_are_rejected() {
        assert!(string_regex("[abc").is_err());
        assert!(string_regex("a{2,1}").is_err());
        assert!(string_regex("*a").is_err());
        assert!(string_regex("a{x}").is_err());
    }
}
