//! Character strategies (`proptest::char::range`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    low: u32,
    high: u32,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        // Re-draw on the (rare) surrogate gap inside wide ranges.
        loop {
            let code = self.low + rng.below(u64::from(self.high - self.low + 1)) as u32;
            if let Some(c) = char::from_u32(code) {
                return c;
            }
        }
    }
}

/// Uniform characters in `[low, high]` inclusive.
pub fn range(low: char, high: char) -> CharRange {
    assert!(low <= high, "inverted char range");
    CharRange {
        low: low as u32,
        high: high as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characters_stay_in_range() {
        let mut rng = TestRng::from_seed(9);
        let strategy = range('!', '~');
        for _ in 0..200 {
            let c = strategy.generate(&mut rng);
            assert!(('!'..='~').contains(&c));
        }
    }
}
