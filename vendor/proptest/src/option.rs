//! Optional-value strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some(inner)` three times out of four, `None` otherwise — the same
/// default weighting real proptest uses.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}
