//! Boolean strategies (`prop::bool::ANY`, `prop::bool::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A fair coin.
pub const ANY: Any = Any;

/// Strategy behind [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `true` with the given probability.
pub fn weighted(probability: f64) -> Weighted {
    Weighted(probability)
}

/// Strategy returned by [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted(f64);

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_f64() < self.0
    }
}
