//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest
/// there is no value tree and no shrinking — `generate` draws a fresh
/// value from the RNG each call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Unrolled recursion: apply `recurse` `depth` times to the leaf
    /// strategy. The size hints of the real API are accepted and
    /// ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy (clones share the underlying generator).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `source` mapped through `map`.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the total weight")
    }
}

/// String literals are regex strategies, like real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_regex(self, rng)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
    }
}

/// Types whose half-open ranges can be sampled uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self;
    /// The next representable value above `self`, for inclusive ranges;
    /// saturates at the type's maximum.
    fn next_up(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                assert!(low < high, "empty range strategy");
                let span = (high as i128 - low as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (low as i128 + offset as i128) as $ty
            }

            fn next_up(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                assert!(low < high, "empty range strategy");
                low + (rng.next_f64() as $ty) * (high - low)
            }

            fn next_up(self) -> Self {
                self
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(*self.start(), self.end().next_up(), rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (0u32..10).generate(&mut rng);
            assert!(v < 10);
            let v = (1u8..=255).generate(&mut rng);
            assert!(v >= 1);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
        let pair = (0i32..5, Just("x")).prop_map(|(n, s)| format!("{s}{n}"));
        let s = pair.generate(&mut rng);
        assert!(s.starts_with('x'));
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = rng();
        let union = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..1000).filter(|_| union.generate(&mut rng)).count();
        assert!(trues > 700, "trues {trues}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            #[allow(dead_code)] // generated, never read back
            Node(Vec<Tree>),
        }
        let strategy = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..50 {
            let _tree = strategy.generate(&mut rng);
        }
    }
}
