//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of `size.into()` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_the_range() {
        let mut rng = TestRng::from_seed(5);
        let strategy = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        assert_eq!(vec(0u8..10, 3).generate(&mut rng).len(), 3);
    }
}
