//! Offline placeholder for the `crossbeam` crate.
//!
//! Declared in manifests but unused in code; the package exists only so
//! dependency resolution works without network access.
