//! Offline placeholder for the `rand` crate.
//!
//! The workspace declares `rand` but draws all randomness from
//! `ganglia-net::rng::SplitMix64` for determinism, so nothing is needed
//! here. The package exists only so dependency resolution works without
//! network access.
