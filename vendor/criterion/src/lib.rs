//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks compile against the same API surface (groups, throughput,
//! `bench_with_input`, the `criterion_group!`/`criterion_main!` macros)
//! and, when run via `cargo bench`, time each closure with a simple
//! fixed-iteration wall-clock loop and print mean per-iteration times.
//! There is no statistical analysis, HTML report, or comparison state.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total / bencher.iterations;
        println!(
            "bench {label}: {mean:?}/iter ({} iters)",
            bencher.iterations
        );
    }
}

/// Times the closure handed to `iter`.
pub struct Bencher {
    total: Duration,
    iterations: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup, then a fixed measured batch: enough for the smoke
        // runs this stub supports.
        let _ = routine();
        const BATCH: u32 = 25;
        let start = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += BATCH;
    }
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units-of-work declaration; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(10)
            .throughput(Throughput::Bytes(8))
            .bench_function("plain", |b| b.iter(|| 1 + 1))
            .bench_with_input(BenchmarkId::new("with", 4), &4, |b, &n| b.iter(|| n * 2));
        group.finish();
        criterion.bench_function("top", |b| b.iter(|| ()));
    }
}
