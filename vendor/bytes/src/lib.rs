//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API this workspace uses —
//! [`Bytes`], [`BytesMut`], [`Buf`] for `&[u8]`, and [`BufMut`] — with
//! the same semantics (big-endian getters/putters, panic on underflow)
//! but a plain `Vec<u8>` representation instead of refcounted slices.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.as_slice()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self.0)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(capacity))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0.as_slice()))
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential big-endian reads from a byte source. Getters panic when
/// fewer than the needed bytes remain, exactly like the real crate —
/// callers check [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, count: usize);

    fn get_u8(&mut self) -> u8 {
        let [b] = self.take::<1>();
        b
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take())
    }

    fn get_i16(&mut self) -> i16 {
        i16::from_be_bytes(self.take())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take())
    }

    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.take())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take())
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    #[doc(hidden)]
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.copy_to_slice(&mut out);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "buffer underflow");
        *self = &self[count..];
    }
}

/// Sequential big-endian writes to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_bytes(&mut self, value: u8, count: usize) {
        for _ in 0..count {
            self.put_u8(value);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_f64(2.5);
        buf.put_bytes(0, 3);
        let frozen = buf.freeze();
        let mut input: &[u8] = &frozen;
        assert_eq!(input.remaining(), 15);
        assert_eq!(input.get_u32(), 0xDEAD_BEEF);
        assert_eq!(input.get_f64(), 2.5);
        input.advance(3);
        assert_eq!(input.remaining(), 0);
    }

    #[test]
    fn bytes_constructors() {
        assert_eq!(&*Bytes::from_static(b"abc"), b"abc");
        assert_eq!(&*Bytes::copy_from_slice(&[1, 2]), &[1, 2]);
        assert_eq!(Bytes::from_static(b"x"), Bytes::copy_from_slice(b"x"));
    }
}
