//! Escaping and unescaping of XML character data and attribute values.
//!
//! Both directions are written to avoid allocation in the common case:
//! Ganglia metric names and values are almost always plain ASCII with no
//! reserved characters, so `escape`/`unescape` return `Cow::Borrowed`
//! unless a substitution is actually required.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind, XmlResult};

/// Escape `&`, `<`, `>`, `"`, and `'` for use in character data or
/// attribute values.
///
/// Returns the input unchanged (borrowed) when no escaping is needed.
pub fn escape(raw: &str) -> Cow<'_, str> {
    let first = raw.bytes().position(needs_escape);
    let Some(first) = first else {
        return Cow::Borrowed(raw);
    };
    let mut out = String::with_capacity(raw.len() + 8);
    out.push_str(&raw[..first]);
    for ch in raw[first..].chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

fn needs_escape(b: u8) -> bool {
    matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')
}

/// Stream `raw` into `sink` with reserved characters escaped, without
/// building an intermediate `String`. Writes the longest clean run
/// between reserved characters in one call, so plain input is a single
/// `write_str`.
pub fn write_escaped<W: std::fmt::Write>(sink: &mut W, raw: &str) -> std::fmt::Result {
    let mut rest = raw;
    while let Some(hit) = rest.bytes().position(needs_escape) {
        sink.write_str(&rest[..hit])?;
        sink.write_str(match rest.as_bytes()[hit] {
            b'&' => "&amp;",
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'"' => "&quot;",
            _ => "&apos;",
        })?;
        rest = &rest[hit + 1..];
    }
    sink.write_str(rest)
}

/// Expand entity and numeric character references in `raw`.
///
/// Supports the five predefined entities (`amp`, `lt`, `gt`, `quot`,
/// `apos`) and decimal/hex character references (`&#NN;`, `&#xNN;`).
/// `offset` is the position of `raw` in the original document, used to
/// report errors against the full input.
pub fn unescape(raw: &str, offset: usize) -> XmlResult<Cow<'_, str>> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    unescape_into(raw, offset, &mut out)?;
    Ok(Cow::Owned(out))
}

/// Expand entity and numeric character references in `raw`, appending the
/// result to `out` instead of allocating a fresh string.
///
/// This is the scratch-buffer form of [`unescape`] used by the streaming
/// no-DOM ingest path: the caller owns `out` and reuses its allocation
/// across events, so a steady stream of escaped attribute values costs no
/// per-event allocation once the scratch has grown to its working size.
pub fn unescape_into(raw: &str, offset: usize, out: &mut String) -> XmlResult<()> {
    let mut rest = raw;
    let mut pos = 0usize;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        pos += amp;
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(XmlError::new(
                offset + pos,
                XmlErrorKind::BadEntity(truncate_for_error(after)),
            ));
        };
        let entity = &after[..semi];
        let expanded = expand_entity(entity)
            .ok_or_else(|| XmlError::new(offset + pos, XmlErrorKind::BadEntity(entity.into())))?;
        out.push(expanded);
        rest = &after[semi + 1..];
        pos += 1 + semi + 1;
    }
    out.push_str(rest);
    Ok(())
}

fn truncate_for_error(s: &str) -> String {
    s.chars().take(12).collect()
}

fn expand_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let body = entity.strip_prefix('#')?;
            let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                body.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed_both_ways() {
        assert!(matches!(escape("cpu_num"), Cow::Borrowed(_)));
        assert!(matches!(unescape("cpu_num", 0).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_all_reserved_characters() {
        assert_eq!(
            escape(r#"a<b>&"c'"#),
            "a&lt;b&gt;&amp;&quot;c&apos;".to_string()
        );
    }

    #[test]
    fn unescape_expands_predefined_entities() {
        assert_eq!(
            unescape("a&lt;b&gt;&amp;&quot;c&apos;", 0).unwrap(),
            r#"a<b>&"c'"#.to_string()
        );
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc".to_string());
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let err = unescape("x&bogus;y", 3).unwrap_err();
        assert_eq!(err.offset, 4);
        assert_eq!(err.kind, XmlErrorKind::BadEntity("bogus".into()));
    }

    #[test]
    fn unescape_rejects_unterminated_entity() {
        assert!(unescape("x&ampy", 0).is_err());
    }

    #[test]
    fn unescape_rejects_out_of_range_codepoint() {
        assert!(unescape("&#x110000;", 0).is_err());
        assert!(unescape("&#xD800;", 0).is_err()); // surrogate
    }

    #[test]
    fn write_escaped_matches_escape() {
        for raw in ["", "plain", "a&b", "<GRID>", "tick ' tock \" done", "üñí"] {
            let mut out = String::new();
            write_escaped(&mut out, raw).unwrap();
            assert_eq!(out, escape(raw));
        }
    }

    #[test]
    fn roundtrip_preserves_text() {
        for raw in ["", "plain", "a&b", "<GRID>", "tick ' tock \" done", "üñí"] {
            let escaped = escape(raw);
            let back = unescape(&escaped, 0).unwrap();
            assert_eq!(back, raw);
        }
    }
}
