//! The Ganglia XML data language.
//!
//! Ganglia's wide-area monitor (`gmetad`) and local-area monitor (`gmond`)
//! exchange monitoring state as XML streams over TCP. This crate implements
//! the XML machinery that the rest of the system is built on:
//!
//! * a zero-copy, SAX-style [`pull::PullParser`] — the hot path of the
//!   wide-area monitor is parsing child reports, so the parser borrows from
//!   the input buffer and allocates only when an escape sequence forces it;
//! * a small [`dom`] layer for callers (like the web viewer) that want a
//!   materialized tree;
//! * a streaming [`writer::XmlWriter`] used by every component that emits
//!   reports;
//! * [`escape`]/unescape helpers shared by all of the above;
//! * the tag and attribute names of the Ganglia DTD ([`names`]), including
//!   the `GRID` extension introduced by the paper (§3.2) and the summary
//!   tags `HOSTS` and `METRICS`.
//!
//! The grammar implemented here is the subset of XML that the Ganglia DTD
//! uses: elements, attributes, character data, comments, processing
//! instructions/declarations, and the five standard entities plus numeric
//! character references. DOCTYPE internal subsets and CDATA sections are
//! accepted and skipped.

pub mod dom;
pub mod dtd;
pub mod error;
pub mod escape;
pub mod names;
pub mod pull;
pub mod writer;

pub use dom::Element;
pub use error::{XmlError, XmlResult};
pub use pull::{AttrScratch, Attribute, Event, PullParser, StreamEvent};
pub use writer::XmlWriter;
