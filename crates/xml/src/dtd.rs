//! The Ganglia DTD, and a structural validator for it.
//!
//! Pseudo-gmond output "conforms to the Ganglia DTD, and therefore
//! requires the same processing effort by the gmeta system under study"
//! (paper §4) — this module is how the test suite holds every producer
//! in the workspace to that bar. [`validate`] checks element nesting and
//! required attributes against the DTD below (the 2.5.x DTD extended
//! with the paper's `GRID` and summary tags).

use crate::error::XmlResult;
use crate::names::{self, attr};
use crate::pull::{Event, PullParser};

/// The document type definition, as served by gmond/gmetad.
pub const GANGLIA_DTD: &str = r#"<!DOCTYPE GANGLIA_XML [
<!ELEMENT GANGLIA_XML (GRID|CLUSTER|HOST)*>
  <!ATTLIST GANGLIA_XML VERSION CDATA #REQUIRED>
  <!ATTLIST GANGLIA_XML SOURCE CDATA #REQUIRED>
<!ELEMENT GRID (CLUSTER|GRID|HOSTS|METRICS)*>
  <!ATTLIST GRID NAME CDATA #REQUIRED>
  <!ATTLIST GRID AUTHORITY CDATA #IMPLIED>
  <!ATTLIST GRID LOCALTIME CDATA #IMPLIED>
<!ELEMENT CLUSTER (HOST|HOSTS|METRICS)*>
  <!ATTLIST CLUSTER NAME CDATA #REQUIRED>
  <!ATTLIST CLUSTER OWNER CDATA #IMPLIED>
  <!ATTLIST CLUSTER LATLONG CDATA #IMPLIED>
  <!ATTLIST CLUSTER URL CDATA #IMPLIED>
  <!ATTLIST CLUSTER LOCALTIME CDATA #IMPLIED>
<!ELEMENT HOST (METRIC|EXTRA_DATA)*>
  <!ATTLIST HOST NAME CDATA #REQUIRED>
  <!ATTLIST HOST IP CDATA #IMPLIED>
  <!ATTLIST HOST REPORTED CDATA #IMPLIED>
  <!ATTLIST HOST TN CDATA #IMPLIED>
  <!ATTLIST HOST TMAX CDATA #IMPLIED>
  <!ATTLIST HOST DMAX CDATA #IMPLIED>
  <!ATTLIST HOST LOCATION CDATA #IMPLIED>
  <!ATTLIST HOST STARTED CDATA #IMPLIED>
<!ELEMENT METRIC (EXTRA_DATA*)>
  <!ATTLIST METRIC NAME CDATA #REQUIRED>
  <!ATTLIST METRIC VAL CDATA #REQUIRED>
  <!ATTLIST METRIC TYPE CDATA #REQUIRED>
  <!ATTLIST METRIC UNITS CDATA #IMPLIED>
  <!ATTLIST METRIC TN CDATA #IMPLIED>
  <!ATTLIST METRIC TMAX CDATA #IMPLIED>
  <!ATTLIST METRIC DMAX CDATA #IMPLIED>
  <!ATTLIST METRIC SLOPE CDATA #IMPLIED>
  <!ATTLIST METRIC SOURCE CDATA #IMPLIED>
<!ELEMENT HOSTS EMPTY>
  <!ATTLIST HOSTS UP CDATA #REQUIRED>
  <!ATTLIST HOSTS DOWN CDATA #REQUIRED>
<!ELEMENT METRICS EMPTY>
  <!ATTLIST METRICS NAME CDATA #REQUIRED>
  <!ATTLIST METRICS SUM CDATA #REQUIRED>
  <!ATTLIST METRICS NUM CDATA #REQUIRED>
  <!ATTLIST METRICS TYPE CDATA #IMPLIED>
  <!ATTLIST METRICS UNITS CDATA #IMPLIED>
  <!ATTLIST METRICS SLOPE CDATA #IMPLIED>
  <!ATTLIST METRICS SOURCE CDATA #IMPLIED>
<!ELEMENT EXTRA_DATA (EXTRA_ELEMENT*)>
<!ELEMENT EXTRA_ELEMENT EMPTY>
  <!ATTLIST EXTRA_ELEMENT NAME CDATA #REQUIRED>
  <!ATTLIST EXTRA_ELEMENT VAL CDATA #REQUIRED>
]>"#;

/// A structural violation of the DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdViolation {
    /// The root element is not `GANGLIA_XML`.
    BadRoot(String),
    /// `child` appeared directly inside `parent`, which the DTD forbids.
    BadNesting { parent: String, child: String },
    /// A required attribute is missing.
    MissingAttribute { element: String, attribute: String },
    /// An element the DTD does not define at all.
    UnknownElement(String),
    /// The underlying XML failed to parse.
    Malformed(String),
}

impl std::fmt::Display for DtdViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DtdViolation::BadRoot(root) => write!(f, "root element <{root}> is not GANGLIA_XML"),
            DtdViolation::BadNesting { parent, child } => {
                write!(f, "<{child}> may not appear inside <{parent}>")
            }
            DtdViolation::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing required attribute {attribute}")
            }
            DtdViolation::UnknownElement(name) => write!(f, "unknown element <{name}>"),
            DtdViolation::Malformed(e) => write!(f, "malformed XML: {e}"),
        }
    }
}

/// Allowed children per element.
fn allowed_children(parent: &str) -> Option<&'static [&'static str]> {
    Some(match parent {
        names::GANGLIA_XML => &[names::GRID, names::CLUSTER, names::HOST],
        names::GRID => &[names::CLUSTER, names::GRID, names::HOSTS, names::METRICS],
        names::CLUSTER => &[names::HOST, names::HOSTS, names::METRICS],
        names::HOST => &[names::METRIC, names::EXTRA_DATA],
        names::METRIC => &[names::EXTRA_DATA],
        names::EXTRA_DATA => &[names::EXTRA_ELEMENT],
        names::HOSTS | names::METRICS | names::EXTRA_ELEMENT => &[],
        _ => return None,
    })
}

/// Required attributes per element.
fn required_attributes(element: &str) -> &'static [&'static str] {
    match element {
        names::GANGLIA_XML => &[attr::VERSION, attr::SOURCE],
        names::GRID | names::CLUSTER | names::HOST => &[attr::NAME],
        names::METRIC => &[attr::NAME, attr::VAL, attr::TYPE],
        names::HOSTS => &[attr::UP, attr::DOWN],
        names::METRICS => &[attr::NAME, attr::SUM, attr::NUM],
        names::EXTRA_ELEMENT => &[attr::NAME, attr::VAL],
        _ => &[],
    }
}

/// Validate a document against the Ganglia DTD. Returns every violation
/// found (empty = conformant).
pub fn validate(input: &str) -> Vec<DtdViolation> {
    let mut violations = Vec::new();
    match validate_inner(input, &mut violations) {
        Ok(()) => {}
        Err(e) => violations.push(DtdViolation::Malformed(e.to_string())),
    }
    violations
}

fn validate_inner(input: &str, violations: &mut Vec<DtdViolation>) -> XmlResult<()> {
    let mut parser = PullParser::new(input);
    let mut stack: Vec<String> = Vec::new();
    while let Some(event) = parser.next_event()? {
        match event {
            Event::Start {
                name, attributes, ..
            } => {
                if allowed_children(name).is_none() {
                    violations.push(DtdViolation::UnknownElement(name.to_string()));
                } else {
                    match stack.last() {
                        None => {
                            if name != names::GANGLIA_XML {
                                violations.push(DtdViolation::BadRoot(name.to_string()));
                            }
                        }
                        Some(parent) => {
                            let allowed = allowed_children(parent).unwrap_or(&[]);
                            if !allowed.contains(&name) {
                                violations.push(DtdViolation::BadNesting {
                                    parent: parent.clone(),
                                    child: name.to_string(),
                                });
                            }
                        }
                    }
                    for required in required_attributes(name) {
                        if !attributes.iter().any(|a| a.name == *required) {
                            violations.push(DtdViolation::MissingAttribute {
                                element: name.to_string(),
                                attribute: (*required).to_string(),
                            });
                        }
                    }
                }
                stack.push(name.to_string());
            }
            Event::End { .. } => {
                stack.pop();
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmetad">
      <GRID NAME="SDSC" AUTHORITY="http://sdsc/">
        <CLUSTER NAME="Meteor">
          <HOST NAME="n0"><METRIC NAME="load_one" VAL="0.5" TYPE="float"/></HOST>
        </CLUSTER>
        <GRID NAME="ATTIC">
          <HOSTS UP="10" DOWN="1"/>
          <METRICS NAME="cpu_num" SUM="20" NUM="10"/>
        </GRID>
      </GRID></GANGLIA_XML>"#;

    #[test]
    fn conformant_document_passes() {
        assert_eq!(validate(GOOD), vec![]);
    }

    #[test]
    fn dtd_text_is_parseable_prolog() {
        let doc = format!("{GANGLIA_DTD}{GOOD}");
        assert_eq!(validate(&doc), vec![]);
    }

    #[test]
    fn bad_root_is_flagged() {
        let violations = validate(r#"<HTML VERSION="1" SOURCE="x"/>"#);
        assert!(violations.contains(&DtdViolation::UnknownElement("HTML".into())));
    }

    #[test]
    fn bad_nesting_is_flagged() {
        let violations = validate(
            r#"<GANGLIA_XML VERSION="1" SOURCE="x"><HOST NAME="h"><CLUSTER NAME="c"/></HOST></GANGLIA_XML>"#,
        );
        assert_eq!(
            violations,
            vec![DtdViolation::BadNesting {
                parent: "HOST".into(),
                child: "CLUSTER".into()
            }]
        );
    }

    #[test]
    fn missing_required_attributes_are_flagged() {
        let violations = validate(
            r#"<GANGLIA_XML VERSION="1" SOURCE="x"><CLUSTER NAME="c"><HOST NAME="h"><METRIC NAME="m" VAL="1"/></HOST></CLUSTER></GANGLIA_XML>"#,
        );
        assert_eq!(
            violations,
            vec![DtdViolation::MissingAttribute {
                element: "METRIC".into(),
                attribute: "TYPE".into()
            }]
        );
    }

    #[test]
    fn malformed_xml_is_one_violation() {
        let violations = validate("<GANGLIA_XML VERSION='1' SOURCE='x'><oops");
        assert!(matches!(
            violations.last(),
            Some(DtdViolation::Malformed(_))
        ));
    }

    #[test]
    fn summary_tags_only_inside_grid_or_cluster() {
        let violations = validate(
            r#"<GANGLIA_XML VERSION="1" SOURCE="x"><HOSTS UP="1" DOWN="0"/></GANGLIA_XML>"#,
        );
        assert_eq!(
            violations,
            vec![DtdViolation::BadNesting {
                parent: "GANGLIA_XML".into(),
                child: "HOSTS".into()
            }]
        );
    }
}
