//! Streaming XML writer.
//!
//! Every Ganglia component that produces reports — gmond serving its
//! cluster state, gmetad answering a query — streams tags directly into an
//! output buffer with this writer. It tracks the open-element stack so the
//! output is well-formed by construction, and escapes attribute values and
//! character data.

use std::fmt::{self, Write};

use crate::escape::{escape, write_escaped};

/// The standard header Ganglia puts in front of every report.
pub const XML_DECLARATION: &str =
    "<?xml version=\"1.0\" encoding=\"ISO-8859-1\" standalone=\"yes\"?>";

/// A streaming writer over any [`fmt::Write`] sink (typically `String`).
///
/// Open-element names live in one shared scratch buffer (`names`) with a
/// stack of start offsets, so deep documents never allocate a `String`
/// per element on the render hot path.
pub struct XmlWriter<'w, W: Write> {
    sink: &'w mut W,
    /// Start offsets of open-element names within `names`.
    stack: Vec<usize>,
    /// Concatenated open-element names; `stack` delimits them.
    names: String,
    /// Pretty-print with 2-space indentation when set.
    indent: bool,
    /// Writer is positioned at the start of a fresh line.
    at_line_start: bool,
    error: Option<fmt::Error>,
}

impl<'w, W: Write> XmlWriter<'w, W> {
    /// Create a compact (non-indented) writer.
    pub fn new(sink: &'w mut W) -> Self {
        XmlWriter {
            sink,
            stack: Vec::new(),
            names: String::new(),
            indent: false,
            at_line_start: true,
            error: None,
        }
    }

    /// Create a pretty-printing writer (one element per line, 2-space
    /// indent). Used for human-facing output; the wire format is compact.
    pub fn pretty(sink: &'w mut W) -> Self {
        XmlWriter {
            indent: true,
            ..XmlWriter::new(sink)
        }
    }

    fn put(&mut self, s: &str) {
        if self.error.is_none() {
            if let Err(e) = self.sink.write_str(s) {
                self.error = Some(e);
            }
        }
    }

    fn newline_and_indent(&mut self) {
        if self.indent && !self.at_line_start {
            self.put("\n");
            for _ in 0..self.stack.len() {
                self.put("  ");
            }
        }
        self.at_line_start = false;
    }

    /// Emit the standard XML declaration.
    pub fn declaration(&mut self) {
        self.put(XML_DECLARATION);
        if self.indent {
            self.put("\n");
            self.at_line_start = true;
        }
    }

    /// Open `<name attr...>`.
    pub fn start_element(&mut self, name: &str, attrs: &[(&str, &str)]) {
        self.newline_and_indent();
        self.put("<");
        self.put(name);
        self.write_attrs(attrs);
        self.put(">");
        self.stack.push(self.names.len());
        self.names.push_str(name);
    }

    /// Emit `<name attr.../>`.
    pub fn empty_element(&mut self, name: &str, attrs: &[(&str, &str)]) {
        self.newline_and_indent();
        self.put("<");
        self.put(name);
        self.write_attrs(attrs);
        self.put("/>");
    }

    fn write_attrs(&mut self, attrs: &[(&str, &str)]) {
        for (name, value) in attrs {
            self.put(" ");
            self.put(name);
            self.put("=\"");
            if self.error.is_none() {
                // Streamed escaping: no intermediate String even when a
                // value does contain reserved characters.
                if let Err(e) = write_escaped(self.sink, value) {
                    self.error = Some(e);
                }
            }
            self.put("\"");
        }
    }

    /// Close the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open — that is a bug in the caller, not a
    /// runtime condition.
    pub fn end_element(&mut self) {
        let start = self
            .stack
            .pop()
            .expect("end_element called with no element open");
        self.newline_and_indent();
        if self.error.is_none() {
            let write = self
                .sink
                .write_str("</")
                .and_then(|()| self.sink.write_str(&self.names[start..]))
                .and_then(|()| self.sink.write_str(">"));
            if let Err(e) = write {
                self.error = Some(e);
            }
        }
        self.names.truncate(start);
    }

    /// Emit escaped character data inside the current element.
    pub fn text(&mut self, text: &str) {
        let escaped = escape(text);
        self.newline_and_indent();
        self.put(&escaped);
    }

    /// Emit a comment. The body must not contain `--`.
    pub fn comment(&mut self, body: &str) {
        debug_assert!(!body.contains("--"), "comment body must not contain --");
        self.newline_and_indent();
        self.put("<!--");
        self.put(body);
        self.put("-->");
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finish writing: closes any still-open elements and reports any
    /// deferred I/O error from the sink.
    pub fn finish(mut self) -> Result<(), fmt::Error> {
        while !self.stack.is_empty() {
            self.end_element();
        }
        if self.indent {
            self.put("\n");
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Element;

    #[test]
    fn writes_nested_document() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.start_element("GANGLIA_XML", &[("VERSION", "2.5.4")]);
        w.start_element("CLUSTER", &[("NAME", "Meteor")]);
        w.empty_element("HOST", &[("NAME", "compute-0-0")]);
        w.end_element();
        w.end_element();
        w.finish().unwrap();
        assert_eq!(
            out,
            "<GANGLIA_XML VERSION=\"2.5.4\"><CLUSTER NAME=\"Meteor\">\
             <HOST NAME=\"compute-0-0\"/></CLUSTER></GANGLIA_XML>"
        );
    }

    #[test]
    fn finish_closes_open_elements() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.start_element("A", &[]);
        w.start_element("B", &[]);
        w.finish().unwrap();
        assert_eq!(out, "<A><B></B></A>");
    }

    #[test]
    fn escapes_attribute_values_and_text() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.start_element("A", &[("X", "a&b<c")]);
        w.text("1 < 2");
        w.finish().unwrap();
        assert_eq!(out, "<A X=\"a&amp;b&lt;c\">1 &lt; 2</A>");
    }

    #[test]
    fn pretty_output_is_parseable_and_equivalent() {
        let mut out = String::new();
        let mut w = XmlWriter::pretty(&mut out);
        w.declaration();
        w.start_element("GRID", &[("NAME", "SDSC")]);
        w.start_element("CLUSTER", &[("NAME", "Meteor")]);
        w.empty_element("HOST", &[("NAME", "n0")]);
        w.finish().unwrap();
        assert!(out.contains('\n'));
        let dom = Element::parse(&out).unwrap();
        assert_eq!(dom.name, "GRID");
        assert_eq!(
            dom.child("CLUSTER")
                .unwrap()
                .child("HOST")
                .unwrap()
                .attr("NAME"),
            Some("n0")
        );
    }

    #[test]
    fn declaration_starts_document() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.declaration();
        w.empty_element("GANGLIA_XML", &[]);
        w.finish().unwrap();
        assert!(out.starts_with("<?xml"));
    }

    #[test]
    #[should_panic(expected = "no element open")]
    fn end_without_start_panics() {
        let mut out = String::new();
        let mut w = XmlWriter::new(&mut out);
        w.end_element();
    }
}
