//! Tag and attribute names of the Ganglia XML DTD.
//!
//! These mirror the on-the-wire vocabulary of Ganglia monitor-core 2.5.x
//! plus the `GRID` extension and the summary tags (`HOSTS`, `METRICS`)
//! added by the wide-area design (paper §3.2, figure 3).

/// Document root emitted by gmond and gmetad.
pub const GANGLIA_XML: &str = "GANGLIA_XML";
/// A grid: a collection of clusters and other grids (N-level extension).
pub const GRID: &str = "GRID";
/// A cluster of hosts, reported by a gmond.
pub const CLUSTER: &str = "CLUSTER";
/// A single monitored host.
pub const HOST: &str = "HOST";
/// One metric sample on a host.
pub const METRIC: &str = "METRIC";
/// Summary form: additive reduction of one metric over a host set.
pub const METRICS: &str = "METRICS";
/// Summary form: host liveness counts.
pub const HOSTS: &str = "HOSTS";
/// Extra metric metadata (emitted by later gmonds; accepted, preserved).
pub const EXTRA_DATA: &str = "EXTRA_DATA";
/// A single piece of extra metric metadata.
pub const EXTRA_ELEMENT: &str = "EXTRA_ELEMENT";

/// Attribute names.
pub mod attr {
    pub const NAME: &str = "NAME";
    pub const VAL: &str = "VAL";
    pub const TYPE: &str = "TYPE";
    pub const UNITS: &str = "UNITS";
    pub const TN: &str = "TN";
    pub const TMAX: &str = "TMAX";
    pub const DMAX: &str = "DMAX";
    pub const SLOPE: &str = "SLOPE";
    pub const SOURCE: &str = "SOURCE";
    pub const IP: &str = "IP";
    pub const REPORTED: &str = "REPORTED";
    pub const LOCATION: &str = "LOCATION";
    pub const STARTED: &str = "STARTED";
    pub const OWNER: &str = "OWNER";
    pub const LATLONG: &str = "LATLONG";
    pub const URL: &str = "URL";
    pub const LOCALTIME: &str = "LOCALTIME";
    pub const AUTHORITY: &str = "AUTHORITY";
    pub const SUM: &str = "SUM";
    pub const NUM: &str = "NUM";
    pub const UP: &str = "UP";
    pub const DOWN: &str = "DOWN";
    pub const VERSION: &str = "VERSION";
    pub const SOURCE_ATTR: &str = "SOURCE";
}
