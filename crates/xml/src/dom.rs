//! A small materialized-tree (DOM) layer on top of the pull parser.
//!
//! The wide-area monitor itself never builds a DOM — it streams events
//! straight into its hash-table store (paper §3.3.2 approximates a DOM
//! with hash tables instead). The DOM here exists for callers that want
//! convenience over speed: the web viewer's 1-level code path, tests,
//! and tooling.

use std::fmt;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::pull::{Event, PullParser};
use crate::writer::XmlWriter;

/// An element node: name, attributes, text, and child elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Concatenated character data directly inside this element.
    pub text: String,
    /// Child elements in document order.
    pub children: Vec<Element>,
}

impl Element {
    /// Create an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Parse a document into its root element.
    pub fn parse(input: &str) -> XmlResult<Element> {
        let mut parser = PullParser::new(input);
        let mut root: Option<Element> = None;
        let mut stack: Vec<Element> = Vec::new();
        while let Some(event) = parser.next_event()? {
            match event {
                Event::Start {
                    name, attributes, ..
                } => {
                    let elem = Element {
                        name: name.to_string(),
                        attributes: attributes
                            .into_iter()
                            .map(|a| (a.name.to_string(), a.value.into_owned()))
                            .collect(),
                        text: String::new(),
                        children: Vec::new(),
                    };
                    stack.push(elem);
                }
                Event::End { .. } => {
                    let done = stack.pop().expect("parser guarantees balance");
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(done);
                    } else {
                        root = Some(done);
                    }
                }
                Event::Text(text) => {
                    if let Some(open) = stack.last_mut() {
                        open.text.push_str(&text);
                    }
                }
                Event::Comment(_) | Event::Decl(_) => {}
            }
        }
        root.ok_or_else(|| XmlError::new(input.len(), XmlErrorKind::NoRootElement))
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
        self
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Depth-first search for the first descendant (or self) matching a
    /// predicate.
    pub fn find<'a>(&'a self, pred: &dyn Fn(&Element) -> bool) -> Option<&'a Element> {
        if pred(self) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(pred))
    }

    /// Total number of elements in this subtree, including self.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Serialize this subtree (no XML declaration).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        let mut writer = XmlWriter::new(&mut out);
        self.write_into(&mut writer);
        writer.finish().expect("writing to String cannot fail");
        out
    }

    fn write_into<W: fmt::Write>(&self, writer: &mut XmlWriter<W>) {
        let attrs: Vec<(&str, &str)> = self
            .attributes
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        if self.children.is_empty() && self.text.is_empty() {
            writer.empty_element(&self.name, &attrs);
        } else {
            writer.start_element(&self.name, &attrs);
            if !self.text.is_empty() {
                writer.text(&self.text);
            }
            for child in &self.children {
                child.write_into(writer);
            }
            writer.end_element();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<CLUSTER NAME="Meteor" LOCALTIME="1058918400">
        <HOST NAME="compute-0-0" IP="10.1.1.1">
            <METRIC NAME="cpu_num" VAL="2" TYPE="int"/>
            <METRIC NAME="load_one" VAL="0.89" TYPE="float"/>
        </HOST>
        <HOST NAME="compute-0-1" IP="10.1.1.2"/>
    </CLUSTER>"#;

    #[test]
    fn parse_builds_expected_tree() {
        let root = Element::parse(DOC).unwrap();
        assert_eq!(root.name, "CLUSTER");
        assert_eq!(root.attr("NAME"), Some("Meteor"));
        assert_eq!(root.children.len(), 2);
        let host = root.child("HOST").unwrap();
        assert_eq!(host.children_named("METRIC").count(), 2);
    }

    #[test]
    fn find_locates_descendant() {
        let root = Element::parse(DOC).unwrap();
        let metric = root
            .find(&|e| e.name == "METRIC" && e.attr("NAME") == Some("load_one"))
            .unwrap();
        assert_eq!(metric.attr("VAL"), Some("0.89"));
    }

    #[test]
    fn subtree_size_counts_all_elements() {
        let root = Element::parse(DOC).unwrap();
        assert_eq!(root.subtree_size(), 1 + 2 + 2);
    }

    #[test]
    fn roundtrip_through_writer() {
        let root = Element::parse(DOC).unwrap();
        let xml = root.to_xml();
        let again = Element::parse(&xml).unwrap();
        assert_eq!(root, again);
    }

    #[test]
    fn text_is_collected() {
        let root = Element::parse("<A>one<B/>two</A>").unwrap();
        assert_eq!(root.text, "onetwo");
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut e = Element::new("A");
        e.set_attr("X", "1");
        e.set_attr("X", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attr("X"), Some("2"));
    }

    #[test]
    fn attrs_with_reserved_chars_roundtrip() {
        let mut e = Element::new("A");
        e.set_attr("X", "a<b>&\"c'");
        let xml = e.to_xml();
        let back = Element::parse(&xml).unwrap();
        assert_eq!(back.attr("X"), Some("a<b>&\"c'"));
    }
}
