//! A zero-copy, SAX-style pull parser.
//!
//! Parsing child reports is the single hottest operation in a wide-area
//! monitor (paper §3.3.1), so this parser is written to borrow everything
//! it can from the input buffer: element and attribute names are always
//! `&str` slices of the input, and attribute values / character data are
//! `Cow::Borrowed` unless an entity reference forces expansion.
//!
//! The parser checks well-formedness as it goes (balanced tags, single
//! root, no duplicate attributes) so downstream code can trust the event
//! stream.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::{unescape, unescape_into};

/// One attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name, borrowed from the input.
    pub name: &'a str,
    /// Attribute value with entities expanded.
    pub value: Cow<'a, str>,
}

/// A parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// `<NAME ...>` or `<NAME ... />`. An empty element (`/>`) sets
    /// `empty` and is still followed by a matching [`Event::End`], so
    /// consumers never need to special-case it.
    Start {
        name: &'a str,
        attributes: Vec<Attribute<'a>>,
        empty: bool,
    },
    /// `</NAME>` (or the synthesized end of an empty element).
    End { name: &'a str },
    /// Non-whitespace character data, entities expanded.
    Text(Cow<'a, str>),
    /// `<!-- ... -->`, body only.
    Comment(&'a str),
    /// `<?...?>` or `<!DOCTYPE ...>`, body only. Not interpreted.
    Decl(&'a str),
}

impl Event<'_> {
    /// The tag name if this is a start event.
    pub fn start_name(&self) -> Option<&str> {
        match self {
            Event::Start { name, .. } => Some(name),
            _ => None,
        }
    }
}

/// Where an attribute value (or text run) lives: either a span of the
/// original input (the no-entity fast path) or a span of the scratch
/// arena (entities were expanded in place). Offsets, not references, so
/// [`AttrScratch`] carries no lifetime and can be reused across
/// documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueSpan {
    Input { start: usize, end: usize },
    Arena { start: usize, end: usize },
}

#[derive(Debug, Clone, Copy)]
struct RawAttr {
    name_start: usize,
    name_end: usize,
    value: ValueSpan,
}

/// Reusable per-source scratch for the borrowing event API
/// ([`PullParser::next_event_into`]).
///
/// The eventful [`Event::Start`] allocates a `Vec<Attribute>` per start
/// tag and an owned `String` per entity-escaped value. `AttrScratch`
/// instead records attribute name/value *spans* and expands entities
/// into one arena `String`, both reused across events — so a steady
/// event stream performs no per-event allocation once the scratch has
/// grown to its working size.
///
/// Ownership rule: the scratch is cleared at the top of every
/// `next_event_into` call, so spans handed out for one event are only
/// valid until the next call. Callers that need a value beyond that
/// must copy it out (e.g. into an interned `Atom`).
#[derive(Debug, Default)]
pub struct AttrScratch {
    attrs: Vec<RawAttr>,
    text: Option<ValueSpan>,
    arena: String,
}

impl AttrScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes recorded for the current start event.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    fn clear(&mut self) {
        self.attrs.clear();
        self.arena.clear();
        self.text = None;
    }

    fn resolve<'s>(&'s self, input: &'s str, span: ValueSpan) -> &'s str {
        match span {
            ValueSpan::Input { start, end } => &input[start..end],
            ValueSpan::Arena { start, end } => &self.arena[start..end],
        }
    }

    /// Name of attribute `i`, resolved against the same `input` the
    /// parser was created over.
    pub fn name<'s>(&self, input: &'s str, i: usize) -> &'s str {
        let a = &self.attrs[i];
        &input[a.name_start..a.name_end]
    }

    /// Value of attribute `i`, entities expanded.
    pub fn value<'s>(&'s self, input: &'s str, i: usize) -> &'s str {
        self.resolve(input, self.attrs[i].value)
    }

    /// Look an attribute up by name.
    pub fn get<'s>(&'s self, input: &'s str, name: &str) -> Option<&'s str> {
        (0..self.attrs.len())
            .find(|&i| self.name(input, i) == name)
            .map(|i| self.value(input, i))
    }

    /// Character data of the current [`StreamEvent::Text`] event,
    /// entities expanded. `None` for non-text events.
    pub fn text<'s>(&'s self, input: &'s str) -> Option<&'s str> {
        self.text.map(|span| self.resolve(input, span))
    }
}

/// A parse event from the borrowing API. Attribute values and text live
/// in the caller's [`AttrScratch`]; only input-borrowed names ride on
/// the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent<'a> {
    /// `<NAME ...>` or `<NAME ... />`; attributes are in the scratch.
    Start { name: &'a str, empty: bool },
    /// `</NAME>` (or the synthesized end of an empty element).
    End { name: &'a str },
    /// Non-whitespace character data; content is in the scratch.
    Text,
    /// `<!-- ... -->`, body only.
    Comment(&'a str),
    /// `<?...?>` or `<!DOCTYPE ...>`, body only. Not interpreted.
    Decl(&'a str),
}

/// The pull parser. Create with [`PullParser::new`], then call
/// [`PullParser::next_event`] until it returns `Ok(None)`.
#[derive(Debug, Clone)]
pub struct PullParser<'a> {
    input: &'a str,
    pos: usize,
    /// Byte offset where the most recently returned event began.
    event_start: usize,
    /// Open-element stack (names borrowed from input).
    stack: Vec<&'a str>,
    /// End event synthesized for an `<X/>` empty element.
    pending_end: Option<&'a str>,
    /// Set once the root element has closed.
    saw_root_close: bool,
    /// Set once any root element has been seen.
    saw_root_open: bool,
}

impl<'a> PullParser<'a> {
    /// Parse `input` as a complete XML document.
    pub fn new(input: &'a str) -> Self {
        PullParser {
            input,
            pos: 0,
            event_start: 0,
            stack: Vec::with_capacity(8),
            pending_end: None,
            saw_root_close: false,
            saw_root_open: false,
        }
    }

    /// Byte offset of the next unread input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Byte offset where the most recently returned event's markup began
    /// (the `<` of a tag, the first byte of character data). Together
    /// with [`PullParser::offset`] after [`PullParser::skip_subtree_raw`],
    /// this delimits an element's exact byte span in the input — the
    /// basis for content fingerprinting.
    ///
    /// A synthesized end event (for `<X/>`) does not move this offset.
    pub fn last_event_start(&self) -> usize {
        self.event_start
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn err<T>(&self, kind: XmlErrorKind) -> XmlResult<T> {
        Err(XmlError::new(self.pos, kind))
    }

    /// Produce the next event, or `Ok(None)` at a well-formed end of
    /// document.
    pub fn next_event(&mut self) -> XmlResult<Option<Event<'a>>> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            if self.stack.is_empty() {
                self.saw_root_close = true;
            }
            return Ok(Some(Event::End { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return self.err(XmlErrorKind::UnclosedElements(self.stack.len()));
                }
                if !self.saw_root_open {
                    return self.err(XmlErrorKind::NoRootElement);
                }
                return Ok(None);
            }
            if self.bytes()[self.pos] == b'<' {
                self.event_start = self.pos;
                return self.parse_markup().map(Some);
            }
            // Character data up to the next '<'.
            let start = self.pos;
            self.event_start = start;
            let end = self.input[start..]
                .find('<')
                .map(|i| start + i)
                .unwrap_or(self.input.len());
            self.pos = end;
            let raw = &self.input[start..end];
            if raw.bytes().all(|b| b.is_ascii_whitespace()) {
                continue; // inter-tag whitespace carries no information
            }
            if self.stack.is_empty() {
                return self.err(XmlErrorKind::TrailingContent);
            }
            let text = unescape(raw, start)?;
            return Ok(Some(Event::Text(text)));
        }
    }

    fn parse_markup(&mut self) -> XmlResult<Event<'a>> {
        debug_assert_eq!(self.bytes()[self.pos], b'<');
        let after_lt = self.pos + 1;
        if after_lt >= self.input.len() {
            return self.err(XmlErrorKind::UnexpectedEof("markup"));
        }
        match self.bytes()[after_lt] {
            b'?' => self.parse_pi(),
            b'!' => self.parse_bang(),
            b'/' => self.parse_close_tag(),
            _ => self.parse_open_tag(),
        }
    }

    fn parse_pi(&mut self) -> XmlResult<Event<'a>> {
        let body_start = self.pos + 2;
        let Some(end) = self.input[body_start..].find("?>") else {
            return self.err(XmlErrorKind::UnexpectedEof("processing instruction"));
        };
        let body = &self.input[body_start..body_start + end];
        self.pos = body_start + end + 2;
        Ok(Event::Decl(body))
    }

    fn parse_bang(&mut self) -> XmlResult<Event<'a>> {
        let rest = &self.input[self.pos..];
        if let Some(body) = rest.strip_prefix("<!--") {
            let Some(end) = body.find("-->") else {
                return self.err(XmlErrorKind::UnexpectedEof("comment"));
            };
            let comment = &self.input[self.pos + 4..self.pos + 4 + end];
            self.pos += 4 + end + 3;
            return Ok(Event::Comment(comment));
        }
        if rest.starts_with("<![CDATA[") {
            let body_start = self.pos + 9;
            let Some(end) = self.input[body_start..].find("]]>") else {
                return self.err(XmlErrorKind::UnexpectedEof("CDATA section"));
            };
            let text = &self.input[body_start..body_start + end];
            self.pos = body_start + end + 3;
            if self.stack.is_empty() {
                return self.err(XmlErrorKind::TrailingContent);
            }
            return Ok(Event::Text(Cow::Borrowed(text)));
        }
        // <!DOCTYPE ...> — may contain an internal subset in brackets.
        let body_start = self.pos + 2;
        let mut depth = 0usize;
        for (i, b) in self.input.as_bytes()[body_start..].iter().enumerate() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    let body = &self.input[body_start..body_start + i];
                    self.pos = body_start + i + 1;
                    return Ok(Event::Decl(body));
                }
                _ => {}
            }
        }
        self.err(XmlErrorKind::UnexpectedEof("declaration"))
    }

    fn parse_close_tag(&mut self) -> XmlResult<Event<'a>> {
        let name_start = self.pos + 2;
        self.pos = name_start;
        let name = self.take_name()?;
        self.skip_ws();
        if self.pos >= self.input.len() || self.bytes()[self.pos] != b'>' {
            return self.err(XmlErrorKind::UnexpectedChar {
                expected: "'>' to finish close tag",
                found: self.peek_char(),
            });
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.saw_root_close = true;
                }
                Ok(Event::End { name })
            }
            Some(open) => Err(XmlError::new(
                name_start,
                XmlErrorKind::MismatchedClose {
                    open: open.to_string(),
                    close: name.to_string(),
                },
            )),
            None => Err(XmlError::new(
                name_start,
                XmlErrorKind::UnmatchedClose(name.to_string()),
            )),
        }
    }

    fn parse_open_tag(&mut self) -> XmlResult<Event<'a>> {
        if self.saw_root_close && self.stack.is_empty() {
            return self.err(XmlErrorKind::TrailingContent);
        }
        self.pos += 1; // consume '<'
        let name = self.take_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_byte() {
                Some(b'>') => {
                    self.pos += 1;
                    self.stack.push(name);
                    self.saw_root_open = true;
                    return Ok(Event::Start {
                        name,
                        attributes,
                        empty: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek_byte() != Some(b'>') {
                        return self.err(XmlErrorKind::UnexpectedChar {
                            expected: "'>' after '/'",
                            found: self.peek_char(),
                        });
                    }
                    self.pos += 1;
                    self.stack.push(name);
                    self.saw_root_open = true;
                    self.pending_end = Some(name);
                    return Ok(Event::Start {
                        name,
                        attributes,
                        empty: true,
                    });
                }
                Some(_) => {
                    let attr = self.take_attribute()?;
                    if attributes.iter().any(|a: &Attribute| a.name == attr.name) {
                        return self.err(XmlErrorKind::DuplicateAttribute(attr.name.to_string()));
                    }
                    attributes.push(attr);
                }
                None => return self.err(XmlErrorKind::UnexpectedEof("start tag")),
            }
        }
    }

    fn take_attribute(&mut self) -> XmlResult<Attribute<'a>> {
        let name = self.take_name()?;
        self.skip_ws();
        if self.peek_byte() != Some(b'=') {
            return self.err(XmlErrorKind::UnexpectedChar {
                expected: "'=' in attribute",
                found: self.peek_char(),
            });
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek_byte() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return self.err(XmlErrorKind::UnexpectedChar {
                    expected: "quoted attribute value",
                    found: self.peek_char(),
                })
            }
        };
        self.pos += 1;
        let value_start = self.pos;
        let Some(end) = self.input[value_start..].find(quote as char) else {
            return self.err(XmlErrorKind::UnexpectedEof("attribute value"));
        };
        let raw = &self.input[value_start..value_start + end];
        self.pos = value_start + end + 1;
        let value = unescape(raw, value_start)?;
        Ok(Attribute { name, value })
    }

    fn take_name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        let bytes = self.bytes();
        if start >= bytes.len() || !is_name_start(bytes[start]) {
            return self.err(XmlErrorKind::BadName);
        }
        let mut end = start + 1;
        while end < bytes.len() && is_name_char(bytes[end]) {
            end += 1;
        }
        self.pos = end;
        Ok(&self.input[start..end])
    }

    fn skip_ws(&mut self) {
        let bytes = self.bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn peek_char(&self) -> char {
        self.input[self.pos..].chars().next().unwrap_or('\0')
    }

    /// Skip the remainder of the element whose [`Event::Start`] was just
    /// returned, including all of its descendants. This is how a gmetad
    /// answering a path query avoids touching subtrees the query does not
    /// select.
    pub fn skip_subtree(&mut self) -> XmlResult<()> {
        let target = self.stack.len();
        if target == 0 {
            return Ok(());
        }
        loop {
            match self.next_event()? {
                Some(Event::End { .. }) if self.stack.len() < target => return Ok(()),
                Some(_) => continue,
                None => return Ok(()),
            }
        }
    }

    /// Like [`PullParser::skip_subtree`], but scanning raw bytes without
    /// materializing any events or attributes — the zero-allocation path
    /// the delta-aware ingest uses to delimit a `<HOST>` subtree it is
    /// about to fingerprint. Quoted attribute values (which may contain
    /// `>`), comments, CDATA sections, and processing instructions are
    /// honored; close-tag *names* are not checked against open tags, so a
    /// balanced-but-mismatched subtree passes here that the event path
    /// would reject. That is safe for fingerprinting: a span whose hash
    /// misses the cache is re-parsed through the full event path, which
    /// performs every well-formedness check.
    pub fn skip_subtree_raw(&mut self) -> XmlResult<()> {
        if self.pending_end.take().is_some() {
            // `<X/>`: the subtree is the empty element itself.
            self.stack.pop();
            if self.stack.is_empty() {
                self.saw_root_close = true;
            }
            return Ok(());
        }
        if self.stack.is_empty() {
            return Ok(());
        }
        let bytes = self.bytes();
        let mut depth = 1usize;
        while depth > 0 {
            let Some(lt) = self.input[self.pos..].find('<') else {
                self.pos = self.input.len();
                return self.err(XmlErrorKind::UnexpectedEof("subtree"));
            };
            self.pos += lt;
            let rest = &self.input[self.pos..];
            if let Some(body) = rest.strip_prefix("<!--") {
                let Some(end) = body.find("-->") else {
                    return self.err(XmlErrorKind::UnexpectedEof("comment"));
                };
                self.pos += 4 + end + 3;
            } else if let Some(body) = rest.strip_prefix("<![CDATA[") {
                let Some(end) = body.find("]]>") else {
                    return self.err(XmlErrorKind::UnexpectedEof("CDATA section"));
                };
                self.pos += 9 + end + 3;
            } else if let Some(body) = rest.strip_prefix("<?") {
                let Some(end) = body.find("?>") else {
                    return self.err(XmlErrorKind::UnexpectedEof("processing instruction"));
                };
                self.pos += 2 + end + 2;
            } else if rest.starts_with("<!") {
                // Declaration (e.g. a stray DOCTYPE): bracket-aware scan,
                // mirroring `parse_bang`.
                let mut brackets = 0usize;
                let mut closed = false;
                for (i, b) in bytes[self.pos + 2..].iter().enumerate() {
                    match b {
                        b'[' => brackets += 1,
                        b']' => brackets = brackets.saturating_sub(1),
                        b'>' if brackets == 0 => {
                            self.pos += 2 + i + 1;
                            closed = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if !closed {
                    return self.err(XmlErrorKind::UnexpectedEof("declaration"));
                }
            } else if rest.starts_with("</") {
                // Close tags cannot contain quotes; scan straight to '>'.
                let Some(end) = rest.find('>') else {
                    return self.err(XmlErrorKind::UnexpectedEof("close tag"));
                };
                self.pos += end + 1;
                depth -= 1;
            } else {
                // Open tag: skip quoted attribute values, watch for '/>'.
                let mut i = self.pos + 1;
                let empty;
                loop {
                    match bytes.get(i) {
                        None => return self.err(XmlErrorKind::UnexpectedEof("start tag")),
                        Some(&q @ (b'"' | b'\'')) => {
                            let Some(close) = self.input[i + 1..].find(q as char) else {
                                self.pos = i;
                                return self.err(XmlErrorKind::UnexpectedEof("attribute value"));
                            };
                            i += 1 + close + 1;
                        }
                        Some(b'>') => {
                            empty = i > self.pos && bytes[i - 1] == b'/';
                            i += 1;
                            break;
                        }
                        Some(_) => i += 1,
                    }
                }
                self.pos = i;
                if !empty {
                    depth += 1;
                }
            }
        }
        self.stack.pop();
        if self.stack.is_empty() {
            self.saw_root_close = true;
        }
        Ok(())
    }

    /// Byte span of `s` within the parser's input. `s` must be a slice
    /// of the input (all borrowed event payloads are).
    fn span_of(&self, s: &str) -> (usize, usize) {
        let off = s.as_ptr() as usize - self.input.as_ptr() as usize;
        (off, off + s.len())
    }

    /// Produce the next event without allocating: attribute spans and
    /// expanded entities land in `scratch`, which is cleared on entry.
    /// This is the streaming-ingest twin of [`PullParser::next_event`] —
    /// it performs the identical well-formedness checks in the identical
    /// order, so a document that errors under one API errors with the
    /// same [`XmlError`] under the other.
    pub fn next_event_into(
        &mut self,
        scratch: &mut AttrScratch,
    ) -> XmlResult<Option<StreamEvent<'a>>> {
        scratch.clear();
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            if self.stack.is_empty() {
                self.saw_root_close = true;
            }
            return Ok(Some(StreamEvent::End { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return self.err(XmlErrorKind::UnclosedElements(self.stack.len()));
                }
                if !self.saw_root_open {
                    return self.err(XmlErrorKind::NoRootElement);
                }
                return Ok(None);
            }
            if self.bytes()[self.pos] == b'<' {
                self.event_start = self.pos;
                let after_lt = self.pos + 1;
                if after_lt >= self.input.len() {
                    return self.err(XmlErrorKind::UnexpectedEof("markup"));
                }
                return match self.bytes()[after_lt] {
                    b'?' => self.parse_pi().map(|ev| match ev {
                        Event::Decl(body) => Some(StreamEvent::Decl(body)),
                        _ => unreachable!("parse_pi yields Decl"),
                    }),
                    b'!' => self.parse_bang().map(|ev| {
                        Some(match ev {
                            Event::Comment(body) => StreamEvent::Comment(body),
                            Event::Decl(body) => StreamEvent::Decl(body),
                            Event::Text(Cow::Borrowed(body)) => {
                                // CDATA: raw text, never entity-expanded.
                                let (start, end) = self.span_of(body);
                                scratch.text = Some(ValueSpan::Input { start, end });
                                StreamEvent::Text
                            }
                            _ => unreachable!("parse_bang yields Comment/Decl/borrowed Text"),
                        })
                    }),
                    b'/' => self.parse_close_tag().map(|ev| match ev {
                        Event::End { name } => Some(StreamEvent::End { name }),
                        _ => unreachable!("parse_close_tag yields End"),
                    }),
                    _ => self.parse_open_tag_into(scratch).map(Some),
                };
            }
            // Character data up to the next '<'.
            let start = self.pos;
            self.event_start = start;
            let end = self.input[start..]
                .find('<')
                .map(|i| start + i)
                .unwrap_or(self.input.len());
            self.pos = end;
            let raw = &self.input[start..end];
            if raw.bytes().all(|b| b.is_ascii_whitespace()) {
                continue; // inter-tag whitespace carries no information
            }
            if self.stack.is_empty() {
                return self.err(XmlErrorKind::TrailingContent);
            }
            scratch.text = Some(if raw.contains('&') {
                let arena_start = scratch.arena.len();
                unescape_into(raw, start, &mut scratch.arena)?;
                ValueSpan::Arena {
                    start: arena_start,
                    end: scratch.arena.len(),
                }
            } else {
                ValueSpan::Input { start, end }
            });
            return Ok(Some(StreamEvent::Text));
        }
    }

    fn parse_open_tag_into(&mut self, scratch: &mut AttrScratch) -> XmlResult<StreamEvent<'a>> {
        if self.saw_root_close && self.stack.is_empty() {
            return self.err(XmlErrorKind::TrailingContent);
        }
        self.pos += 1; // consume '<'
        let name = self.take_name()?;
        loop {
            self.skip_ws();
            match self.peek_byte() {
                Some(b'>') => {
                    self.pos += 1;
                    self.stack.push(name);
                    self.saw_root_open = true;
                    return Ok(StreamEvent::Start { name, empty: false });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek_byte() != Some(b'>') {
                        return self.err(XmlErrorKind::UnexpectedChar {
                            expected: "'>' after '/'",
                            found: self.peek_char(),
                        });
                    }
                    self.pos += 1;
                    self.stack.push(name);
                    self.saw_root_open = true;
                    self.pending_end = Some(name);
                    return Ok(StreamEvent::Start { name, empty: true });
                }
                Some(_) => self.take_attribute_into(scratch)?,
                None => return self.err(XmlErrorKind::UnexpectedEof("start tag")),
            }
        }
    }

    fn take_attribute_into(&mut self, scratch: &mut AttrScratch) -> XmlResult<()> {
        let name_start = self.pos;
        let name = self.take_name()?;
        let name_end = self.pos;
        self.skip_ws();
        if self.peek_byte() != Some(b'=') {
            return self.err(XmlErrorKind::UnexpectedChar {
                expected: "'=' in attribute",
                found: self.peek_char(),
            });
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek_byte() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return self.err(XmlErrorKind::UnexpectedChar {
                    expected: "quoted attribute value",
                    found: self.peek_char(),
                })
            }
        };
        self.pos += 1;
        let value_start = self.pos;
        let Some(end) = self.input[value_start..].find(quote as char) else {
            return self.err(XmlErrorKind::UnexpectedEof("attribute value"));
        };
        let raw = &self.input[value_start..value_start + end];
        self.pos = value_start + end + 1;
        // Unescape before the duplicate check so a bad entity reports
        // first, matching the eventful path's error order.
        let value = if raw.contains('&') {
            let arena_start = scratch.arena.len();
            unescape_into(raw, value_start, &mut scratch.arena)?;
            ValueSpan::Arena {
                start: arena_start,
                end: scratch.arena.len(),
            }
        } else {
            ValueSpan::Input {
                start: value_start,
                end: value_start + end,
            }
        };
        if scratch
            .attrs
            .iter()
            .any(|a| &self.input[a.name_start..a.name_end] == name)
        {
            return self.err(XmlErrorKind::DuplicateAttribute(name.to_string()));
        }
        scratch.attrs.push(RawAttr {
            name_start,
            name_end,
            value,
        });
        Ok(())
    }

    /// [`PullParser::skip_subtree`] over the borrowing API: skips the
    /// element whose start event was just returned via
    /// [`PullParser::next_event_into`], performing full well-formedness
    /// checks but no allocation.
    pub fn skip_subtree_into(&mut self, scratch: &mut AttrScratch) -> XmlResult<()> {
        let target = self.stack.len();
        if target == 0 {
            return Ok(());
        }
        loop {
            match self.next_event_into(scratch)? {
                Some(StreamEvent::End { .. }) if self.stack.len() < target => return Ok(()),
                Some(_) => continue,
                None => return Ok(()),
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':'
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events(input: &str) -> XmlResult<Vec<Event<'_>>> {
        let mut parser = PullParser::new(input);
        let mut out = Vec::new();
        while let Some(ev) = parser.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }

    #[test]
    fn parses_empty_element_with_attributes() {
        let events = all_events(r#"<METRIC NAME="cpu_num" VAL="2" TYPE="int"/>"#).unwrap();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::Start {
                name,
                attributes,
                empty,
            } => {
                assert_eq!(*name, "METRIC");
                assert!(*empty);
                assert_eq!(attributes.len(), 3);
                assert_eq!(attributes[0].name, "NAME");
                assert_eq!(attributes[0].value, "cpu_num");
                assert_eq!(attributes[2].value, "int");
            }
            other => panic!("expected start, got {other:?}"),
        }
        assert_eq!(events[1], Event::End { name: "METRIC" });
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let events = all_events("<A><B>hello &amp; goodbye</B></A>").unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[2], Event::Text(Cow::Owned("hello & goodbye".into())));
    }

    #[test]
    fn whitespace_between_tags_is_skipped() {
        let events = all_events("<A>\n  <B/>\n</A>").unwrap();
        assert!(events.iter().all(|e| !matches!(e, Event::Text(_))));
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn single_quoted_attributes() {
        let events = all_events("<A X='1'/>").unwrap();
        match &events[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "1"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rejects_mismatched_close() {
        let err = all_events("<A><B></A></B>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedClose { .. }));
    }

    #[test]
    fn rejects_unclosed_elements() {
        let err = all_events("<A><B>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnclosedElements(2));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = all_events(r#"<A X="1" X="2"/>"#).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::DuplicateAttribute("X".into()));
    }

    #[test]
    fn rejects_second_root() {
        let err = all_events("<A/><B/>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TrailingContent);
    }

    #[test]
    fn rejects_text_outside_root() {
        assert!(all_events("<A/>junk").is_err());
        assert!(all_events("junk<A/>").is_err());
    }

    #[test]
    fn rejects_empty_document() {
        let err = all_events("   ").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::NoRootElement);
    }

    #[test]
    fn accepts_declaration_doctype_and_comment() {
        let doc = "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n\
                   <!DOCTYPE GANGLIA_XML [ <!ELEMENT GANGLIA_XML (GRID)*> ]>\n\
                   <!-- report --><GANGLIA_XML/>";
        let events = all_events(doc).unwrap();
        assert!(matches!(events[0], Event::Decl(_)));
        assert!(matches!(events[1], Event::Decl(d) if d.contains("DOCTYPE")));
        assert_eq!(events[2], Event::Comment(" report "));
    }

    #[test]
    fn cdata_is_text() {
        let events = all_events("<A><![CDATA[x < y & z]]></A>").unwrap();
        assert_eq!(events[1], Event::Text(Cow::Borrowed("x < y & z")));
    }

    #[test]
    fn attribute_values_are_borrowed_when_plain() {
        let doc = r#"<A X="plain"/>"#;
        let mut parser = PullParser::new(doc);
        match parser.next_event().unwrap().unwrap() {
            Event::Start { attributes, .. } => {
                assert!(matches!(attributes[0].value, Cow::Borrowed(_)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn skip_subtree_skips_descendants() {
        let doc = "<A><B><C/><D>text</D></B><E/></A>";
        let mut parser = PullParser::new(doc);
        assert_eq!(
            parser.next_event().unwrap().unwrap().start_name(),
            Some("A")
        );
        assert_eq!(
            parser.next_event().unwrap().unwrap().start_name(),
            Some("B")
        );
        parser.skip_subtree().unwrap();
        // Next event should be the start of E.
        assert_eq!(
            parser.next_event().unwrap().unwrap().start_name(),
            Some("E")
        );
    }

    #[test]
    fn raw_skip_matches_event_skip() {
        let docs = [
            "<A><B><C/><D>text</D></B><E/></A>",
            "<A><B X=\"a>b\" Y='c>d'><C/></B><E/></A>",
            "<A><B><!-- gt > inside --><![CDATA[ x > y ]]><?pi > ?><C/></B><E/></A>",
            "<A><B/><E/></A>",
        ];
        for doc in docs {
            let mut parser = PullParser::new(doc);
            parser.next_event().unwrap(); // <A>
            parser.next_event().unwrap(); // <B ...>
            let mut raw = parser.clone();
            parser.skip_subtree().unwrap();
            raw.skip_subtree_raw().unwrap();
            assert_eq!(raw.offset(), parser.offset(), "offset diverged on {doc}");
            assert_eq!(raw.depth(), parser.depth(), "depth diverged on {doc}");
            // Both parsers resume identically.
            assert_eq!(
                raw.next_event().unwrap().unwrap().start_name(),
                Some("E"),
                "resume diverged on {doc}"
            );
        }
    }

    #[test]
    fn raw_skip_rejects_truncated_subtree() {
        let mut parser = PullParser::new("<A><B><C>");
        parser.next_event().unwrap();
        parser.next_event().unwrap();
        assert!(parser.skip_subtree_raw().is_err());
    }

    #[test]
    fn event_span_covers_subtree() {
        let doc = "<A><B X=\"1\"><C/></B><E/></A>";
        let mut parser = PullParser::new(doc);
        parser.next_event().unwrap(); // <A>
        parser.next_event().unwrap(); // <B>
        let start = parser.last_event_start();
        parser.skip_subtree_raw().unwrap();
        assert_eq!(&doc[start..parser.offset()], "<B X=\"1\"><C/></B>");
    }

    /// Drain a document through the borrowing API, materializing each
    /// event into the eventful `Event` shape so the two streams can be
    /// compared exactly.
    fn all_stream_events(input: &str) -> XmlResult<Vec<Event<'_>>> {
        let mut parser = PullParser::new(input);
        let mut scratch = AttrScratch::new();
        let mut out = Vec::new();
        while let Some(ev) = parser.next_event_into(&mut scratch)? {
            out.push(match ev {
                StreamEvent::Start { name, empty } => Event::Start {
                    name,
                    attributes: (0..scratch.len())
                        .map(|i| Attribute {
                            name: scratch.name(input, i),
                            value: Cow::Owned(scratch.value(input, i).to_string()),
                        })
                        .collect(),
                    empty,
                },
                StreamEvent::End { name } => Event::End { name },
                StreamEvent::Text => {
                    Event::Text(Cow::Owned(scratch.text(input).unwrap().to_string()))
                }
                StreamEvent::Comment(body) => Event::Comment(body),
                StreamEvent::Decl(body) => Event::Decl(body),
            });
        }
        Ok(out)
    }

    fn assert_streams_match(doc: &str) {
        let eventful = all_events(doc);
        let streaming = all_stream_events(doc);
        match (eventful, streaming) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "event count diverged on {doc:?}");
                for (x, y) in a.iter().zip(&b) {
                    // Values compare by content; Cow Borrowed/Owned differ.
                    assert_eq!(x, y, "event diverged on {doc:?}");
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "errors diverged on {doc:?}"),
            (a, b) => panic!("outcome diverged on {doc:?}: eventful={a:?} streaming={b:?}"),
        }
    }

    #[test]
    fn streaming_matches_eventful_on_well_formed_docs() {
        for doc in [
            r#"<METRIC NAME="cpu_num" VAL="2" TYPE="int"/>"#,
            "<A><B>hello &amp; goodbye</B></A>",
            "<A>\n  <B/>\n</A>",
            "<A X='1'/>",
            r#"<A X="a&lt;b" Y="&#65;&#x42;">t&amp;u</A>"#,
            "<?xml version=\"1.0\"?><!DOCTYPE G [ <!ELEMENT G (X)*> ]><!-- c --><G/>",
            "<A><![CDATA[x < y & z]]></A>",
            "<A><B X=\"a>b\" Y='c>d'><C/></B><E/></A>",
        ] {
            assert_streams_match(doc);
        }
    }

    #[test]
    fn streaming_matches_eventful_on_malformed_docs() {
        for doc in [
            "<A><B></A></B>",
            "<A><B>",
            r#"<A X="1" X="2"/>"#,
            "<A/><B/>",
            "<A/>junk",
            "junk<A/>",
            "   ",
            "<A X=\"1/>",
            "<A X=1/>",
            "<A X/>",
            "<A><B>x&bogus;y</B></A>",
            r#"<A X="a&nope;b"/>"#,
            r#"<A X="a&amp"/>"#,
            "<A",
            "<",
            "<A><!-- never closed",
            "<A><![CDATA[never closed",
            "<?pi never closed",
            "<!DOCTYPE G [ <!x> ",
        ] {
            assert_streams_match(doc);
        }
    }

    #[test]
    fn scratch_values_escaped_and_plain() {
        let doc = r#"<A PLAIN="p" ESC="a&lt;b" NUM="&#65;&#x42;c"/>"#;
        let mut parser = PullParser::new(doc);
        let mut scratch = AttrScratch::new();
        let ev = parser.next_event_into(&mut scratch).unwrap().unwrap();
        assert_eq!(
            ev,
            StreamEvent::Start {
                name: "A",
                empty: true
            }
        );
        assert_eq!(scratch.len(), 3);
        assert_eq!(scratch.get(doc, "PLAIN"), Some("p"));
        assert_eq!(scratch.get(doc, "ESC"), Some("a<b"));
        assert_eq!(scratch.get(doc, "NUM"), Some("ABc"));
        assert_eq!(scratch.get(doc, "MISSING"), None);
        // The synthesized end clears the scratch.
        let ev = parser.next_event_into(&mut scratch).unwrap().unwrap();
        assert_eq!(ev, StreamEvent::End { name: "A" });
        assert!(scratch.is_empty());
        assert!(parser.next_event_into(&mut scratch).unwrap().is_none());
    }

    #[test]
    fn streaming_performs_no_alloc_after_warmup() {
        // Parse once to grow the scratch, then confirm a second pass
        // reuses it: spans must resolve even though the arena was
        // cleared and refilled in place.
        let doc = r#"<A><M N="a&amp;b" V="1"/><M N="c&amp;d" V="2"/></A>"#;
        let mut scratch = AttrScratch::new();
        for _ in 0..2 {
            let mut parser = PullParser::new(doc);
            let mut values = Vec::new();
            while let Some(ev) = parser.next_event_into(&mut scratch).unwrap() {
                if let StreamEvent::Start { name: "M", .. } = ev {
                    values.push(scratch.get(doc, "N").unwrap().to_string());
                }
            }
            assert_eq!(values, ["a&b", "c&d"]);
        }
    }

    #[test]
    fn skip_subtree_into_matches_event_skip() {
        let docs = [
            "<A><B><C/><D>text</D></B><E/></A>",
            "<A><B X=\"a>b\" Y='c>d'><C/></B><E/></A>",
            "<A><B/><E/></A>",
        ];
        let mut scratch = AttrScratch::new();
        for doc in docs {
            let mut parser = PullParser::new(doc);
            parser.next_event_into(&mut scratch).unwrap(); // <A>
            parser.next_event_into(&mut scratch).unwrap(); // <B ...>
            let mut eventful = parser.clone();
            eventful.skip_subtree().unwrap();
            parser.skip_subtree_into(&mut scratch).unwrap();
            assert_eq!(
                parser.offset(),
                eventful.offset(),
                "offset diverged on {doc}"
            );
            assert_eq!(parser.depth(), eventful.depth(), "depth diverged on {doc}");
            assert_eq!(
                parser.next_event_into(&mut scratch).unwrap().unwrap(),
                StreamEvent::Start {
                    name: "E",
                    empty: true
                },
                "resume diverged on {doc}"
            );
        }
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut parser = PullParser::new("<A><B/></A>");
        parser.next_event().unwrap();
        assert_eq!(parser.depth(), 1);
        parser.next_event().unwrap(); // <B/> start
        assert_eq!(parser.depth(), 2);
        parser.next_event().unwrap(); // B end
        assert_eq!(parser.depth(), 1);
    }
}
