//! Error type for XML parsing.

use std::fmt;

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// A parse error, carrying the byte offset where it was detected.
///
/// Offsets index into the original input buffer, so a caller holding the
/// input can map an error back to a line/column with [`XmlError::line_col`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: XmlErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A character that cannot begin the construct being parsed.
    UnexpectedChar { expected: &'static str, found: char },
    /// `</a>` closed an element opened as `<b>`.
    MismatchedClose { open: String, close: String },
    /// A close tag appeared with no element open.
    UnmatchedClose(String),
    /// Input ended while elements were still open.
    UnclosedElements(usize),
    /// An entity reference (`&...;`) that is malformed or unknown.
    BadEntity(String),
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// An element, attribute, or other name was empty or malformed.
    BadName,
    /// Document contained no root element.
    NoRootElement,
    /// Trailing non-whitespace content after the root element.
    TrailingContent,
}

impl XmlError {
    pub(crate) fn new(offset: usize, kind: XmlErrorKind) -> Self {
        XmlError { offset, kind }
    }

    /// Map this error's byte offset to a 1-based `(line, column)` in `input`.
    pub fn line_col(&self, input: &str) -> (usize, usize) {
        let clamped = self.offset.min(input.len());
        let prefix = &input[..clamped];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = prefix
            .rfind('\n')
            .map(|p| clamped - p)
            .unwrap_or(clamped + 1);
        (line, col)
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at byte {}: ", self.offset)?;
        match &self.kind {
            XmlErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input in {what}"),
            XmlErrorKind::UnexpectedChar { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            XmlErrorKind::MismatchedClose { open, close } => {
                write!(f, "close tag </{close}> does not match open tag <{open}>")
            }
            XmlErrorKind::UnmatchedClose(name) => write!(f, "close tag </{name}> with no open tag"),
            XmlErrorKind::UnclosedElements(n) => write!(f, "{n} element(s) left unclosed"),
            XmlErrorKind::BadEntity(e) => write!(f, "bad entity reference &{e};"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            XmlErrorKind::BadName => write!(f, "malformed name"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after document root"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_lines_and_columns() {
        let input = "abc\ndef\nghi";
        let err = XmlError::new(5, XmlErrorKind::BadName);
        assert_eq!(err.line_col(input), (2, 2));
        let err0 = XmlError::new(0, XmlErrorKind::BadName);
        assert_eq!(err0.line_col(input), (1, 1));
    }

    #[test]
    fn line_col_clamps_past_end() {
        let err = XmlError::new(1000, XmlErrorKind::BadName);
        assert_eq!(err.line_col("ab"), (1, 3));
    }

    #[test]
    fn display_is_informative() {
        let err = XmlError::new(
            7,
            XmlErrorKind::MismatchedClose {
                open: "HOST".into(),
                close: "GRID".into(),
            },
        );
        let s = err.to_string();
        assert!(s.contains("byte 7"));
        assert!(s.contains("HOST"));
        assert!(s.contains("GRID"));
    }
}
