//! Property tests: any DOM tree we can build serializes to XML that parses
//! back to the identical tree, and the pull parser never panics on
//! arbitrary input.

use ganglia_xml::{Element, PullParser};
use proptest::prelude::*;

/// Strategy for plausible XML names (ASCII, Ganglia-style).
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.:-]{0,12}"
}

/// Attribute values: arbitrary printable text including reserved chars.
fn value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,24}").unwrap()
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), value_strategy()), 0..4),
    )
        .prop_map(|(name, raw_attrs)| {
            let mut elem = Element::new(name);
            for (n, v) in raw_attrs {
                elem.set_attr(n, v); // set_attr dedups names
            }
            elem
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec(inner, 0..4),
            value_strategy(),
        )
            .prop_map(|(name, children, text)| {
                let mut elem = Element::new(name);
                // Mixed content with children complicates equality (text
                // position is not preserved); only attach text to leaves.
                if children.is_empty() {
                    elem.text = text.trim().to_string();
                }
                elem.children = children;
                elem
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dom_roundtrips_through_serialization(root in element_strategy()) {
        let xml = root.to_xml();
        let parsed = Element::parse(&xml).unwrap();
        prop_assert_eq!(root, parsed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~<>&\"']{0,256}") {
        let mut parser = PullParser::new(&input);
        // Errors are fine; panics are not.
        for _ in 0..1024 {
            match parser.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_unicode(input in "\\PC{0,128}") {
        let mut parser = PullParser::new(&input);
        for _ in 0..1024 {
            match parser.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}
