//! Instantiate a monitoring tree over the simulated network.
//!
//! Leaves are pseudo-gmond clusters served at redundant addresses;
//! monitors are real [`Gmetad`] daemons serving their query ports at
//! `"{name}-gmeta"`. Rounds advance a virtual clock by the poll
//! interval: pseudo clusters reroll their metrics, then every monitor
//! polls its sources in deepest-first order so each round's leaf data
//! reaches the root deterministically (the live deployment would do the
//! same thing asynchronously).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ganglia_core::{ArchiveMode, DataSourceCfg, Gmetad, GmetadConfig, TreeMode};
use ganglia_gmond::pseudo::ServedPseudoCluster;
use ganglia_gmond::PseudoGmond;
use ganglia_net::transport::ServerGuard;
use ganglia_net::{Addr, SimNet};
use ganglia_rrd::{DataSourceDef, RraDef, RrdSpec};
use ganglia_web::ViewerClient;

use crate::cpu::CpuReport;
use crate::topology::TreeSpec;

/// Knobs for a deployment.
#[derive(Debug, Clone)]
pub struct DeploymentParams {
    pub mode: TreeMode,
    /// Seconds between poll rounds (the paper's default is 15).
    pub poll_interval: u64,
    pub seed: u64,
    /// Redundant serving addresses per pseudo cluster (fail-over
    /// targets).
    pub redundant_addrs: usize,
    /// Whether monitors archive to RRDs.
    pub archive: bool,
    /// Whether monitors publish their own telemetry as a synthetic
    /// `{name}-monitor` cluster each round ("monitor the monitor").
    pub self_telemetry: bool,
    /// Poll workers per monitor (`0` = automatic, `1` = the old
    /// sequential round).
    pub poll_concurrency: usize,
}

impl Default for DeploymentParams {
    fn default() -> Self {
        DeploymentParams {
            mode: TreeMode::NLevel,
            poll_interval: 15,
            seed: 42,
            redundant_addrs: 2,
            archive: true,
            self_telemetry: false,
            poll_concurrency: 0,
        }
    }
}

impl DeploymentParams {
    /// Same parameters with a different tree mode.
    pub fn with_mode(mut self, mode: TreeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Same parameters with self-telemetry publication toggled.
    pub fn with_self_telemetry(mut self, on: bool) -> Self {
        self.self_telemetry = on;
        self
    }

    /// Same parameters with a pinned poll worker count.
    pub fn with_poll_concurrency(mut self, workers: usize) -> Self {
        self.poll_concurrency = workers;
        self
    }
}

/// A running monitoring tree.
pub struct Deployment {
    net: Arc<SimNet>,
    tree: TreeSpec,
    params: DeploymentParams,
    clusters: HashMap<String, ServedPseudoCluster>,
    monitors: HashMap<String, Arc<Gmetad>>,
    _guards: Vec<Box<dyn ServerGuard>>,
    poll_order: Vec<String>,
    now: u64,
    rounds_since_reset: u64,
}

impl Deployment {
    /// Build and wire a tree. Panics on an invalid tree spec (caller
    /// bug, not a runtime condition).
    pub fn build(tree: TreeSpec, params: DeploymentParams) -> Deployment {
        tree.validate().expect("deployment requires a valid tree");
        let net = SimNet::new(params.seed);
        let mut clusters = HashMap::new();
        let mut monitors = HashMap::new();
        let mut guards: Vec<Box<dyn ServerGuard>> = Vec::new();

        for monitor in &tree.monitors {
            for cluster_spec in &monitor.local_clusters {
                let seed = params.seed ^ stable_hash(&cluster_spec.name);
                let pseudo = PseudoGmond::new(&cluster_spec.name, cluster_spec.hosts, seed, 0);
                let served = ServedPseudoCluster::serve(&net, pseudo, params.redundant_addrs);
                clusters.insert(cluster_spec.name.clone(), served);
            }
        }
        for monitor in &tree.monitors {
            let mut config = GmetadConfig::new(&monitor.name)
                .with_mode(params.mode)
                .with_self_telemetry(params.self_telemetry)
                .with_poll_concurrency(params.poll_concurrency);
            config.poll_interval = params.poll_interval;
            config.archive = if params.archive {
                ArchiveMode::InMemory
            } else {
                ArchiveMode::Off
            };
            for cluster_spec in &monitor.local_clusters {
                let served = &clusters[&cluster_spec.name];
                config = config.with_source(
                    DataSourceCfg::new(&cluster_spec.name, served.addrs().to_vec())
                        .expect("served clusters always have addresses"),
                );
            }
            for child in &monitor.children {
                config = config.with_source(
                    DataSourceCfg::new(child, vec![gmeta_addr_of(child)])
                        .expect("child monitors always have an address"),
                );
            }
            let poll_interval = params.poll_interval;
            let gmetad = Gmetad::with_archive_spec(
                config,
                // Compact archives: one full-resolution ring. Update cost
                // (what the experiments measure) is the same as the
                // five-archive ladder's hot path; memory is ~50× smaller,
                // which matters with 37k archives at the 1-level root.
                Some(Arc::new(move |key, start| RrdSpec {
                    step: poll_interval,
                    start,
                    data_sources: vec![DataSourceDef::gauge(key.metric.clone(), poll_interval * 8)],
                    archives: vec![RraDef::average(1, 64)],
                })),
            );
            guards.push(
                gmetad
                    .serve_on(&net, &gmeta_addr_of(&monitor.name))
                    .expect("monitor addresses are unique"),
            );
            monitors.insert(monitor.name.clone(), gmetad);
        }
        let poll_order = tree.bottom_up();
        Deployment {
            net,
            tree,
            params,
            clusters,
            monitors,
            _guards: guards,
            poll_order,
            now: 0,
            rounds_since_reset: 0,
        }
    }

    /// The simulated network (fault injection, traffic stats).
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }

    /// The tree this deployment runs.
    pub fn tree(&self) -> &TreeSpec {
        &self.tree
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// One monitor daemon.
    pub fn monitor(&self, name: &str) -> &Arc<Gmetad> {
        &self.monitors[name]
    }

    /// The query-port address of a monitor.
    pub fn gmeta_addr(&self, name: &str) -> Addr {
        gmeta_addr_of(name)
    }

    /// A viewer client pointed at one monitor.
    pub fn viewer(&self, monitor: &str) -> ViewerClient {
        ViewerClient::new(Arc::new(Arc::clone(&self.net)), gmeta_addr_of(monitor))
    }

    /// Advance one poll round: clusters reroll, every monitor polls its
    /// sources, children before parents.
    pub fn run_round(&mut self) {
        self.now += self.params.poll_interval;
        self.rounds_since_reset += 1;
        for served in self.clusters.values() {
            served.advance(self.now);
        }
        for name in &self.poll_order {
            let monitor = &self.monitors[name];
            let _ = monitor.poll_all(&self.net, self.now);
        }
    }

    /// Advance several rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Advance one poll round polling parents *before* children — the
    /// worst-case propagation order. A parent sees only what its child
    /// assembled last round, so every monitor level adds one full poll
    /// interval of data age by the time leaf data reaches the root. A
    /// live deployment with unsynchronized pollers lands between this
    /// and [`run_round`]'s children-first best case.
    ///
    /// [`run_round`]: Deployment::run_round
    pub fn run_round_top_down(&mut self) {
        self.now += self.params.poll_interval;
        self.rounds_since_reset += 1;
        for served in self.clusters.values() {
            served.advance(self.now);
        }
        for name in self.tree.breadth_first() {
            let monitor = &self.monitors[&name];
            let _ = monitor.poll_all(&self.net, self.now);
        }
    }

    /// Advance several worst-case (parents-first) rounds.
    pub fn run_rounds_top_down(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round_top_down();
        }
    }

    /// Zero every monitor's meter and the round counter (start of a
    /// measurement window).
    pub fn reset_meters(&mut self) {
        for monitor in self.monitors.values() {
            monitor.meter().reset();
        }
        self.rounds_since_reset = 0;
    }

    /// CPU report over the window since the last reset, rows in
    /// breadth-first tree order (matching the paper's figure-5 x-axis).
    pub fn cpu_report(&self) -> CpuReport {
        let window = Duration::from_secs(self.rounds_since_reset * self.params.poll_interval);
        let order = self.tree.breadth_first();
        let pairs: Vec<(&str, &ganglia_core::WorkMeter)> = order
            .iter()
            .map(|name| (name.as_str(), &**self.monitors[name].meter()))
            .collect();
        CpuReport::collect(window, pairs)
    }

    /// Telemetry snapshot of every monitor, rows in breadth-first tree
    /// order (matching [`cpu_report`]).
    pub fn telemetry_report(&self) -> Vec<(String, ganglia_core::telemetry::Snapshot)> {
        self.tree
            .breadth_first()
            .iter()
            .map(|name| (name.clone(), self.monitors[name].telemetry_snapshot()))
            .collect()
    }

    // -- fault injection ------------------------------------------------

    /// Stop-fail one serving node of a pseudo cluster.
    pub fn kill_cluster_node(&self, cluster: &str, node: usize) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_down(&addr, true);
    }

    /// Recover a serving node.
    pub fn restore_cluster_node(&self, cluster: &str, node: usize) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_down(&addr, false);
    }

    /// Partition (or heal) an entire cluster.
    pub fn partition_cluster(&self, cluster: &str, cut: bool) {
        self.net.partition_prefix(cluster, cut);
    }

    /// Stop-fail (or recover) a whole monitor daemon.
    pub fn set_monitor_down(&self, monitor: &str, down: bool) {
        self.net.set_down(&gmeta_addr_of(monitor), down);
    }

    /// Make one serving node of a pseudo cluster drop a fraction of its
    /// exchanges (0.0 clears the fault).
    pub fn set_cluster_node_flakiness(&self, cluster: &str, node: usize, drop_probability: f64) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_flakiness(&addr, drop_probability);
    }

    /// Delay one serving node's responses (`Duration::ZERO` clears);
    /// delays at or beyond the poller's fetch timeout trip it.
    pub fn set_cluster_node_latency(&self, cluster: &str, node: usize, latency: Duration) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_latency(&addr, latency);
    }

    /// Make one serving node really block for `delay` before answering
    /// (`Duration::ZERO` clears). Unlike [`set_cluster_node_latency`]'s
    /// simulated comparison against the timeout, this burns wall-clock
    /// time — the fault parallel polling exists to contain.
    ///
    /// [`set_cluster_node_latency`]: Deployment::set_cluster_node_latency
    pub fn set_cluster_node_wire_delay(&self, cluster: &str, node: usize, delay: Duration) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_wire_delay(&addr, delay);
    }

    /// Truncate one serving node's responses to `bytes` (`None` clears).
    pub fn set_cluster_node_truncation(&self, cluster: &str, node: usize, bytes: Option<usize>) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_truncation(&addr, bytes);
    }

    /// Corrupt (or stop corrupting) one serving node's responses.
    pub fn set_cluster_node_garbage(&self, cluster: &str, node: usize, enabled: bool) {
        let addr = self.clusters[cluster].addrs()[node].clone();
        self.net.set_garbage(&addr, enabled);
    }

    /// Delay (or stop delaying) a whole monitor daemon's query port.
    pub fn set_monitor_latency(&self, monitor: &str, latency: Duration) {
        self.net.set_latency(&gmeta_addr_of(monitor), latency);
    }
}

fn gmeta_addr_of(name: &str) -> Addr {
    Addr::new(format!("{name}-gmeta"))
}

/// FNV-1a, for stable per-cluster seeds.
fn stable_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::fig2_tree;
    use ganglia_core::SourceStatus;

    fn small_deployment(mode: TreeMode) -> Deployment {
        Deployment::build(fig2_tree(5), DeploymentParams::default().with_mode(mode))
    }

    #[test]
    fn one_round_propagates_leaves_to_root() {
        let mut deployment = small_deployment(TreeMode::NLevel);
        deployment.run_round();
        let root = deployment.monitor("root");
        // Root sees 4 sources: 2 local clusters + ucsd + sdsc.
        assert_eq!(root.store().len(), 4);
        // All 60 hosts are visible in the root's summary.
        assert_eq!(root.store().root_summary().hosts_total(), 60);
    }

    #[test]
    fn nlevel_root_stores_summaries_onelevel_stores_detail() {
        let mut n = small_deployment(TreeMode::NLevel);
        n.run_round();
        let state = n.monitor("root").store().get("ucsd").unwrap();
        let ganglia_core::SourceData::Grid(grid) = &state.data else {
            panic!()
        };
        assert!(matches!(
            grid.body,
            ganglia_metrics::model::GridBody::Summary(_)
        ));

        let mut one = small_deployment(TreeMode::OneLevel);
        one.run_round();
        let state = one.monitor("root").store().get("ucsd").unwrap();
        let ganglia_core::SourceData::Grid(grid) = &state.data else {
            panic!()
        };
        assert!(matches!(
            grid.body,
            ganglia_metrics::model::GridBody::Items(_)
        ));
        // 1-level root archives every host; N-level root archives far
        // fewer databases.
        assert!(one.monitor("root").archive_count() > n.monitor("root").archive_count() * 5);
    }

    #[test]
    fn cpu_report_covers_all_monitors_in_bfs_order() {
        let mut deployment = small_deployment(TreeMode::NLevel);
        deployment.run_rounds(2);
        deployment.reset_meters();
        deployment.run_rounds(3);
        let report = deployment.cpu_report();
        let names: Vec<&str> = report.rows.iter().map(|r| r.monitor.as_str()).collect();
        assert_eq!(
            names,
            vec!["root", "ucsd", "sdsc", "physics", "math", "attic"]
        );
        assert_eq!(report.window, Duration::from_secs(45));
        assert!(report.aggregate_percent() > 0.0);
    }

    #[test]
    fn failover_inside_a_deployment() {
        let mut deployment = small_deployment(TreeMode::NLevel);
        deployment.run_round();
        deployment.kill_cluster_node("sdsc-c0", 0);
        deployment.run_round();
        let sdsc = deployment.monitor("sdsc");
        let stats = sdsc.poller_stats();
        let row = stats.iter().find(|s| s.name == "sdsc-c0").unwrap();
        assert_eq!(row.polls_failed, 0, "no failed polls: failover succeeded");
        assert_eq!(row.failovers, 1, "one failover");
        let state = sdsc.store().get("sdsc-c0").unwrap();
        assert_eq!(state.status, SourceStatus::Fresh);
    }

    #[test]
    fn partition_marks_source_stale_and_heals() {
        let mut deployment = small_deployment(TreeMode::NLevel);
        deployment.run_round();
        deployment.partition_cluster("sdsc-c0", true);
        deployment.run_round();
        let sdsc = deployment.monitor("sdsc").clone();
        assert!(matches!(
            sdsc.store().get("sdsc-c0").unwrap().status,
            SourceStatus::Stale { .. }
        ));
        deployment.partition_cluster("sdsc-c0", false);
        deployment.run_round();
        assert_eq!(
            sdsc.store().get("sdsc-c0").unwrap().status,
            SourceStatus::Fresh
        );
    }

    #[test]
    fn corrupt_and_slow_endpoints_surface_as_typed_errors() {
        use ganglia_core::GmetadError;
        let mut deployment = small_deployment(TreeMode::NLevel);
        deployment.run_round();
        let sdsc = deployment.monitor("sdsc").clone();
        let hosts_before = sdsc.store().get("sdsc-c0").unwrap().host_count();
        assert!(hosts_before > 0);

        // Garbage on the preferred node: the transport "succeeds", the
        // parse does not — a BadReport, not a network error.
        deployment.set_cluster_node_garbage("sdsc-c0", 0, true);
        let errors: Vec<GmetadError> = sdsc
            .poll_all(deployment.net(), 30)
            .into_iter()
            .filter_map(Result::err)
            .collect();
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, GmetadError::BadReport { source, .. } if source == "sdsc-c0")),
            "expected BadReport, got {errors:?}"
        );
        deployment.set_cluster_node_garbage("sdsc-c0", 0, false);

        // Truncation: same story, the XML dies mid-transfer.
        deployment.set_cluster_node_truncation("sdsc-c0", 0, Some(60));
        let errors: Vec<GmetadError> = sdsc
            .poll_all(deployment.net(), 45)
            .into_iter()
            .filter_map(Result::err)
            .collect();
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, GmetadError::BadReport { source, .. } if source == "sdsc-c0")),
            "expected BadReport, got {errors:?}"
        );
        deployment.set_cluster_node_truncation("sdsc-c0", 0, None);

        // Latency past the fetch timeout on every redundant node: the
        // source fails outright, each endpoint reporting a timeout.
        deployment.set_cluster_node_latency("sdsc-c0", 0, Duration::from_secs(30));
        deployment.set_cluster_node_latency("sdsc-c0", 1, Duration::from_secs(30));
        let errors: Vec<GmetadError> = sdsc
            .poll_all(deployment.net(), 60)
            .into_iter()
            .filter_map(Result::err)
            .collect();
        let timeout_failure = errors.iter().find_map(|e| match e {
            GmetadError::AllHostsFailed { source, errors } if source == "sdsc-c0" => Some(errors),
            _ => None,
        });
        let net_errors = timeout_failure.expect("latency must fail the whole source");
        assert!(net_errors
            .iter()
            .all(|e| matches!(e, ganglia_net::NetError::Timeout(_))));

        // Throughout, the store kept serving the last good snapshot.
        let state = sdsc.store().get("sdsc-c0").unwrap();
        assert_eq!(state.host_count(), hosts_before);
        assert!(matches!(state.status, SourceStatus::Stale { .. }));

        // Clearing the faults heals the source (fail-over to the
        // still-closed endpoint if the first one's breaker is open).
        deployment.set_cluster_node_latency("sdsc-c0", 0, Duration::ZERO);
        deployment.set_cluster_node_latency("sdsc-c0", 1, Duration::ZERO);
        sdsc.poll_all(deployment.net(), 75);
        assert_eq!(
            sdsc.store().get("sdsc-c0").unwrap().status,
            SourceStatus::Fresh
        );
    }

    #[test]
    fn monitor_failure_degrades_gracefully() {
        let mut deployment = small_deployment(TreeMode::NLevel);
        deployment.run_round();
        deployment.set_monitor_down("sdsc", true);
        deployment.run_round();
        let root = deployment.monitor("root").clone();
        assert!(matches!(
            root.store().get("sdsc").unwrap().status,
            SourceStatus::Stale { .. }
        ));
        // Last-good summary still answers meta queries.
        assert_eq!(root.store().root_summary().hosts_total(), 60);
        deployment.set_monitor_down("sdsc", false);
        deployment.run_round();
        assert_eq!(
            root.store().get("sdsc").unwrap().status,
            SourceStatus::Fresh
        );
    }
}
