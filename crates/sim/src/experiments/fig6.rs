//! Figure 6: aggregate CPU utilization vs cluster size.
//!
//! "The monitoring tree is kept unchanged, while the size of the 12
//! monitored clusters increases. The y-axis is the sum of the CPU
//! utilization across all gmeta nodes." (§4.2)
//!
//! Expected shape (§4.3): the N-level design scales linearly with a low
//! slope; the 1-level version has a higher slope and "a slight upward
//! curve" from root saturation and duplicated archives. At every point
//! the N-level aggregate is below the 1-level one.

use ganglia_core::TreeMode;

use crate::deploy::{Deployment, DeploymentParams};
use crate::topology::fig2_tree;

/// Experiment knobs.
#[derive(Debug, Clone)]
pub struct Fig6Params {
    /// Cluster sizes to sweep (paper: 10–500 hosts).
    pub cluster_sizes: Vec<usize>,
    pub warmup_rounds: u64,
    pub measured_rounds: u64,
    pub seed: u64,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            cluster_sizes: vec![10, 50, 100, 150, 200, 300, 400, 500],
            warmup_rounds: 1,
            measured_rounds: 4,
            seed: 42,
        }
    }
}

/// One x-position of figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    pub cluster_size: usize,
    pub one_level_aggregate_pct: f64,
    pub n_level_aggregate_pct: f64,
}

/// The whole figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    pub rows: Vec<Fig6Row>,
}

impl Fig6Result {
    /// Least-squares slope of aggregate CPU% per host, per design —
    /// used to compare scaling behaviour.
    pub fn slopes(&self) -> (f64, f64) {
        (
            slope(
                self.rows
                    .iter()
                    .map(|r| (r.cluster_size as f64, r.one_level_aggregate_pct)),
            ),
            slope(
                self.rows
                    .iter()
                    .map(|r| (r.cluster_size as f64, r.n_level_aggregate_pct)),
            ),
        )
    }
}

fn slope(points: impl Iterator<Item = (f64, f64)>) -> f64 {
    let pts: Vec<(f64, f64)> = points.collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

fn aggregate(mode: TreeMode, hosts: usize, params: &Fig6Params) -> f64 {
    let mut deployment = Deployment::build(
        fig2_tree(hosts),
        DeploymentParams {
            mode,
            seed: params.seed,
            ..DeploymentParams::default()
        },
    );
    deployment.run_rounds(params.warmup_rounds);
    deployment.reset_meters();
    deployment.run_rounds(params.measured_rounds);
    deployment.cpu_report().aggregate_percent()
}

/// Run the figure-6 sweep.
pub fn run_fig6(params: &Fig6Params) -> Fig6Result {
    let rows = params
        .cluster_sizes
        .iter()
        .map(|&cluster_size| Fig6Row {
            cluster_size,
            one_level_aggregate_pct: aggregate(TreeMode::OneLevel, cluster_size, params),
            n_level_aggregate_pct: aggregate(TreeMode::NLevel, cluster_size, params),
        })
        .collect();
    Fig6Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_helper_is_least_squares() {
        let s = slope([(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)].into_iter());
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(slope(std::iter::empty()), 0.0);
    }

    /// A scaled-down figure 6 (three sizes) exhibiting the paper's
    /// ordering properties.
    #[test]
    fn fig6_shape_holds_at_reduced_scale() {
        let result = run_fig6(&Fig6Params {
            cluster_sizes: vec![10, 30, 60],
            warmup_rounds: 1,
            measured_rounds: 4,
            seed: 7,
        });
        assert_eq!(result.rows.len(), 3);
        // N-level aggregate below 1-level at every point (§4.3: "In all
        // data points the aggregate CPU usage is less for the N-level
        // monitor").
        for row in &result.rows {
            assert!(
                row.n_level_aggregate_pct < row.one_level_aggregate_pct,
                "at {} hosts: N {} vs 1 {}",
                row.cluster_size,
                row.n_level_aggregate_pct,
                row.one_level_aggregate_pct
            );
        }
        // Work grows with cluster size for both designs.
        assert!(result.rows[2].one_level_aggregate_pct > result.rows[0].one_level_aggregate_pct);
        // The 1-level slope is steeper.
        let (one_slope, n_slope) = result.slopes();
        assert!(
            one_slope > n_slope,
            "slopes: 1-level {one_slope} vs N-level {n_slope}"
        );
    }
}
