//! Continuous queries measured: pushed delta traffic vs a re-polling
//! client, across churn levels.
//!
//! A viewer that wants "the load of every host, always current" has two
//! options against a gmetad: re-issue the one-shot GQL query every poll
//! round and re-download the full result, or subscribe once and receive
//! delta frames carrying only the rows that changed. This experiment
//! drives both against the same churn corpus (the ingest experiment's
//! generator: a configurable fraction of hosts change one metric value
//! per round) and accounts the bytes each strategy transfers after the
//! initial snapshot, which both strategies pay identically.
//!
//! Two invariants are checked while measuring and reported in the
//! result rows:
//!
//! * **consistency** — replaying the pushed deltas into a mirror
//!   renders byte-identically to a fresh server-side evaluation, every
//!   round;
//! * **latency** — every pushed frame carries the revision of the round
//!   that produced it, i.e. a subscriber is never behind a re-polling
//!   client by more than the round that is currently being pushed
//!   (worst observed lag is reported in rounds).

use std::sync::Arc;

use ganglia_core::telemetry::Registry;
use ganglia_metrics::parse_document;
use ganglia_query::gql::{render_xml, Delta, GqlQuery, Mirror};
use ganglia_serve::SubscriptionRegistry;
use parking_lot::Mutex;

use crate::experiments::ingest::{churn_corpus, IngestParams};

/// Shape of the subscription workload.
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// Hosts in the simulated cluster.
    pub hosts: usize,
    /// Metrics per host.
    pub metrics_per_host: usize,
    /// Poll rounds per churn level (including the snapshot round).
    pub rounds: usize,
    /// The continuous query under test. The default selects the
    /// corpus's churned metric on every host, so result churn tracks
    /// host churn one-to-one.
    pub expr: String,
    pub seed: u64,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            hosts: 128,
            metrics_per_host: 24,
            rounds: 40,
            expr: "metric == metric_00".to_string(),
            seed: 0x5eed_0002,
        }
    }
}

/// One measured churn level.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Fraction of hosts whose watched value changes per round.
    pub churn: f64,
    /// Rows in the query result.
    pub result_rows: usize,
    /// Bytes of the initial snapshot frame (paid once by both sides).
    pub snapshot_bytes: u64,
    /// Delta frame bytes pushed across the post-snapshot rounds.
    pub delta_bytes: u64,
    /// Bytes a re-polling client downloads over the same rounds
    /// (one full query response per round).
    pub repoll_bytes: u64,
    /// Rounds that pushed no frame because the result was unchanged.
    pub quiet_rounds: u64,
    /// Worst observed frame lag, in poll rounds (frame revision vs the
    /// revision current when the frame was read).
    pub max_latency_rounds: u64,
    /// Whether the replayed mirror was byte-identical to a fresh
    /// evaluation after every round.
    pub consistent: bool,
}

impl QueryRow {
    /// Pushed delta traffic as a fraction of re-poll traffic.
    pub fn delta_fraction(&self) -> f64 {
        self.delta_bytes as f64 / (self.repoll_bytes as f64).max(1.0)
    }
}

/// The whole churn sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub params_hosts: usize,
    pub params_rounds: usize,
    pub expr: String,
    pub rows: Vec<QueryRow>,
}

/// Measure one churn level: feed the corpus through a subscription
/// registry round by round, accounting pushed frame bytes against the
/// re-poll cost of the same query.
fn measure(params: &QueryParams, churn: f64) -> QueryRow {
    let corpus = churn_corpus(
        &IngestParams {
            hosts: params.hosts,
            metrics_per_host: params.metrics_per_host,
            rounds: params.rounds,
        },
        churn,
        params.seed,
    );
    let query = GqlQuery::parse(&params.expr).expect("experiment expression parses");

    // The "store": the current round's evaluated rows at its revision,
    // swapped in before each run_round like a poll round installing
    // snapshots.
    let current: Arc<Mutex<(ganglia_query::RowSet, u64)>> = Arc::new(Mutex::new((Vec::new(), 0)));
    let eval_state = Arc::clone(&current);
    let telemetry = Registry::new();
    let subs = SubscriptionRegistry::new(
        Box::new(move |_q: &GqlQuery| {
            let state = eval_state.lock();
            (state.0.clone(), state.1)
        }),
        4,
        4,
        &telemetry,
    );

    // Round 1 installs the first document and takes the snapshot.
    let doc = parse_document(&corpus[0]).expect("corpus parses");
    *current.lock() = (query.evaluate_doc(&doc), 1);
    let handle = subs
        .subscribe("bench", &params.expr)
        .expect("subscribe under capacity");
    let mut mirror = Mirror::new();
    mirror.apply(&Delta::parse(&handle.initial).expect("snapshot parses"));

    let mut row = QueryRow {
        churn,
        result_rows: mirror.len(),
        snapshot_bytes: handle.initial.len() as u64,
        delta_bytes: 0,
        repoll_bytes: 0,
        quiet_rounds: 0,
        max_latency_rounds: 0,
        consistent: true,
    };
    for (round, xml) in corpus.iter().enumerate().skip(1) {
        let revision = round as u64 + 1;
        let doc = parse_document(xml).expect("corpus parses");
        let rows = query.evaluate_doc(&doc);
        let fresh = render_xml(&rows, revision);
        *current.lock() = (rows, revision);
        subs.run_round();
        // What a re-polling client downloads this round regardless of
        // how little changed.
        row.repoll_bytes += fresh.len() as u64;
        match handle.next(std::time::Duration::from_millis(0)) {
            Ok(frame) => {
                let delta = Delta::parse(&frame).expect("frame parses");
                row.max_latency_rounds = row.max_latency_rounds.max(revision - delta.revision);
                row.delta_bytes += frame.len() as u64;
                mirror.apply(&delta);
            }
            Err(_) => row.quiet_rounds += 1,
        }
        // On a quiet round the mirror legitimately keeps the revision
        // of the last change, so compare row content at the current
        // revision: a pushed frame makes this the same bytes as
        // `mirror.render()`.
        if render_xml(&mirror.rows(), revision) != fresh {
            row.consistent = false;
        }
    }
    row
}

/// Run the churn sweep.
pub fn run_query_churn(params: &QueryParams, churns: &[f64]) -> QueryResult {
    QueryResult {
        params_hosts: params.hosts,
        params_rounds: params.rounds,
        expr: params.expr.clone(),
        rows: churns.iter().map(|&c| measure(params, c)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> QueryParams {
        QueryParams {
            hosts: 32,
            metrics_per_host: 6,
            rounds: 10,
            ..QueryParams::default()
        }
    }

    #[test]
    fn deltas_are_consistent_and_cheap_at_low_churn() {
        let result = run_query_churn(&small_params(), &[0.0, 0.1, 1.0]);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(row.consistent, "churn {}: mirror diverged", row.churn);
            assert!(
                row.max_latency_rounds <= 1,
                "churn {}: frame lagged {} rounds",
                row.churn,
                row.max_latency_rounds
            );
            assert_eq!(row.result_rows, 32, "one row per host");
        }
        // Nothing changes at 0% churn: no frames at all.
        assert_eq!(result.rows[0].delta_bytes, 0);
        assert_eq!(result.rows[0].quiet_rounds, 9);
        // At 10% churn the pushed traffic is a small fraction of what a
        // re-polling client downloads.
        assert!(
            result.rows[1].delta_fraction() < 0.25,
            "10% churn delta fraction {:.3}",
            result.rows[1].delta_fraction()
        );
        // Even full churn never costs more than re-polling.
        assert!(
            result.rows[2].delta_fraction() <= 1.0,
            "100% churn delta fraction {:.3}",
            result.rows[2].delta_fraction()
        );
    }
}
