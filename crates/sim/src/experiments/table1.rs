//! Table 1: viewer download+parse time per web view.
//!
//! "Timings are taken from the perspective of Ganglia's web viewing
//! application... Each value represents the time needed by the viewer to
//! download and parse the XML from a gmeta agent in the monitoring
//! tree... We point the viewer at the sdsc gmeta node for this test
//! where the clusters have 100 hosts each... each value in table 1 is
//! the average of five samples." (§4.2)
//!
//! Expected shape (§4.3): huge N-level speedups for the meta view
//! (daemon-side summaries) and the host view (subtree query instead of
//! parse-and-discard); a modest one for the full-resolution cluster
//! view, whose parsing load is similar in both designs.

use std::time::Duration;

use ganglia_core::TreeMode;
use ganglia_web::{Frontend, NLevelFrontend, OneLevelFrontend, ViewTiming};

use crate::deploy::{Deployment, DeploymentParams};
use crate::topology::fig2_tree;

/// Experiment knobs.
#[derive(Debug, Clone)]
pub struct Table1Params {
    /// Hosts per cluster (paper: 100).
    pub hosts_per_cluster: usize,
    /// Samples averaged per cell (paper: 5).
    pub samples: u32,
    /// Monitor the viewer points at (paper: sdsc).
    pub viewer_target: String,
    pub seed: u64,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            hosts_per_cluster: 100,
            samples: 5,
            viewer_target: "sdsc".to_string(),
            seed: 42,
        }
    }
}

/// The three columns of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    Meta,
    Cluster,
    Host,
}

impl View {
    pub const ALL: [View; 3] = [View::Meta, View::Cluster, View::Host];

    /// Column header.
    pub fn label(self) -> &'static str {
        match self {
            View::Meta => "Meta",
            View::Cluster => "Cluster",
            View::Host => "Host",
        }
    }
}

/// One column of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Cell {
    pub view: View,
    pub one_level: ViewTiming,
    pub n_level: ViewTiming,
}

impl Table1Cell {
    /// The speedup row: 1-level time / N-level time.
    pub fn speedup(&self) -> f64 {
        let one = self.one_level.download_and_parse().as_secs_f64();
        let n = self.n_level.download_and_parse().as_secs_f64();
        if n <= 0.0 {
            return f64::INFINITY;
        }
        one / n
    }
}

/// The whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    pub cells: Vec<Table1Cell>,
}

impl Table1Result {
    /// Column lookup.
    pub fn view(&self, view: View) -> &Table1Cell {
        self.cells
            .iter()
            .find(|c| c.view == view)
            .expect("all three views present")
    }
}

fn average_views(
    frontend: &dyn Frontend,
    cluster: &str,
    host: &str,
    samples: u32,
) -> [ViewTiming; 3] {
    let mut totals = [ViewTiming::default(); 3];
    for _ in 0..samples {
        let (_, t) = frontend.meta_view().expect("meta view renders");
        totals[0].add(&t);
        let (_, t) = frontend
            .cluster_view(cluster)
            .expect("cluster view renders");
        totals[1].add(&t);
        let (_, t) = frontend
            .host_view(cluster, host)
            .expect("host view renders");
        totals[2].add(&t);
    }
    [
        totals[0].div(samples),
        totals[1].div(samples),
        totals[2].div(samples),
    ]
}

fn run_mode(mode: TreeMode, params: &Table1Params) -> [ViewTiming; 3] {
    let mut deployment = Deployment::build(
        fig2_tree(params.hosts_per_cluster),
        DeploymentParams {
            mode,
            seed: params.seed,
            // Table 1 measures the viewer, not archiving.
            archive: false,
            ..DeploymentParams::default()
        },
    );
    deployment.run_rounds(2);
    let target = &params.viewer_target;
    // Pick a host of the target's first local cluster.
    let cluster = format!("{target}-c0");
    let host = format!("{cluster}-0000");
    let client = deployment.viewer(target);
    match mode {
        TreeMode::OneLevel => {
            let frontend = OneLevelFrontend::new(client);
            average_views(&frontend, &cluster, &host, params.samples)
        }
        TreeMode::NLevel => {
            let frontend = NLevelFrontend::new(client);
            average_views(&frontend, &cluster, &host, params.samples)
        }
    }
}

/// Run the table-1 experiment.
pub fn run_table1(params: &Table1Params) -> Table1Result {
    let one = run_mode(TreeMode::OneLevel, params);
    let n = run_mode(TreeMode::NLevel, params);
    let cells = View::ALL
        .iter()
        .enumerate()
        .map(|(i, &view)| Table1Cell {
            view,
            one_level: one[i],
            n_level: n[i],
        })
        .collect();
    Table1Result { cells }
}

/// Pretty seconds for table output.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down table 1 exhibiting the paper's ordering.
    #[test]
    fn table1_shape_holds_at_reduced_scale() {
        let result = run_table1(&Table1Params {
            hosts_per_cluster: 40,
            samples: 2,
            viewer_target: "sdsc".to_string(),
            seed: 7,
        });
        assert_eq!(result.cells.len(), 3);
        let meta = result.view(View::Meta);
        let cluster = result.view(View::Cluster);
        let host = result.view(View::Host);

        // Every view is faster under N-level.
        for cell in [&meta, &cluster, &host] {
            assert!(
                cell.speedup() > 1.0,
                "{:?} speedup {}",
                cell.view,
                cell.speedup()
            );
        }
        // Meta and host views gain far more than the cluster view
        // (§4.3: "the parsing load of the full-resolution cluster view
        // is similar for the two monitor designs").
        assert!(meta.speedup() > cluster.speedup());
        assert!(host.speedup() > cluster.speedup());

        // The XML the N-level viewer downloads is a fraction of the full
        // tree.
        assert!(meta.n_level.xml_bytes * 4 < meta.one_level.xml_bytes);
        assert!(host.n_level.xml_bytes * 4 < host.one_level.xml_bytes);
    }
}
