//! The ingest path, measured: rebuild-every-round parsing vs the
//! delta-aware [`Ingester`] across churn levels.
//!
//! Between poll rounds a child's report is almost byte-identical — on a
//! quiet cluster only a handful of `VAL` attributes move. The corpus
//! generator here models that regime explicitly: `TN`/`REPORTED` are
//! frozen (a real gmond in a simulator would reroll them every round,
//! hiding the reuse a production poll cadence actually sees) and a
//! configurable fraction of hosts change one metric value per round.
//! The experiment then runs the same corpus through both paths and
//! verifies, round by round, that they produce byte-identical rendered
//! XML — the delta path is an optimization, never a behavior change.

use std::time::{Duration, Instant};

use ganglia_metrics::model::GridItem;
use ganglia_metrics::{parse_document, write_document, Ingester};

/// The paper's figure 3 document (a grid of grids), used as a fixed
/// byte-identity corpus alongside the generated one.
pub const FIG3_XML: &str = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmetad">
<GRID NAME="SDSC" AUTHORITY="http://sdsc/ganglia/">
 <CLUSTER NAME="Meteor" LOCALTIME="1058918400">
  <HOST NAME="compute-0-0" IP="10.255.255.254" REPORTED="1058918395" TN="5" TMAX="20" DMAX="0">
   <METRIC NAME="cpu_num" VAL="2" TYPE="int32" UNITS="CPUs" TN="10" TMAX="1200" DMAX="0" SLOPE="zero" SOURCE="gmond"/>
   <METRIC NAME="load_one" VAL="0.89" TYPE="float" UNITS="" TN="10" TMAX="70" DMAX="0" SLOPE="both" SOURCE="gmond"/>
  </HOST>
  <HOST NAME="compute-0-1" IP="10.255.255.253" REPORTED="1058918396" TN="4" TMAX="20" DMAX="0">
   <METRIC NAME="cpu_num" VAL="2" TYPE="int32" UNITS="CPUs" TN="10" TMAX="1200" DMAX="0" SLOPE="zero" SOURCE="gmond"/>
   <METRIC NAME="load_one" VAL="0.89" TYPE="float" UNITS="" TN="10" TMAX="70" DMAX="0" SLOPE="both" SOURCE="gmond"/>
  </HOST>
 </CLUSTER>
 <GRID NAME="ATTIC" AUTHORITY="http://attic/ganglia/">
  <HOSTS UP="10" DOWN="1"/>
  <METRICS NAME="cpu_num" SUM="20" NUM="10" TYPE="int32"/>
  <METRICS NAME="load_one" SUM="17.56" NUM="10" TYPE="float"/>
 </GRID>
</GRID>
</GANGLIA_XML>"#;

/// Shape of the ingest workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestParams {
    /// Hosts in the simulated cluster.
    pub hosts: usize,
    /// Metrics per host (a real gmond carries ~30 built-ins).
    pub metrics_per_host: usize,
    /// Poll rounds per churn level.
    pub rounds: usize,
}

impl Default for IngestParams {
    fn default() -> Self {
        IngestParams {
            hosts: 128,
            metrics_per_host: 24,
            rounds: 40,
        }
    }
}

/// One churn level's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRow {
    /// Fraction of hosts whose bytes change each round, in `[0, 1]`.
    pub churn: f64,
    /// Bytes of one round's report.
    pub report_bytes: usize,
    /// Rebuild-every-round: parse + summarize per round.
    pub baseline_elapsed: Duration,
    /// Delta-aware: [`Ingester::ingest`] per round.
    pub delta_elapsed: Duration,
    /// Host reuse across the delta pass (excludes the cold round).
    pub hosts_reused: u64,
    pub hosts_rebuilt: u64,
    /// Rounds answered entirely from the whole-document fingerprint.
    pub docs_reused: u64,
    /// Every round rendered byte-identically across the two paths.
    pub byte_identical: bool,
}

impl IngestRow {
    /// Baseline time over delta time: how much the cache buys.
    pub fn speedup(&self) -> f64 {
        self.baseline_elapsed.as_secs_f64() / self.delta_elapsed.as_secs_f64().max(1e-12)
    }

    /// Corpus megabytes parsed per second by the delta path.
    pub fn delta_mb_per_s(&self, rounds: usize) -> f64 {
        (self.report_bytes * rounds) as f64 / 1e6 / self.delta_elapsed.as_secs_f64().max(1e-12)
    }
}

/// Result of [`run_ingest_churn`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestResult {
    pub params: IngestParams,
    pub rows: Vec<IngestRow>,
    /// The fig-3 document also renders byte-identically via the
    /// delta path (cold and warm).
    pub fig3_identical: bool,
}

/// xorshift over a seed — deterministic, dependency-free value churn.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One round's report: `hosts` hosts with `metrics_per_host` metrics,
/// `TN`/`REPORTED` frozen, and each host's first metric value drawn
/// from `vals[host]`.
fn render_round(hosts: usize, metrics_per_host: usize, vals: &[u64]) -> String {
    let mut xml = String::with_capacity(hosts * metrics_per_host * 140);
    xml.push_str(
        "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmond\">\
         <CLUSTER NAME=\"churn\" LOCALTIME=\"1000\" OWNER=\"lab\" LATLONG=\"\" URL=\"\">",
    );
    for (h, &hval) in vals.iter().enumerate().take(hosts) {
        xml.push_str(&format!(
            "<HOST NAME=\"node-{h:04}\" IP=\"10.0.{}.{}\" REPORTED=\"990\" TN=\"5\" \
             TMAX=\"20\" DMAX=\"0\" LOCATION=\"r{},c{}\" STARTED=\"100\">",
            h / 256,
            h % 256,
            h / 16,
            h % 16
        ));
        for m in 0..metrics_per_host {
            // Metric 0 carries the churned value; the rest are constants
            // shared across every host (the realistic case: cpu_num,
            // boottime, installed memory... rarely move).
            let val = if m == 0 {
                format!("{}.{:02}", hval % 100, hval % 97)
            } else {
                format!("{}", (m * 7) % 1000)
            };
            xml.push_str(&format!(
                "<METRIC NAME=\"metric_{m:02}\" VAL=\"{val}\" TYPE=\"float\" UNITS=\"u{}\" \
                 TN=\"8\" TMAX=\"70\" DMAX=\"0\" SLOPE=\"both\" SOURCE=\"gmond\"/>",
                m % 5
            ));
        }
        xml.push_str("</HOST>");
    }
    xml.push_str("</CLUSTER></GANGLIA_XML>");
    xml
}

/// Generate `rounds` reports where a `churn` fraction of hosts change
/// one metric value between consecutive rounds (frozen timestamps, so
/// unchanged hosts are byte-identical). Deterministic in `seed`.
pub fn churn_corpus(params: &IngestParams, churn: f64, seed: u64) -> Vec<String> {
    let mut rng = seed | 1;
    let mut vals: Vec<u64> = (0..params.hosts).map(|h| h as u64 * 31).collect();
    let churned = ((params.hosts as f64) * churn).round() as usize;
    (0..params.rounds)
        .map(|round| {
            if round > 0 {
                // Rotate which hosts churn so reuse is not an artifact
                // of one fixed hot set.
                for k in 0..churned {
                    let h = (round * 13 + k * 7) % params.hosts;
                    vals[h] = next_rand(&mut rng);
                }
            }
            render_round(params.hosts, params.metrics_per_host, &vals)
        })
        .collect()
}

/// Rebuild-every-round pass: what the poller did before the delta path
/// — parse the full document and recompute the cluster summary. Returns
/// a checksum so the optimizer cannot elide the work.
pub fn baseline_pass(corpus: &[String]) -> u64 {
    let mut check = 0u64;
    for xml in corpus {
        let doc = parse_document(xml).expect("corpus parses");
        for item in &doc.items {
            let summary = match item {
                GridItem::Cluster(c) => c.summary(),
                GridItem::Grid(g) => g.summary(),
            };
            check = check
                .wrapping_mul(31)
                .wrapping_add(summary.hosts_up as u64)
                .wrapping_add(summary.metrics.len() as u64);
        }
    }
    check
}

/// Totals of one delta-aware pass over the corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaTotals {
    pub hosts_reused: u64,
    pub hosts_rebuilt: u64,
    pub docs_reused: u64,
}

/// Delta-aware pass: one [`Ingester`] carried across every round.
pub fn delta_pass(corpus: &[String]) -> DeltaTotals {
    let mut ingester = Ingester::new();
    let mut totals = DeltaTotals::default();
    for xml in corpus {
        let ingested = ingester.ingest(xml).expect("corpus parses");
        totals.hosts_reused += ingested.stats.hosts_reused;
        totals.hosts_rebuilt += ingested.stats.hosts_rebuilt;
        totals.docs_reused += u64::from(ingested.stats.doc_reused);
    }
    totals
}

/// Whether both paths render every round of `corpus` byte-identically.
pub fn byte_identical(corpus: &[String]) -> bool {
    let mut ingester = Ingester::new();
    corpus.iter().all(|xml| {
        let plain = write_document(&parse_document(xml).expect("corpus parses"));
        let delta = write_document(&ingester.ingest(xml).expect("corpus parses").doc);
        plain == delta
    })
}

/// Run the churn sweep: both paths over the same corpora, timed, with
/// the byte-identity invariant checked at every round.
pub fn run_ingest_churn(params: &IngestParams, churns: &[f64]) -> IngestResult {
    let rows = churns
        .iter()
        .map(|&churn| {
            let corpus = churn_corpus(params, churn, 0x5eed_0001);
            let report_bytes = corpus[0].len();
            // Best of five *interleaved* repetitions per pass: the CI
            // gates compare these two times as a ratio, and minimums
            // are far less sensitive to scheduler noise than single
            // shots. Interleaving matters as much as repeating — a
            // noisy-neighbor burst lasting one pass then degrades a
            // baseline rep and a delta rep alike instead of landing
            // entirely on whichever side happened to be running. Each
            // delta repetition uses a fresh ingester, so the reps are
            // independent and the reuse totals identical.
            const REPS: usize = 5;
            let mut baseline_elapsed = Duration::MAX;
            let mut delta_elapsed = Duration::MAX;
            let mut totals = DeltaTotals::default();
            for _ in 0..REPS {
                let start = Instant::now();
                let check = baseline_pass(&corpus);
                baseline_elapsed = baseline_elapsed.min(start.elapsed());
                assert_ne!(check, u64::MAX, "checksum consumed");
                let start = Instant::now();
                totals = delta_pass(&corpus);
                delta_elapsed = delta_elapsed.min(start.elapsed());
            }
            IngestRow {
                churn,
                report_bytes,
                baseline_elapsed,
                delta_elapsed,
                hosts_reused: totals.hosts_reused,
                hosts_rebuilt: totals.hosts_rebuilt,
                docs_reused: totals.docs_reused,
                byte_identical: byte_identical(&corpus),
            }
        })
        .collect();
    let fig3 = vec![FIG3_XML.to_string(), FIG3_XML.to_string()];
    IngestResult {
        params: *params,
        rows,
        fig3_identical: byte_identical(&fig3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IngestParams {
        IngestParams {
            hosts: 12,
            metrics_per_host: 4,
            rounds: 6,
        }
    }

    #[test]
    fn zero_churn_corpus_repeats_bytes() {
        let corpus = churn_corpus(&small(), 0.0, 7);
        assert!(corpus.iter().all(|r| r == &corpus[0]));
    }

    #[test]
    fn full_churn_corpus_changes_every_round() {
        let corpus = churn_corpus(&small(), 1.0, 7);
        for pair in corpus.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn sweep_is_byte_identical_and_reuses_at_low_churn() {
        let result = run_ingest_churn(&small(), &[0.0, 0.5, 1.0]);
        assert!(result.fig3_identical);
        for row in &result.rows {
            assert!(row.byte_identical, "churn {} diverged", row.churn);
        }
        let zero = &result.rows[0];
        // Rounds 2..N hit the whole-document fingerprint.
        assert_eq!(zero.docs_reused, small().rounds as u64 - 1);
        assert_eq!(zero.hosts_rebuilt, small().hosts as u64, "cold round only");
        let full = &result.rows[2];
        assert_eq!(full.docs_reused, 0);
        // Full churn still reuses nothing between rounds.
        assert_eq!(full.hosts_rebuilt, (small().hosts * small().rounds) as u64);
    }
}
