//! Upstream-traffic measurement: the O(m)-vs-O(C·H·m) claim of §3.2.
//!
//! "By summarizing remote cluster data, we dramatically reduce the
//! amount of information sent along edges of the monitoring tree."
//! The simulated network counts the bytes every endpoint serves, so the
//! reduction can be read directly off the wire rather than inferred
//! from CPU time.

use ganglia_core::TreeMode;

use crate::deploy::{Deployment, DeploymentParams};
use crate::topology::fig2_tree;

/// Bytes served by one monitor's query port over a measurement round,
/// per design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRow {
    pub monitor: String,
    pub one_level_bytes: u64,
    pub n_level_bytes: u64,
}

/// The whole measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficResult {
    pub hosts_per_cluster: usize,
    pub rounds: u64,
    pub rows: Vec<TrafficRow>,
}

impl TrafficResult {
    /// Row lookup.
    pub fn monitor(&self, name: &str) -> &TrafficRow {
        self.rows
            .iter()
            .find(|r| r.monitor == name)
            .expect("rows cover every monitor")
    }
}

fn measure(mode: TreeMode, hosts: usize, rounds: u64, seed: u64) -> Vec<(String, u64)> {
    let mut deployment = Deployment::build(
        fig2_tree(hosts),
        DeploymentParams {
            mode,
            seed,
            archive: false, // pure traffic measurement
            ..DeploymentParams::default()
        },
    );
    deployment.run_rounds(1); // settle
    deployment.net().stats().reset();
    deployment.run_rounds(rounds);
    deployment
        .tree()
        .breadth_first()
        .into_iter()
        .map(|name| {
            let bytes = deployment
                .net()
                .stats()
                .get(&deployment.gmeta_addr(&name))
                .bytes_served;
            (name, bytes)
        })
        .collect()
}

/// Measure upstream bytes per monitor under both designs.
pub fn run_traffic(hosts_per_cluster: usize, rounds: u64, seed: u64) -> TrafficResult {
    let one = measure(TreeMode::OneLevel, hosts_per_cluster, rounds, seed);
    let n = measure(TreeMode::NLevel, hosts_per_cluster, rounds, seed);
    let rows = one
        .into_iter()
        .zip(n)
        .map(|((monitor, one_bytes), (n_monitor, n_bytes))| {
            debug_assert_eq!(monitor, n_monitor);
            TrafficRow {
                monitor,
                one_level_bytes: one_bytes,
                n_level_bytes: n_bytes,
            }
        })
        .collect();
    TrafficResult {
        hosts_per_cluster,
        rounds,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_monitors_serve_far_less_upstream_under_nlevel() {
        let result = run_traffic(20, 2, 7);
        // ucsd carries physics+math's four clusters: their detail
        // collapses to summaries under N-level.
        let ucsd = result.monitor("ucsd");
        assert!(
            ucsd.n_level_bytes * 2 < ucsd.one_level_bytes,
            "ucsd: {} vs {}",
            ucsd.n_level_bytes,
            ucsd.one_level_bytes
        );
        // Leaf monitors (attic) serve their local clusters at full
        // detail either way: the two designs are within ~2× there.
        let attic = result.monitor("attic");
        let ratio = attic.one_level_bytes as f64 / attic.n_level_bytes.max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "attic ratio {ratio} ({} vs {})",
            attic.one_level_bytes,
            attic.n_level_bytes
        );
        // The root serves nothing upstream (it has no parent).
        assert_eq!(result.monitor("root").one_level_bytes, 0);
        assert_eq!(result.monitor("root").n_level_bytes, 0);
    }
}
