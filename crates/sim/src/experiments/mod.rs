//! The paper's experiments, one module per table/figure.
//!
//! Each experiment returns a structured result so the reproduction
//! binaries, integration tests, and criterion benches all share one
//! implementation. "Since we emphasize relative timings rather than
//! absolute ones, a consistent measurement strategy is more critical
//! than the specific collection method used" (§4.1) — the assertions in
//! the test suite check the paper's *shapes* (who wins, roughly by how
//! much, where load sits in the tree), not absolute numbers.

pub mod bandwidth;
pub mod federation;
pub mod fig5;
pub mod fig6;
pub mod ingest;
pub mod limits;
pub mod propagation;
pub mod query;
pub mod serving;
pub mod table1;
pub mod traffic;

pub use bandwidth::{run_bandwidth, BandwidthResult};
pub use federation::{
    run_federation_scale, FederationParams, FederationResult, IdentityRow, LatencyRow, LevelRow,
    ThroughputRow,
};
pub use fig5::{run_fig5, Fig5Params, Fig5Result, Fig5Telemetry};
pub use fig6::{run_fig6, Fig6Params, Fig6Result};
pub use ingest::{
    baseline_pass, byte_identical, churn_corpus, delta_pass, run_ingest_churn, DeltaTotals,
    IngestParams, IngestResult, IngestRow,
};
pub use limits::{run_limits, LimitsResult, LimitsRow};
pub use propagation::{
    run_propagation_lag, PropagationParams, PropagationResult, PropagationRow, BOUND_EPSILON_S,
};
pub use query::{run_query_churn, QueryParams, QueryResult, QueryRow};
pub use serving::{
    run_serving, run_slow_client_isolation, IsolationResult, ServingParams, ServingResult,
    ServingSide,
};
pub use table1::{run_table1, Table1Params, Table1Result};
pub use traffic::{run_traffic, TrafficResult, TrafficRow};
