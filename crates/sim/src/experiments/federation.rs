//! Federation-scale experiment: sharded store vs the seed's single-lock
//! store at ~100k synthetic hosts.
//!
//! The paper's wide-area design federates "over 500 clusters" through a
//! tree of gmetads (§5). At that scale the interesting costs live in the
//! aggregation point: every poll round rewrites hundreds of sources, and
//! every federation query re-merges their summaries. This experiment
//! builds hundreds of synthetic grid sources (~100k hosts in summary
//! form), then measures four things:
//!
//! 1. **Replace+refresh throughput vs shard count.** Sixteen writers
//!    hammer `replace` followed by an (almost always uncached)
//!    `root_summary` — the serve-tier pattern where every ingest is
//!    chased by a federation query. The baseline is a faithful replica
//!    of the seed store (one `RwLock<HashMap>`, full O(sources·metrics)
//!    re-merge per root refresh); the sharded store pays O(shards)
//!    summaries per refresh instead.
//! 2. **Root-query latency vs source count** at a fixed shard count —
//!    sublinear because the incremental root path never touches
//!    per-source summaries.
//! 3. **Per-level CPU of the N-level tree** (leaf grids → mid gmetads →
//!    root), the paper's hierarchical-aggregation cost breakdown.
//! 4. **Byte identity**: the sharded incremental store and an unsharded
//!    rebuild-every-round store (the seed's arithmetic) render identical
//!    `/?filter=summary` XML across churn levels.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ganglia_core::query_engine;
use ganglia_core::store::{SourceState, Store};
use ganglia_core::GmetadConfig;
use ganglia_metrics::model::{GridBody, GridNode, MetricSummary, SummaryBody};
use ganglia_metrics::{MetricType, Slope};
use ganglia_query::Query;
use parking_lot::{Mutex, RwLock};

/// Knobs for [`run_federation_scale`]. Defaults model the paper's
/// wide-area deployment: 384 grids of 256 hosts each (98,304 hosts).
#[derive(Debug, Clone, PartialEq)]
pub struct FederationParams {
    /// Leaf grid sources attached to the root store.
    pub grids: usize,
    /// Synthetic hosts summarized inside each grid source.
    pub hosts_per_grid: u32,
    /// Uniform metric set per source (uniform names keep merge order —
    /// and therefore rendered XML — independent of source order).
    pub metrics_per_host: usize,
    /// Concurrent writer threads in the throughput stage.
    pub writers: usize,
    /// Rounds each writer replaces its slice of sources.
    pub rounds: usize,
    /// Shard counts swept in the throughput stage.
    pub shard_counts: Vec<usize>,
    /// Shard count held fixed for the latency and identity stages.
    pub fixed_shards: usize,
    /// Source-count multipliers for the latency sweep.
    pub latency_scales: Vec<usize>,
    /// Mid-level gmetad count for the per-level tree stage.
    pub mid_gmetads: usize,
    /// Percent of sources rewritten per round in the identity sweep.
    pub churn_percents: Vec<u32>,
}

impl Default for FederationParams {
    fn default() -> Self {
        FederationParams {
            grids: 384,
            hosts_per_grid: 256,
            metrics_per_host: 24,
            writers: 16,
            rounds: 6,
            shard_counts: vec![1, 4, 16, 64],
            fixed_shards: 16,
            latency_scales: vec![1, 2, 4],
            mid_gmetads: 8,
            churn_percents: vec![1, 10, 100],
        }
    }
}

impl FederationParams {
    /// A configuration small enough for unit tests.
    pub fn tiny() -> Self {
        FederationParams {
            grids: 24,
            hosts_per_grid: 8,
            metrics_per_host: 4,
            writers: 4,
            rounds: 2,
            shard_counts: vec![1, 4],
            fixed_shards: 4,
            latency_scales: vec![1, 2],
            mid_gmetads: 2,
            churn_percents: vec![50, 100],
        }
    }

    /// Total synthetic hosts at scale 1.
    pub fn hosts_total(&self) -> usize {
        self.grids * self.hosts_per_grid as usize
    }
}

/// One throughput measurement: `writers` threads driving
/// replace+root-refresh pairs against one store configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Shard count, or 0 for the seed-store replica baseline.
    pub shards: usize,
    pub writers: usize,
    /// Replace+refresh pairs completed.
    pub ops: u64,
    pub elapsed_ms: f64,
    pub ops_per_sec: f64,
    /// Summaries touched per uncached root merge (sharded store only:
    /// exactly the shard count — the O(shards) root-path witness).
    pub root_merge_inputs_per_merge: f64,
    /// Per-source summary merges during the run (sharded store only:
    /// stays at zero when the incremental path never falls back).
    pub source_touches: u64,
}

impl ThroughputRow {
    /// Throughput relative to a baseline row.
    pub fn speedup_over(&self, baseline: &ThroughputRow) -> f64 {
        if baseline.ops_per_sec > 0.0 {
            self.ops_per_sec / baseline.ops_per_sec
        } else {
            f64::INFINITY
        }
    }
}

/// Uncached root-summary latency at one source count.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    pub sources: usize,
    pub hosts: usize,
    /// Best-of-N wall time for one uncached `root_summary` call.
    pub root_latency_us: f64,
}

/// CPU spent at one level of the N-level federation tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// 0 = root gmetad, increasing toward the leaves.
    pub level: usize,
    pub label: &'static str,
    /// Aggregation nodes at this level.
    pub nodes: usize,
    /// Child summaries merged across the whole level.
    pub merges: u64,
    pub cpu_ms: f64,
}

/// Byte-identity check at one churn level.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityRow {
    pub churn_percent: u32,
    /// Rendered `/?filter=summary` bytes match the unsharded
    /// rebuild-every-round store on every round.
    pub identical: bool,
    /// Bytes of the final rendered document.
    pub response_bytes: usize,
}

/// Everything [`run_federation_scale`] measures.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationResult {
    pub params: FederationParams,
    /// Seed-store replica under the same writer load (shards = 0).
    pub baseline: ThroughputRow,
    pub throughput: Vec<ThroughputRow>,
    pub latency: Vec<LatencyRow>,
    pub levels: Vec<LevelRow>,
    pub identity: Vec<IdentityRow>,
}

impl FederationResult {
    /// Throughput speedup of the given shard count over the seed replica.
    pub fn speedup_at(&self, shards: usize) -> Option<f64> {
        self.throughput
            .iter()
            .find(|r| r.shards == shards)
            .map(|r| r.speedup_over(&self.baseline))
    }
}

/// xorshift over a seed — deterministic, dependency-free value churn.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A dyadic rational (multiple of 1/8): exactly representable, so the
/// incremental S − old + new arithmetic is bit-identical to a
/// from-scratch merge and the byte-identity sweep is meaningful.
fn dyadic(r: u64) -> f64 {
    (r % 4096) as f64 / 8.0
}

/// Synthesize one grid source's summary: `hosts` hosts up, a uniform
/// metric-name set, per-metric sums drawn from the seeded RNG.
fn grid_summary(hosts: u32, metrics: usize, rng: &mut u64) -> SummaryBody {
    let mut body = SummaryBody {
        hosts_up: hosts,
        hosts_down: 0,
        metrics: Vec::with_capacity(metrics),
    };
    for m in 0..metrics {
        body.metrics.push(MetricSummary {
            name: format!("metric_{m:02}").into(),
            sum: dyadic(next_rand(rng)) * f64::from(hosts),
            num: hosts,
            ty: MetricType::Double,
            units: "units".into(),
            slope: Slope::Both,
            source: "gmond".into(),
        });
    }
    body
}

/// Build a grid source snapshot carrying the given summary.
fn grid_source(name: &str, hosts: u32, metrics: usize, rng: &mut u64, now: u64) -> SourceState {
    let summary = grid_summary(hosts, metrics, rng);
    let grid = GridNode {
        name: name.to_string(),
        authority: format!("http://{name}/ganglia/"),
        localtime: Some(now),
        body: GridBody::Summary(summary.clone()),
    };
    SourceState::grid(name, grid, summary, now)
}

fn source_name(i: usize) -> String {
    format!("grid-{i:04}")
}

/// The ingest-side surface both stores expose to the writer threads.
trait RootStore: Sync {
    fn replace_source(&self, state: SourceState);
    fn refresh_root(&self) -> u32;
}

impl RootStore for Store {
    fn replace_source(&self, state: SourceState) {
        self.replace(state);
    }

    fn refresh_root(&self) -> u32 {
        self.root_summary().hosts_up
    }
}

/// A faithful replica of the seed store this PR replaced: one lock over
/// the level-one hash table, a monotonic revision, and a root cache that
/// re-merges every source summary whenever the revision moved. Kept
/// here (not in `ganglia_core`) so the production crate carries exactly
/// one store implementation.
struct SeedStore {
    sources: RwLock<HashMap<String, Arc<SourceState>>>,
    revision: AtomicU64,
    root_cache: Mutex<Option<(u64, Arc<SummaryBody>)>>,
}

impl SeedStore {
    fn new() -> SeedStore {
        SeedStore {
            sources: RwLock::new(HashMap::new()),
            revision: AtomicU64::new(0),
            root_cache: Mutex::new(None),
        }
    }
}

impl RootStore for SeedStore {
    fn replace_source(&self, state: SourceState) {
        let mut sources = self.sources.write();
        sources.insert(state.name.clone(), Arc::new(state));
        self.revision.fetch_add(1, Ordering::Release);
    }

    fn refresh_root(&self) -> u32 {
        let sources = self.sources.read();
        let revision = self.revision.load(Ordering::Acquire);
        {
            let cache = self.root_cache.lock();
            if let Some((cached_rev, summary)) = &*cache {
                if *cached_rev == revision {
                    return summary.hosts_up;
                }
            }
        }
        // Seed arithmetic: merge every source summary from scratch.
        let mut total = SummaryBody::default();
        for state in sources.values() {
            total.merge(&state.summary);
        }
        let summary = Arc::new(total);
        *self.root_cache.lock() = Some((revision, summary.clone()));
        summary.hosts_up
    }
}

/// Drive `writers` threads through `rounds` replace+refresh rounds over
/// the store's sources. Source snapshots are prebuilt so the timed
/// region contains only store work, which is the quantity the shard
/// sweep varies.
fn hammer(store: &impl RootStore, params: &FederationParams, seed: u64) -> (u64, f64) {
    let writers = params.writers.max(1);
    // Writer w owns sources w, w+writers, w+2·writers, …
    let mut slices: Vec<Vec<SourceState>> = (0..writers).map(|_| Vec::new()).collect();
    let mut rng = seed;
    for round in 0..params.rounds {
        for i in 0..params.grids {
            let name = source_name(i);
            let state = grid_source(
                &name,
                params.hosts_per_grid,
                params.metrics_per_host,
                &mut rng,
                100 + round as u64,
            );
            slices[i % writers].push(state);
        }
    }
    let ops: u64 = slices.iter().map(|s| s.len() as u64).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for slice in slices {
            scope.spawn(move || {
                for state in slice {
                    store.replace_source(state);
                    store.refresh_root();
                }
            });
        }
    });
    (ops, start.elapsed().as_secs_f64() * 1000.0)
}

fn populate(store: &impl RootStore, grids: usize, params: &FederationParams, seed: u64) {
    let mut rng = seed;
    for i in 0..grids {
        let name = source_name(i);
        store.replace_source(grid_source(
            &name,
            params.hosts_per_grid,
            params.metrics_per_host,
            &mut rng,
            100,
        ));
    }
    store.refresh_root();
}

fn measure_throughput(params: &FederationParams, shards: usize) -> ThroughputRow {
    let store = Store::with_shards(shards, 0);
    populate(&store, params.grids, params, 7);
    let before = store.stats();
    let (ops, elapsed_ms) = hammer(&store, params, 11);
    let after = store.stats();
    let merges = after.root_merges.saturating_sub(before.root_merges);
    let inputs = after
        .root_merge_inputs
        .saturating_sub(before.root_merge_inputs);
    ThroughputRow {
        shards,
        writers: params.writers,
        ops,
        elapsed_ms,
        ops_per_sec: ops as f64 / (elapsed_ms / 1000.0).max(1e-9),
        root_merge_inputs_per_merge: if merges > 0 {
            inputs as f64 / merges as f64
        } else {
            0.0
        },
        source_touches: after.source_touches.saturating_sub(before.source_touches),
    }
}

fn measure_baseline(params: &FederationParams) -> ThroughputRow {
    let store = SeedStore::new();
    populate(&store, params.grids, params, 7);
    let (ops, elapsed_ms) = hammer(&store, params, 11);
    ThroughputRow {
        shards: 0,
        writers: params.writers,
        ops,
        elapsed_ms,
        ops_per_sec: ops as f64 / (elapsed_ms / 1000.0).max(1e-9),
        root_merge_inputs_per_merge: 0.0,
        source_touches: 0,
    }
}

/// Best-of-N uncached root latency at each source-count scale, shard
/// count held fixed. Each sample dirties one source first so the root
/// cache cannot answer.
fn measure_latency(params: &FederationParams) -> Vec<LatencyRow> {
    params
        .latency_scales
        .iter()
        .map(|&scale| {
            let sources = params.grids * scale;
            let store = Store::with_shards(params.fixed_shards, 0);
            populate(&store, sources, params, 13);
            let mut rng = 17;
            let mut best = f64::INFINITY;
            for round in 0..32u64 {
                store.replace(grid_source(
                    &source_name(0),
                    params.hosts_per_grid,
                    params.metrics_per_host,
                    &mut rng,
                    200 + round,
                ));
                let start = Instant::now();
                let summary = store.root_summary();
                let micros = start.elapsed().as_secs_f64() * 1e6;
                assert_eq!(
                    summary.hosts_total() as usize,
                    sources * params.hosts_per_grid as usize
                );
                best = best.min(micros);
            }
            LatencyRow {
                sources,
                hosts: sources * params.hosts_per_grid as usize,
                root_latency_us: best,
            }
        })
        .collect()
}

/// CPU per federation-tree level: leaf grids summarize their hosts, mid
/// gmetads merge leaf summaries, the root merges mid summaries.
fn measure_levels(params: &FederationParams) -> Vec<LevelRow> {
    let mut rng = 19;
    // One per-host contribution, reused: what a leaf gmond reports.
    let host_body = grid_summary(1, params.metrics_per_host, &mut rng);

    // Level 2: each grid merges its hosts' summaries.
    let start = Instant::now();
    let mut grid_bodies: Vec<SummaryBody> = Vec::with_capacity(params.grids);
    for _ in 0..params.grids {
        let mut body = SummaryBody::default();
        for _ in 0..params.hosts_per_grid {
            body.merge(&host_body);
        }
        grid_bodies.push(body);
    }
    let leaf_ms = start.elapsed().as_secs_f64() * 1000.0;
    let leaf_merges = params.grids as u64 * u64::from(params.hosts_per_grid);

    // Level 1: mid gmetads split the grids between them.
    let mids = params.mid_gmetads.max(1);
    let start = Instant::now();
    let mut mid_bodies: Vec<SummaryBody> = Vec::with_capacity(mids);
    for chunk in grid_bodies.chunks(params.grids.div_ceil(mids)) {
        let mut body = SummaryBody::default();
        for grid in chunk {
            body.merge(grid);
        }
        mid_bodies.push(body);
    }
    let mid_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Level 0: the root merges the mid summaries.
    let start = Instant::now();
    let mut root = SummaryBody::default();
    for mid in &mid_bodies {
        root.merge(mid);
    }
    let root_ms = start.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(root.hosts_total() as usize, params.hosts_total());

    vec![
        LevelRow {
            level: 0,
            label: "root gmetad",
            nodes: 1,
            merges: mid_bodies.len() as u64,
            cpu_ms: root_ms,
        },
        LevelRow {
            level: 1,
            label: "mid gmetads",
            nodes: mid_bodies.len(),
            merges: params.grids as u64,
            cpu_ms: mid_ms,
        },
        LevelRow {
            level: 2,
            label: "leaf grids",
            nodes: params.grids,
            merges: leaf_merges,
            cpu_ms: leaf_ms,
        },
    ]
}

/// Render the federation summary view the serve tier would return.
fn render_summary(store: &Store, config: &GmetadConfig, query: &Query) -> String {
    query_engine::answer(store, config, query, 12345)
}

/// Churn sweep: after every round the sharded incremental store must
/// render byte-identical XML to an unsharded store that rebuilds its
/// summary from scratch on every mutation (`with_shards(1, 1)` — the
/// seed's arithmetic expressed through the new store).
fn measure_identity(params: &FederationParams) -> Vec<IdentityRow> {
    let config = GmetadConfig::new("federation");
    let query = Query::parse("/?filter=summary").expect("static query parses");
    params
        .churn_percents
        .iter()
        .map(|&churn| {
            let incremental = Store::with_shards(params.fixed_shards, 0);
            let seed_path = Store::with_shards(1, 1);
            let mut build_rng = 23;
            for i in 0..params.grids {
                let name = source_name(i);
                let mut clone_rng = build_rng;
                incremental.replace(grid_source(
                    &name,
                    params.hosts_per_grid,
                    params.metrics_per_host,
                    &mut clone_rng,
                    100,
                ));
                seed_path.replace(grid_source(
                    &name,
                    params.hosts_per_grid,
                    params.metrics_per_host,
                    &mut build_rng,
                    100,
                ));
            }
            let rewrites = (params.grids * churn as usize).div_ceil(100).max(1);
            let mut identical = true;
            let mut response_bytes = 0;
            let mut churn_rng = 29 + u64::from(churn);
            for round in 0..params.rounds.max(2) {
                for r in 0..rewrites {
                    let idx = next_rand(&mut churn_rng) as usize % params.grids;
                    let name = source_name(idx);
                    let mut clone_rng = churn_rng;
                    incremental.replace(grid_source(
                        &name,
                        params.hosts_per_grid,
                        params.metrics_per_host,
                        &mut clone_rng,
                        200 + (round * rewrites + r) as u64,
                    ));
                    seed_path.replace(grid_source(
                        &name,
                        params.hosts_per_grid,
                        params.metrics_per_host,
                        &mut churn_rng,
                        200 + (round * rewrites + r) as u64,
                    ));
                }
                let ours = render_summary(&incremental, &config, &query);
                let theirs = render_summary(&seed_path, &config, &query);
                identical &= ours == theirs;
                response_bytes = ours.len();
            }
            IdentityRow {
                churn_percent: churn,
                identical,
                response_bytes,
            }
        })
        .collect()
}

/// Run the full federation-scale experiment.
pub fn run_federation_scale(params: &FederationParams) -> FederationResult {
    let baseline = measure_baseline(params);
    let throughput = params
        .shard_counts
        .iter()
        .map(|&shards| measure_throughput(params, shards))
        .collect();
    let latency = measure_latency(params);
    let levels = measure_levels(params);
    let identity = measure_identity(params);
    FederationResult {
        params: params.clone(),
        baseline,
        throughput,
        latency,
        levels,
        identity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_scale_tiny_run_holds_its_invariants() {
        let params = FederationParams::tiny();
        let result = run_federation_scale(&params);

        assert_eq!(result.baseline.shards, 0);
        assert!(result.baseline.ops > 0);
        for row in &result.throughput {
            assert_eq!(row.ops, result.baseline.ops);
            assert!(row.ops_per_sec > 0.0);
            // O(shards) root path: each uncached merge touched exactly
            // one summary per shard, and never a per-source summary.
            assert!(
                (row.root_merge_inputs_per_merge - row.shards as f64).abs() < f64::EPSILON,
                "shards={} inputs/merge={}",
                row.shards,
                row.root_merge_inputs_per_merge
            );
            assert_eq!(row.source_touches, 0, "shards={}", row.shards);
        }

        assert_eq!(result.latency.len(), params.latency_scales.len());
        for row in &result.latency {
            assert!(row.root_latency_us.is_finite() && row.root_latency_us >= 0.0);
            assert_eq!(row.hosts, row.sources * params.hosts_per_grid as usize);
        }

        assert_eq!(result.levels.len(), 3);
        let total_hosts: usize = params.hosts_total();
        assert!(result.levels.iter().all(|l| l.nodes > 0));
        assert_eq!(result.levels[2].merges as usize, total_hosts);

        for row in &result.identity {
            assert!(
                row.identical,
                "sharded render diverged at churn {}%",
                row.churn_percent
            );
            assert!(row.response_bytes > 0);
        }
    }

    #[test]
    fn seed_store_replica_matches_sharded_arithmetic() {
        let params = FederationParams::tiny();
        let seed = SeedStore::new();
        let sharded = Store::with_shards(4, 0);
        populate(&seed, params.grids, &params, 7);
        populate(&sharded, params.grids, &params, 7);
        assert_eq!(seed.refresh_root(), sharded.root_summary().hosts_up);
        assert_eq!(
            seed.refresh_root() as usize,
            params.grids * params.hosts_per_grid as usize
        );
    }
}
