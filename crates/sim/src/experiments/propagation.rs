//! Propagation lag: root-visible data age vs federation depth.
//!
//! The paper's tree trades freshness for scale — each gmetad level
//! re-polls on its own cadence, so data crossing `L` monitor levels can
//! be up to `L × poll_interval` old by the time the root serves it.
//! This experiment drives monitor chains of varying depth under both
//! poll orders the sim supports:
//!
//! * **children-first** ([`Deployment::run_round`]) — the best case:
//!   every level re-polls after its child refreshed, ages stay ~0;
//! * **parents-first** ([`Deployment::run_round_top_down`]) — the worst
//!   case: each level serves what its child assembled last round, so
//!   the root sees `(levels − 1) × poll_interval` of age.
//!
//! Either way the measured root-visible age must stay within
//! `levels × poll_interval + ε` — the claim the `repro_freshness` bench
//! asserts.
//!
//! Root-visible age is read from the `freshness.*` instruments: the
//! 1-level root sees host `REPORTED` stamps directly
//! (`freshness.age_s`); the N-level root only sees its child's render
//! clock, so the end-to-end age is the per-level `depth0.hop_lag_s`
//! summed down the chain plus the leaf monitor's own host ages.

use ganglia_core::TreeMode;

use crate::deploy::{Deployment, DeploymentParams};
use crate::topology::chain_tree;

/// Experiment knobs.
#[derive(Debug, Clone)]
pub struct PropagationParams {
    /// Chain depths (number of monitor levels) to sweep.
    pub levels: Vec<usize>,
    /// Poll intervals (seconds) to sweep.
    pub poll_intervals: Vec<u64>,
    /// Hosts in the leaf cluster.
    pub hosts: usize,
    /// Steady-state rounds measured after the pipeline fills (the
    /// deepest chain needs `levels` rounds before leaf data reaches the
    /// root at all).
    pub steady_rounds: u64,
    pub seed: u64,
}

impl Default for PropagationParams {
    fn default() -> Self {
        PropagationParams {
            levels: vec![2, 3, 4],
            poll_intervals: vec![5, 15],
            hosts: 8,
            steady_rounds: 4,
            seed: 42,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationRow {
    pub mode: TreeMode,
    pub levels: usize,
    pub poll_interval: u64,
    /// Worst-case (parents-first) order when true.
    pub top_down: bool,
    /// Root-visible p99 data age, seconds.
    pub root_age_p99_s: u64,
    /// The freshness bound this configuration must respect.
    pub bound_s: u64,
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationResult {
    pub rows: Vec<PropagationRow>,
}

impl PropagationResult {
    /// Whether every configuration kept root age within its bound.
    pub fn all_within_bound(&self) -> bool {
        self.rows.iter().all(|r| r.root_age_p99_s <= r.bound_s)
    }

    /// Worst measured age across the sweep.
    pub fn worst_age_s(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.root_age_p99_s)
            .max()
            .unwrap_or(0)
    }
}

/// Slack added to the `levels × poll_interval` freshness bound.
pub const BOUND_EPSILON_S: u64 = 1;

fn p99_of(snapshot: &ganglia_core::telemetry::Snapshot, name: &str) -> u64 {
    snapshot
        .histogram(name)
        .filter(|h| h.count > 0)
        .map_or(0, |h| h.quantile(0.99))
}

/// Root-visible p99 data age for one deployment, by mode.
fn root_visible_age(deployment: &Deployment, mode: TreeMode) -> u64 {
    let report = deployment.telemetry_report();
    match mode {
        // Host REPORTED stamps reach the root intact: read them there.
        TreeMode::OneLevel => p99_of(&report[0].1, "freshness.age_s"),
        // The root only sees its child's render clock; accumulate the
        // immediate hop lag at every level, plus the host ages the leaf
        // monitor itself observed.
        TreeMode::NLevel => {
            let hops: u64 = report
                .iter()
                .map(|(_, snap)| p99_of(snap, "freshness.depth0.hop_lag_s"))
                .sum();
            let leaf_age = report
                .last()
                .map_or(0, |(_, snap)| p99_of(snap, "freshness.age_s"));
            hops + leaf_age
        }
    }
}

fn measure(
    mode: TreeMode,
    levels: usize,
    poll_interval: u64,
    top_down: bool,
    params: &PropagationParams,
) -> PropagationRow {
    let mut deployment = Deployment::build(
        chain_tree(levels, params.hosts),
        DeploymentParams {
            mode,
            poll_interval,
            seed: params.seed,
            archive: false,
            ..DeploymentParams::default()
        },
    );
    let rounds = levels as u64 + params.steady_rounds;
    if top_down {
        deployment.run_rounds_top_down(rounds);
    } else {
        deployment.run_rounds(rounds);
    }
    PropagationRow {
        mode,
        levels,
        poll_interval,
        top_down,
        root_age_p99_s: root_visible_age(&deployment, mode),
        bound_s: levels as u64 * poll_interval + BOUND_EPSILON_S,
    }
}

/// Run the propagation-lag sweep: every (mode, depth, interval, order)
/// combination.
pub fn run_propagation_lag(params: &PropagationParams) -> PropagationResult {
    let mut rows = Vec::new();
    for &levels in &params.levels {
        for &poll_interval in &params.poll_intervals {
            for mode in [TreeMode::NLevel, TreeMode::OneLevel] {
                for top_down in [false, true] {
                    rows.push(measure(mode, levels, poll_interval, top_down, params));
                }
            }
        }
    }
    PropagationResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ages_stay_within_the_level_bound() {
        let result = run_propagation_lag(&PropagationParams {
            levels: vec![2, 3],
            poll_intervals: vec![15],
            hosts: 4,
            steady_rounds: 3,
            seed: 7,
        });
        assert_eq!(result.rows.len(), 2 * 2 * 2);
        for row in &result.rows {
            assert!(
                row.root_age_p99_s <= row.bound_s,
                "{:?} levels={} interval={} top_down={}: age {} > bound {}",
                row.mode,
                row.levels,
                row.poll_interval,
                row.top_down,
                row.root_age_p99_s,
                row.bound_s
            );
        }
        assert!(result.all_within_bound());
    }

    #[test]
    fn worst_case_order_accumulates_one_interval_per_level() {
        let params = PropagationParams {
            levels: vec![3],
            poll_intervals: vec![15],
            hosts: 4,
            steady_rounds: 4,
            seed: 7,
        };
        let result = run_propagation_lag(&params);
        for mode in [TreeMode::NLevel, TreeMode::OneLevel] {
            let age_of = |top_down: bool| {
                result
                    .rows
                    .iter()
                    .find(|r| r.mode == mode && r.top_down == top_down)
                    .unwrap()
                    .root_age_p99_s
            };
            // Children-first: every level re-polls freshly-assembled
            // data, ages stay at zero.
            assert_eq!(age_of(false), 0, "{mode:?} best case");
            // Parents-first: each of the two monitor-to-monitor hops
            // adds a full poll interval.
            assert_eq!(age_of(true), 30, "{mode:?} worst case");
        }
    }
}
