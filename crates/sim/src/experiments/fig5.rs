//! Figure 5: per-gmeta CPU utilization in the monitoring tree.
//!
//! "To determine scaling benefits of the N-level monitor over the
//! 1-level design, we measure the CPU utilization of every gmeta node in
//! the monitoring tree from figure 2. In this experiment, each of the
//! twelve monitored clusters has 100 hosts." (§4.2)
//!
//! Expected shape (§4.3): the 1-level design concentrates load at the
//! root and ucsd; the N-level design pushes computation to the leaves
//! (which pay a summarization penalty) and drastically reduces non-leaf
//! load.

use ganglia_core::telemetry::Snapshot;
use ganglia_core::TreeMode;

use crate::deploy::{Deployment, DeploymentParams};
use crate::topology::fig2_tree;

/// Experiment knobs. Defaults reproduce the paper's setup at a
/// laptop-friendly number of measured rounds.
#[derive(Debug, Clone)]
pub struct Fig5Params {
    /// Hosts per cluster (paper: 100).
    pub hosts_per_cluster: usize,
    /// Unmeasured rounds to reach steady state (archive creation,
    /// fail-over settling).
    pub warmup_rounds: u64,
    /// Measured rounds; the virtual window is `rounds × 15 s` (the paper
    /// used a 60-minute window = 240 rounds; CPU% is a ratio, so fewer
    /// rounds give the same figure with more variance).
    pub measured_rounds: u64,
    pub seed: u64,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Fig5Params {
            hosts_per_cluster: 100,
            warmup_rounds: 2,
            measured_rounds: 8,
            seed: 42,
        }
    }
}

/// One bar pair of figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    pub monitor: String,
    pub one_level_pct: f64,
    pub n_level_pct: f64,
}

/// One monitor's self-telemetry under each design, captured over the
/// measured window (counters, gauges, latency histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Telemetry {
    pub monitor: String,
    pub one_level: Snapshot,
    pub n_level: Snapshot,
}

/// The whole figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    pub rows: Vec<Fig5Row>,
    /// Per-monitor instrument snapshots backing the CPU numbers, so the
    /// reproduction can report latency quantiles, not just utilization.
    pub telemetry: Vec<Fig5Telemetry>,
    pub params_hosts: usize,
}

impl Fig5Result {
    /// Row lookup.
    pub fn monitor(&self, name: &str) -> &Fig5Row {
        self.rows
            .iter()
            .find(|r| r.monitor == name)
            .expect("figure rows cover every monitor")
    }

    /// Sum across monitors per design — feeds figure 6's data point at
    /// the same cluster size.
    pub fn aggregates(&self) -> (f64, f64) {
        (
            self.rows.iter().map(|r| r.one_level_pct).sum(),
            self.rows.iter().map(|r| r.n_level_pct).sum(),
        )
    }
}

fn measure(mode: TreeMode, params: &Fig5Params) -> Vec<(String, f64, Snapshot)> {
    let mut deployment = Deployment::build(
        fig2_tree(params.hosts_per_cluster),
        DeploymentParams {
            mode,
            seed: params.seed,
            ..DeploymentParams::default()
        },
    );
    deployment.run_rounds(params.warmup_rounds);
    deployment.reset_meters();
    deployment.run_rounds(params.measured_rounds);
    let telemetry = deployment.telemetry_report();
    deployment
        .cpu_report()
        .rows
        .into_iter()
        .zip(telemetry)
        .map(|(row, (telemetry_monitor, snapshot))| {
            debug_assert_eq!(row.monitor, telemetry_monitor);
            (row.monitor, row.percent, snapshot)
        })
        .collect()
}

/// Run the figure-5 experiment: both designs over the figure-2 tree.
pub fn run_fig5(params: &Fig5Params) -> Fig5Result {
    let one_level = measure(TreeMode::OneLevel, params);
    let n_level = measure(TreeMode::NLevel, params);
    let mut rows = Vec::new();
    let mut telemetry = Vec::new();
    for ((monitor, one_pct, one_snap), (n_monitor, n_pct, n_snap)) in
        one_level.into_iter().zip(n_level)
    {
        debug_assert_eq!(monitor, n_monitor);
        rows.push(Fig5Row {
            monitor: monitor.clone(),
            one_level_pct: one_pct,
            n_level_pct: n_pct,
        });
        telemetry.push(Fig5Telemetry {
            monitor,
            one_level: one_snap,
            n_level: n_snap,
        });
    }
    Fig5Result {
        rows,
        telemetry,
        params_hosts: params.hosts_per_cluster,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down figure 5 that still exhibits the paper's shape.
    /// (The full 100-host version runs in the reproduction binary and
    /// the benches.)
    #[test]
    fn fig5_shape_holds_at_reduced_scale() {
        let result = run_fig5(&Fig5Params {
            hosts_per_cluster: 30,
            warmup_rounds: 1,
            measured_rounds: 5,
            seed: 7,
        });
        assert_eq!(result.rows.len(), 6);

        // 1-level concentrates load at the root of the tree.
        let root = result.monitor("root");
        let leaf = result.monitor("attic");
        assert!(
            root.one_level_pct > leaf.one_level_pct,
            "1-level root {} must exceed leaf {}",
            root.one_level_pct,
            leaf.one_level_pct
        );

        // N-level drastically reduces root load relative to 1-level. The
        // margin is generous (1.4x, where unloaded runs show ~3x) because
        // wall-clock attribution is noisy under parallel test threads.
        assert!(
            root.n_level_pct < root.one_level_pct / 1.4,
            "N-level root {} vs 1-level {}",
            root.n_level_pct,
            root.one_level_pct
        );

        // Interior node ucsd benefits the same way.
        let ucsd = result.monitor("ucsd");
        assert!(ucsd.n_level_pct < ucsd.one_level_pct);

        // Aggregate work is lower under N-level (no duplicate archives).
        let (one_total, n_total) = result.aggregates();
        assert!(
            n_total < one_total,
            "aggregate N-level {n_total} vs 1-level {one_total}"
        );

        // The telemetry snapshots ride along: the root fetched and
        // parsed something every measured round under both designs.
        let root_telemetry = result
            .telemetry
            .iter()
            .find(|t| t.monitor == "root")
            .unwrap();
        for snap in [&root_telemetry.one_level, &root_telemetry.n_level] {
            assert!(snap.histogram("fetch_us").unwrap().count > 0);
            assert!(snap.histogram("parse_us").unwrap().count > 0);
            assert!(snap.counter("polls_ok_total").unwrap() > 0);
        }
    }
}
