//! The §3.1 local-area bandwidth claim, reproduced.
//!
//! "A previous paper has shown the impact of gmon on the clusters
//! themselves is negligible even for large systems. As an example, the
//! monitor on a 128-node cluster uses less than 56Kbps of network
//! bandwidth, roughly the capacity of a dialup modem." (paper §3.1)
//!
//! We run a real simulated gmond cluster (full soft-state protocol, XDR
//! packets, value/time-threshold send scheduling) and measure the
//! multicast channel's steady-state bit rate.

use ganglia_gmond::{GmondConfig, SimCluster};
use ganglia_net::SimNet;

/// Result of one bandwidth measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthResult {
    pub nodes: usize,
    /// Measurement window, seconds.
    pub window_secs: u64,
    /// Packets published on the multicast channel during the window.
    pub packets: u64,
    /// Channel payload bytes during the window.
    pub bytes: u64,
    /// Steady-state kilobits per second.
    pub kbps: f64,
}

/// Measure steady-state multicast bandwidth for a cluster of `nodes`
/// gmond agents over `window_secs` of virtual time (after a warm-up
/// that flushes the initial full-broadcast burst).
pub fn run_bandwidth(nodes: usize, window_secs: u64, seed: u64) -> BandwidthResult {
    let net = SimNet::new(seed);
    let mut cluster = SimCluster::new(&net, GmondConfig::new("bw"), nodes, seed, 0);
    // Warm-up: initial broadcasts + the first tmax expiries.
    cluster.run(0, 100, 20);
    let (packets_before, bytes_before) = cluster_traffic(&cluster);
    cluster.run(100, 100 + window_secs, 20);
    let (packets_after, bytes_after) = cluster_traffic(&cluster);
    let packets = packets_after - packets_before;
    let bytes = bytes_after - bytes_before;
    BandwidthResult {
        nodes,
        window_secs,
        packets,
        bytes,
        kbps: (bytes * 8) as f64 / window_secs as f64 / 1000.0,
    }
}

/// `(packets, payload bytes)` sent on the cluster's channel so far.
/// Packet sizes are measured from the agents' own accounting: every
/// publish carries one encoded metric packet (~90 bytes); we charge the
/// measured average rather than a guess.
fn cluster_traffic(cluster: &SimCluster) -> (u64, u64) {
    let mut packets = 0u64;
    for i in 0..cluster.node_count() {
        packets += cluster.agent(i).lock().packets_sent();
    }
    // Sample one encoded packet for the size baseline: host/metric names
    // dominate and are uniform across the cluster.
    let sample_size = sample_packet_len(cluster);
    (packets, packets * sample_size)
}

fn sample_packet_len(cluster: &SimCluster) -> u64 {
    use ganglia_gmond::MetricPacket;
    use ganglia_metrics::{MetricValue, Slope};
    let name = format!("{}-node-0", cluster.name());
    let packet = MetricPacket {
        host: name,
        ip: "10.0.0.1".to_string(),
        gmond_started: 0,
        name: "load_fifteen".to_string(),
        value: MetricValue::Float(1.0),
        units: "bytes/sec".to_string(),
        slope: Slope::Both,
        tmax: 70,
        dmax: 0,
    };
    packet.encode().len() as u64
}

/// Convenience used by the tests: is the measured rate within the
/// paper's dialup-modem budget?
pub fn within_dialup_budget(result: &BandwidthResult) -> bool {
    result.kbps < 56.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn a_128_node_cluster_stays_under_56_kbps() {
        // The paper's exact configuration: 128 nodes, steady state.
        let result = run_bandwidth(128, 300, 7);
        assert!(result.packets > 0, "the channel is alive");
        assert!(
            within_dialup_budget(&result),
            "{:.1} kbps exceeds the paper's 56 kbps budget ({} packets / {} bytes in {}s)",
            result.kbps,
            result.packets,
            result.bytes,
            result.window_secs
        );
    }

    #[test]
    fn bandwidth_scales_roughly_linearly_with_nodes() {
        let small = run_bandwidth(16, 200, 7);
        let large = run_bandwidth(64, 200, 7);
        let ratio = large.kbps / small.kbps.max(1e-9);
        assert!(
            (2.0..8.0).contains(&ratio),
            "16→64 nodes scaled bandwidth by {ratio:.2}"
        );
    }

    #[test]
    fn arc_is_not_needed_for_the_result() {
        // BandwidthResult is plain data.
        let result = run_bandwidth(4, 100, 1);
        let shared = Arc::new(result.clone());
        assert_eq!(shared.nodes, result.nodes);
    }
}
