//! The §5 limitation, quantified: "the way we currently employ the
//! metric archiving tools is not scalable with the number of numeric
//! metrics gathered per host... our archiving technique makes too many
//! updates to the file-based databases."
//!
//! This experiment measures a gmetad's per-round archiving work as the
//! per-host metric count grows, holding the host count fixed — showing
//! the linear blow-up the paper warns about — and, alongside it, the
//! upstream traffic series that backs the O(m)-vs-O(C·H·m) claim of
//! §3.2.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ganglia_core::telemetry::Histogram;
use ganglia_core::{archive, poller, DataSourceCfg, Gmetad, GmetadConfig, TreeMode, WorkMeter};
use ganglia_metrics::codec::write_document;
use ganglia_metrics::definition::{MetricDefinition, Synth};
use ganglia_metrics::model::{ClusterNode, GangliaDoc, HostNode, MetricEntry};
use ganglia_metrics::{MetricType, MetricValue, Slope};
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, SimNet};
use ganglia_rrd::{DataSourceDef, RraDef, RrdSet, RrdSpec};

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct LimitsRow {
    pub metrics_per_host: usize,
    /// RRD updates one poll round performs.
    pub updates_per_round: u64,
    /// Mean wall time of an archiving round.
    pub archive_time: Duration,
    /// Median per-round archive time over the measured rounds.
    pub archive_time_p50: Duration,
    /// Worst-case-ish per-round archive time (p99 of the round
    /// histogram; with few rounds this is the max).
    pub archive_time_p99: Duration,
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LimitsResult {
    pub hosts: usize,
    pub rows: Vec<LimitsRow>,
}

impl LimitsResult {
    /// Updates per metric should be constant — the blow-up is linear in
    /// the metric count, which is exactly the §5 complaint.
    pub fn updates_scale_linearly(&self) -> bool {
        self.rows
            .iter()
            .all(|row| row.updates_per_round == ((self.hosts + 1) * row.metrics_per_host) as u64)
    }
}

/// Build a synthetic cluster document with `metrics_per_host` numeric
/// metrics on each of `hosts` hosts.
pub fn synthetic_cluster(hosts: usize, metrics_per_host: usize, value: f64) -> GangliaDoc {
    let host_nodes: Vec<HostNode> = (0..hosts)
        .map(|h| {
            let mut host = HostNode::new(format!("n{h:04}"), "10.0.0.1");
            host.metrics = (0..metrics_per_host)
                .map(|m| MetricEntry::new(format!("metric_{m:03}"), MetricValue::Double(value)))
                .collect();
            host
        })
        .collect();
    GangliaDoc::gmond(ClusterNode::with_hosts("synthetic", host_nodes))
}

/// Run the sweep: archive one cluster snapshot per metric count.
pub fn run_limits(hosts: usize, metric_counts: &[usize], rounds: u64) -> LimitsResult {
    let meter = WorkMeter::new();
    let rows = metric_counts
        .iter()
        .map(|&metrics_per_host| {
            let doc = synthetic_cluster(hosts, metrics_per_host, 1.0);
            let state = poller::build_state("synthetic", doc, TreeMode::NLevel, &meter, 0);
            let mut set = RrdSet::with_spec_factory(|key, start| RrdSpec {
                step: 15,
                start,
                data_sources: vec![DataSourceDef::gauge(key.metric.clone(), 120)],
                archives: vec![RraDef::average(1, 64)],
            });
            // Warm round creates the databases; measured rounds are the
            // steady-state update cost.
            archive::archive_source(&mut set, &state, TreeMode::NLevel, 15);
            let before = set.update_count();
            let rounds_us = Histogram::new();
            let start = Instant::now();
            for round in 0..rounds {
                let round_start = Instant::now();
                archive::archive_source(&mut set, &state, TreeMode::NLevel, 30 + round * 15);
                rounds_us.record(round_start.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            let archive_time = start.elapsed() / rounds as u32;
            let updates_per_round = (set.update_count() - before) / rounds;
            let quantiles = rounds_us.snapshot();
            LimitsRow {
                metrics_per_host,
                updates_per_round,
                archive_time,
                archive_time_p50: Duration::from_micros(quantiles.quantile(0.50)),
                archive_time_p99: Duration::from_micros(quantiles.quantile(0.99)),
            }
        })
        .collect();
    LimitsResult { hosts, rows }
}

/// One before/after pair for the sequential-vs-parallel poll round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundScalingResult {
    pub sources: usize,
    /// Wire delay every source's endpoint imposes on each fetch.
    pub per_source_delay: Duration,
    /// Round wall-clock with one poll worker (the old behaviour).
    pub sequential_round: Duration,
    /// Round wall-clock with `poll_concurrency = 0` (auto fan-out).
    pub parallel_round: Duration,
}

impl RoundScalingResult {
    pub fn speedup(&self) -> f64 {
        self.sequential_round.as_secs_f64() / self.parallel_round.as_secs_f64().max(1e-9)
    }
}

/// Quantify the poll-round fix: a sequential round pays the *sum* of
/// its sources' latencies, a parallel round pays roughly the *max*.
/// Each source is served with a real wire delay, so the numbers are
/// honest wall-clock, not simulation time.
pub fn run_round_scaling(sources: usize, per_source_delay: Duration) -> RoundScalingResult {
    let net = SimNet::new(5);
    let guards: Vec<_> = (0..sources)
        .map(|s| {
            let addr = Addr::new(format!("limits-{s}/n0"));
            let body = write_document(&synthetic_cluster(4, 4, 1.0));
            let guard = net
                .serve(&addr, Arc::new(move |_: &str| body.clone()))
                .expect("fresh sim address");
            net.set_wire_delay(&addr, per_source_delay);
            guard
        })
        .collect();

    let round = |concurrency: usize| {
        let mut config = GmetadConfig::new("limits").with_poll_concurrency(concurrency);
        for s in 0..sources {
            let addr = Addr::new(format!("limits-{s}/n0"));
            config =
                config.with_source(DataSourceCfg::new(format!("limits-{s}"), vec![addr]).unwrap());
        }
        let gmetad = Gmetad::new(config);
        let start = Instant::now();
        let results = gmetad.poll_all(&net, 15);
        let elapsed = start.elapsed();
        assert!(results.iter().all(Result::is_ok), "{results:?}");
        elapsed
    };
    let sequential_round = round(1);
    let parallel_round = round(0);
    drop(guards);
    RoundScalingResult {
        sources,
        per_source_delay,
        sequential_round,
        parallel_round,
    }
}

/// A user-defined (gmetric-style) metric definition, for tests that
/// grow the per-host metric set of a live cluster.
pub fn user_metric(name: &'static str) -> MetricDefinition {
    MetricDefinition {
        name,
        ty: MetricType::Double,
        units: "units",
        slope: Slope::Both,
        collect_every: 20,
        value_threshold: 0.0,
        tmax: 60,
        dmax: 0,
        synth: Synth::Uniform {
            min: 0.0,
            max: 100.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_grow_linearly_with_metric_count() {
        let result = run_limits(20, &[10, 20, 40], 3);
        assert!(result.updates_scale_linearly(), "{result:?}");
        // 21 series per metric (20 hosts + 1 summary).
        assert_eq!(result.rows[0].updates_per_round, 21 * 10);
        assert_eq!(result.rows[2].updates_per_round, 21 * 40);
        // Cost roughly tracks update count: 4× the metrics should cost
        // at least 2× the time (generous bound; the point is growth).
        let t10 = result.rows[0].archive_time.as_secs_f64();
        let t40 = result.rows[2].archive_time.as_secs_f64();
        assert!(t40 > t10 * 1.5, "t10={t10} t40={t40}");
        // Quantiles bracket the mean sensibly: p50 <= p99, both nonzero.
        for row in &result.rows {
            assert!(row.archive_time_p50 <= row.archive_time_p99, "{row:?}");
            assert!(row.archive_time_p99 > Duration::ZERO, "{row:?}");
        }
    }

    #[test]
    fn parallel_round_beats_sequential_on_wall_clock() {
        let result = run_round_scaling(4, Duration::from_millis(60));
        // Sequential pays the sum of the delays...
        assert!(
            result.sequential_round >= Duration::from_millis(4 * 60),
            "{result:?}"
        );
        // ...parallel only the slowest source plus slack.
        assert!(
            result.parallel_round < result.sequential_round,
            "{result:?}"
        );
        assert!(result.speedup() > 1.0, "{result:?}");
    }

    #[test]
    fn synthetic_cluster_shape() {
        let doc = synthetic_cluster(3, 7, 2.5);
        assert_eq!(doc.host_count(), 3);
        let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        assert_eq!(c.host("n0000").unwrap().metrics.len(), 7);
    }
}
