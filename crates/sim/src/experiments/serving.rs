//! The serving front tier, measured.
//!
//! §3.3 sizes the query side of gmetad: "many clients request and
//! receive cluster state", and "the time to dump the actual data takes
//! longer" as the tree grows. Rendering the full dump per connection is
//! O(C·H·m) work repeated for every client; between poll rounds the
//! store does not change, so all but the first render is waste. Two
//! experiments quantify what `ganglia-serve` buys back:
//!
//! * [`run_serving`] — N concurrent clients hammer the full-dump
//!   service with the revision-keyed cache on and off; the cached side
//!   should win by a wide margin (the bench asserts ≥5×).
//! * [`run_slow_client_isolation`] — over real TCP, well-behaved
//!   keep-alive clients measure their p99 while stalled connections
//!   occupy the pool; per-connection deadlines keep the p99 bounded
//!   instead of letting one bad peer wedge the port.

use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ganglia_core::telemetry::Histogram;
use ganglia_core::{DataSourceCfg, Gmetad, GmetadConfig};
use ganglia_gmond::pseudo::ServedPseudoCluster;
use ganglia_gmond::PseudoGmond;
use ganglia_net::{Addr, SimNet};
use ganglia_serve::{FrontTier, KeepAliveClient, PooledServer, ServeOptions};

/// Shape of the serving workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingParams {
    /// Monitored clusters feeding the store.
    pub clusters: usize,
    /// Hosts per cluster (the dump is O(clusters · hosts · metrics)).
    pub hosts_per_cluster: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Full-dump requests each client issues.
    pub requests_per_client: usize,
}

impl Default for ServingParams {
    fn default() -> Self {
        ServingParams {
            clusters: 4,
            hosts_per_cluster: 32,
            clients: 64,
            requests_per_client: 25,
        }
    }
}

/// One side of the cache-on/cache-off comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSide {
    pub elapsed: Duration,
    /// Full dumps served per second across all clients.
    pub throughput_rps: f64,
    /// Requests answered by rendering (inner-handler calls).
    pub renders: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// p99 of the tier's per-request latency.
    pub latency_p99_us: u64,
}

/// Result of [`run_serving`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServingResult {
    pub params: ServingParams,
    /// Size of one full dump, so throughput can be read as bandwidth.
    pub dump_bytes: usize,
    pub cached: ServingSide,
    pub rendered: ServingSide,
}

impl ServingResult {
    /// Cached-dump throughput over render-per-request throughput.
    pub fn speedup(&self) -> f64 {
        self.cached.throughput_rps / self.rendered.throughput_rps.max(1e-9)
    }
}

/// Build a gmetad whose store holds `clusters` pseudo-gmond clusters,
/// polled once so every snapshot is fresh. The cluster guards must stay
/// alive while the daemon is used.
fn populated_gmetad(
    net: &Arc<SimNet>,
    clusters: usize,
    hosts_per_cluster: usize,
) -> (Vec<ServedPseudoCluster>, Arc<Gmetad>) {
    let mut config = GmetadConfig::new("serving");
    let served: Vec<ServedPseudoCluster> = (0..clusters)
        .map(|c| {
            let pseudo = PseudoGmond::new(format!("c{c}"), hosts_per_cluster, 42 + c as u64, 0);
            ServedPseudoCluster::serve(net, pseudo, 1)
        })
        .collect();
    for (c, cluster) in served.iter().enumerate() {
        config = config
            .with_source(DataSourceCfg::new(format!("c{c}"), cluster.addrs().to_vec()).unwrap());
    }
    let gmetad = Gmetad::new(config);
    let results = gmetad.poll_all(net, 15);
    assert!(results.iter().all(Result::is_ok), "{results:?}");
    (served, gmetad)
}

/// Drive `clients` threads through `tier`, each issuing
/// `requests_per_client` full-dump requests under its own peer name.
/// Returns the wall-clock from gate-release to last completion.
fn drive(tier: &Arc<FrontTier>, clients: usize, requests_per_client: usize) -> Duration {
    let gate = Arc::new(Barrier::new(clients + 1));
    let mut start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let tier = Arc::clone(tier);
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                let peer = format!("client-{client}");
                gate.wait();
                for _ in 0..requests_per_client {
                    let served = tier.handle_from(&peer, "/");
                    assert!(
                        served.accepted(),
                        "in-process drive stays under max_inflight"
                    );
                }
            });
        }
        gate.wait();
        start = Instant::now();
    });
    start.elapsed()
}

/// Measure full-dump serving with the revision-keyed cache on and off.
///
/// Clients run in-process against the tier (the same code path the
/// pooled TCP workers call), so the comparison isolates render-vs-cache
/// cost from socket noise. The store is identical on both sides and
/// never mutates mid-run, so the cached side serves byte-identical
/// documents — just without re-rendering them.
pub fn run_serving(params: ServingParams) -> ServingResult {
    let net = SimNet::new(1);
    let (_served, gmetad) = populated_gmetad(&net, params.clusters, params.hosts_per_cluster);
    let dump_bytes = gmetad.query("/").len();
    let total = (params.clients * params.requests_per_client) as u64;

    let side = |cache: bool| {
        let options = ServeOptions::default()
            .with_cache(cache)
            .with_workers(params.clients.max(1))
            .with_max_inflight(params.clients.max(64) * 2);
        // A fresh registry per side keeps the two sides' counters and
        // latency quantiles apart; `Gmetad::dump_tier` shares the
        // daemon registry instead, which is what a deployment wants.
        let registry = Arc::new(ganglia_core::telemetry::Registry::new());
        let revision = {
            let daemon = Arc::clone(&gmetad);
            move || daemon.store().revision()
        };
        let tier = FrontTier::new(
            gmetad.dump_handler(),
            revision,
            options,
            Arc::clone(&registry),
        );
        let elapsed = drive(&tier, params.clients, params.requests_per_client);
        let snap = registry.snapshot();
        let cache_hits = snap.counter("serve.cache_hits_total").unwrap_or(0);
        ServingSide {
            elapsed,
            throughput_rps: total as f64 / elapsed.as_secs_f64().max(1e-9),
            // Everything not served from the cache was rendered; with
            // the cache off that is every request.
            renders: total - cache_hits,
            cache_hits,
            latency_p99_us: snap
                .histogram("serve.latency_us")
                .map_or(0, |h| h.quantile(0.99)),
        }
    };

    let rendered = side(false);
    let cached = side(true);
    ServingResult {
        params,
        dump_bytes,
        cached,
        rendered,
    }
}

/// Result of [`run_slow_client_isolation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationResult {
    /// Good-client p99 with the port to themselves.
    pub baseline_p99_us: u64,
    /// Good-client p99 while `stalled_clients` connections sit on the
    /// pool sending nothing.
    pub contended_p99_us: u64,
    pub stalled_clients: usize,
    /// Connections the server evicted on a read/write deadline.
    pub evictions: u64,
}

impl IsolationResult {
    /// The paper-faithful claim: slow clients cost a bounded amount.
    /// `allowance` is the per-connection deadline the pool evicts at; a
    /// wedged port would push the p99 toward the client timeout instead.
    pub fn p99_bounded_by(&self, allowance: Duration) -> bool {
        Duration::from_micros(self.contended_p99_us) < allowance
    }
}

/// Over real TCP: measure keep-alive clients' p99 latency with and
/// without stalled connections occupying the worker pool.
pub fn run_slow_client_isolation(
    good_clients: usize,
    requests_per_client: usize,
    stalled_clients: usize,
) -> IsolationResult {
    let net = SimNet::new(1);
    let (_served, gmetad) = populated_gmetad(&net, 2, 16);
    let stall_deadline = Duration::from_millis(300);
    let options = ServeOptions::default()
        .with_workers(4)
        .with_max_inflight(256)
        .with_deadlines(stall_deadline, stall_deadline);
    let tier = gmetad.dump_tier(options);
    let registry = Arc::clone(tier.registry());
    let guard = PooledServer::bind(&Addr::new("127.0.0.1:0"), tier).expect("bind loopback");
    let addr = guard.addr();
    let timeout = Duration::from_secs(5);

    let measure = |label: &str| {
        let latency = Histogram::new();
        std::thread::scope(|scope| {
            for client in 0..good_clients {
                let addr = addr.clone();
                let latency = &latency;
                let name = format!("{label}-{client}");
                scope.spawn(move || {
                    let mut session =
                        KeepAliveClient::connect(&addr, &name, timeout).expect("connect");
                    for _ in 0..requests_per_client {
                        let start = Instant::now();
                        let body = session.query("/").expect("keep-alive query");
                        latency.record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        assert!(body.contains("GANGLIA_XML"), "valid document under load");
                    }
                });
            }
        });
        latency.snapshot().quantile(0.99)
    };

    let baseline_p99_us = measure("baseline");
    // Park `stalled_clients` connections on the pool: they complete the
    // TCP handshake, then send nothing. Each pins one worker until the
    // read deadline evicts it; the client keeps re-connecting, so the
    // pressure is sustained for the whole measurement.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let socket_addr: std::net::SocketAddr = addr.as_str().parse().unwrap();
    let contended_p99_us = std::thread::scope(|scope| {
        for _ in 0..stalled_clients {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut parked: Vec<TcpStream> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    if let Ok(stream) = TcpStream::connect_timeout(&socket_addr, timeout) {
                        parked.push(stream);
                        if parked.len() > 8 {
                            parked.remove(0); // rotate so evicted sockets are replaced
                        }
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            });
        }
        let p99 = measure("contended");
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        p99
    });
    let evictions = registry
        .snapshot()
        .counter("serve.evicted_total")
        .unwrap_or(0);
    IsolationResult {
        baseline_p99_us,
        contended_p99_us,
        stalled_clients,
        evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_multiplies_dump_throughput() {
        let result = run_serving(ServingParams {
            clusters: 2,
            hosts_per_cluster: 16,
            clients: 8,
            requests_per_client: 25,
        });
        assert!(result.dump_bytes > 10_000, "{}", result.dump_bytes);
        // At most the initial thundering herd renders (concurrent first
        // misses racing the first insert); everything after hits.
        assert!(result.cached.renders >= 1, "{result:?}");
        assert!(result.cached.renders <= 8, "{result:?}");
        assert_eq!(result.cached.cache_hits, 8 * 25 - result.cached.renders);
        // The uncached side rendered every time.
        assert_eq!(result.rendered.renders, 8 * 25);
        assert_eq!(result.rendered.cache_hits, 0);
        // The full ≥5× claim is asserted at bench scale (64 clients);
        // at this test's size the cache must still clearly win.
        assert!(result.speedup() > 1.5, "speedup {:.2}", result.speedup());
    }

    #[test]
    fn slow_clients_do_not_wedge_the_pool() {
        let result = run_slow_client_isolation(4, 25, 2);
        // The keep-alive clients all finished (measure asserts each
        // response), and their p99 stayed far from the 5 s client
        // timeout a wedged port would produce.
        assert!(
            result.p99_bounded_by(Duration::from_secs(2)),
            "contended p99 {}us",
            result.contended_p99_us
        );
    }
}
