//! Crash-consistency fault injection for the journaled archive engine.
//!
//! The harness runs two daemons against the *same* served pseudo
//! cluster on a deterministic virtual clock: a control that never
//! crashes (in-memory archives) and a victim persisting through the
//! write-ahead journal. At a chosen round the victim "dies" — its
//! in-memory state is dropped and, depending on the mode, its journal
//! file is torn at a byte offset chosen by the seeded RNG (a torn
//! write) or a checkpoint is abandoned halfway through. A fresh daemon
//! then recovers from disk, re-polls the round the cluster is still
//! serving, and the run continues. At the end every archived series
//! must match the control bitwise: recovery plus idempotent replay
//! loses nothing that was acknowledged.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ganglia_core::{ArchiveMode, DataSourceCfg, Gmetad, GmetadConfig};
use ganglia_gmond::pseudo::ServedPseudoCluster;
use ganglia_gmond::PseudoGmond;
use ganglia_net::SimNet;
use ganglia_rrd::{ConsolidationFn, DataSourceDef, RraDef, RrdSpec, Series};

/// How the victim daemon dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Die after the crash round's group commit, then tear the journal
    /// at a byte offset inside that round's span (and sometimes flip a
    /// byte in the kept region) — the torn-write case fsync ordering
    /// cannot prevent, only recovery can contain.
    TornAppend,
    /// Die midway through a checkpoint: some `.rrd` files rewritten,
    /// some not, journal untouched (it only truncates on completion).
    PartialCheckpoint,
}

/// Parameters of one crash-replay run.
#[derive(Debug, Clone)]
pub struct CrashParams {
    /// Seeds the network, the pseudo cluster, and the fault RNG.
    pub seed: u64,
    /// Hosts in the pseudo cluster.
    pub hosts: usize,
    /// Total poll rounds.
    pub rounds: u64,
    /// Round (1-based) at which the victim dies.
    pub crash_round: u64,
    /// Fault flavour.
    pub mode: CrashMode,
    /// Rounds between victim checkpoints (`0` = every round).
    pub checkpoint_every: u64,
}

impl Default for CrashParams {
    fn default() -> Self {
        CrashParams {
            seed: 42,
            hosts: 8,
            rounds: 10,
            crash_round: 5,
            mode: CrashMode::TornAppend,
            checkpoint_every: 3,
        }
    }
}

/// Outcome of one crash-replay run.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// Archived series compared.
    pub keys: usize,
    /// Series that differed from the never-crashed control.
    pub mismatched: usize,
    /// Whether victim and control archived the same key set.
    pub key_sets_match: bool,
    /// Journal records recovery replayed as fresh updates.
    pub replayed: u64,
    /// Journal records recovery found already checkpointed.
    pub noops: u64,
    /// Torn journal tails dropped during recovery.
    pub torn_tails: u64,
    /// Bytes discarded with those tails.
    pub torn_bytes: u64,
    /// Shards present after recovery.
    pub recovered_shards: usize,
}

impl CrashReport {
    /// True when the recovered victim is indistinguishable from the
    /// control.
    pub fn consistent(&self) -> bool {
        self.key_sets_match && self.mismatched == 0
    }
}

/// Run one crash-replay experiment under `dir` (wiped first).
pub fn run_crash_replay(dir: &Path, params: &CrashParams) -> CrashReport {
    assert!(
        (1..=params.rounds).contains(&params.crash_round),
        "crash_round must fall inside the run"
    );
    let _ = std::fs::remove_dir_all(dir);
    let interval = 15u64;
    let net = SimNet::new(params.seed);
    let pseudo = PseudoGmond::new("meteor", params.hosts, params.seed ^ 0x6d65_7465, 0);
    let served = ServedPseudoCluster::serve(&net, pseudo, 1);

    let spec = move |key: &ganglia_rrd::MetricKey, start: u64| RrdSpec {
        step: interval,
        start,
        data_sources: vec![DataSourceDef::gauge(key.metric.clone(), interval * 8)],
        archives: vec![RraDef::average(1, 64)],
    };
    let make_victim = || {
        let mut config = GmetadConfig::new("crashgrid")
            .with_source(
                DataSourceCfg::new("meteor", served.addrs().to_vec())
                    .expect("served cluster has addresses"),
            )
            .with_archive(ArchiveMode::Directory(dir.to_path_buf()))
            .with_archive_journal(true)
            .with_archive_flush_ms(0)
            .with_archive_checkpoint_secs(params.checkpoint_every * interval);
        config.poll_interval = interval;
        Gmetad::with_archive_spec(config, Some(Arc::new(spec)))
    };
    let control = {
        let mut config = GmetadConfig::new("crashgrid")
            .with_source(
                DataSourceCfg::new("meteor", served.addrs().to_vec())
                    .expect("served cluster has addresses"),
            )
            .with_archive(ArchiveMode::InMemory);
        config.poll_interval = interval;
        Gmetad::with_archive_spec(config, Some(Arc::new(spec)))
    };

    let mut rng = Rng(params.seed | 1);
    let mut victim = make_victim();
    let mut report = CrashReport::default();

    for round in 1..=params.rounds {
        let now = round * interval;
        served.advance(now);
        let _ = control.poll_all(&net, now);
        let sizes_before = if round == params.crash_round {
            wal_sizes(dir)
        } else {
            Vec::new()
        };
        let _ = victim.poll_all(&net, now);
        if round == params.crash_round {
            match params.mode {
                CrashMode::TornAppend => {
                    drop(victim); // in-memory state dies with the daemon
                    tear_journals(dir, &sizes_before, &mut rng);
                }
                CrashMode::PartialCheckpoint => {
                    let dirty = victim.archive_keys().len().max(1);
                    let budget = 1 + (rng.next() as usize) % dirty;
                    let _ = victim.checkpoint_archives_partial(now, budget);
                    drop(victim);
                }
            }
            victim = make_victim();
            let recovery = victim.recover_archives().expect("recovery never fails");
            report.replayed += recovery.replayed;
            report.noops += recovery.noops;
            report.torn_tails += recovery.torn_tails;
            report.torn_bytes += recovery.torn_bytes;
            report.recovered_shards = recovery.shards;
            // Re-poll the crash round: the cluster still serves the same
            // report, so updates lost with the torn tail are re-applied
            // and already-replayed ones gate out as `UpdateInPast`.
            let _ = victim.poll_all(&net, now);
        }
    }
    // One full checkpoint at the end exercises the post-recovery
    // checkpoint path (and leaves a clean directory behind).
    victim
        .checkpoint_archives(params.rounds * interval)
        .expect("final checkpoint");

    let control_keys = control.archive_keys();
    let victim_keys = victim.archive_keys();
    report.keys = control_keys.len();
    report.key_sets_match = control_keys == victim_keys;
    let end = (params.rounds + 1) * interval;
    for key in &control_keys {
        let want = control.fetch_history(key, ConsolidationFn::Average, 0, end);
        let got = victim.fetch_history(key, ConsolidationFn::Average, 0, end);
        if !series_eq(want.as_ref(), got.as_ref()) {
            report.mismatched += 1;
        }
    }
    report
}

/// Bitwise series equality (NaN == NaN, unlike `PartialEq` on f64).
fn series_eq(a: Option<&Series>, b: Option<&Series>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            a.start == b.start
                && a.step == b.step
                && a.values.len() == b.values.len()
                && a.values
                    .iter()
                    .zip(&b.values)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        }
        _ => false,
    }
}

/// Sizes of every journal file under `dir/.journal`.
fn wal_sizes(dir: &Path) -> Vec<(PathBuf, u64)> {
    let mut sizes = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir.join(".journal")) else {
        return sizes;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("wal") {
            if let Ok(meta) = std::fs::metadata(&path) {
                sizes.push((path, meta.len()));
            }
        }
    }
    sizes.sort();
    sizes
}

/// Simulate a torn write: truncate each journal at an RNG-chosen offset
/// inside the crash round's byte span, sometimes also flipping a byte in
/// the kept part of that span (a misdirected sector write). Earlier
/// rounds' bytes are never touched — they were acknowledged by fsync.
fn tear_journals(dir: &Path, sizes_before: &[(PathBuf, u64)], rng: &mut Rng) {
    for (path, after) in wal_sizes(dir) {
        let before = sizes_before
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, len)| *len)
            .unwrap_or(0);
        if after <= before {
            continue; // nothing written this round (e.g. just checkpointed)
        }
        let span = after - before;
        let cut = before + 1 + rng.next() % span; // in (before, after]
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("journal exists");
        file.set_len(cut).expect("truncate journal");
        drop(file);
        if rng.next().is_multiple_of(2) && cut > before + 1 {
            flip_byte(&path, before + rng.next() % (cut - before));
        }
    }
}

fn flip_byte(path: &Path, offset: u64) {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("journal exists");
    let mut byte = [0u8];
    file.seek(SeekFrom::Start(offset)).expect("seek");
    file.read_exact(&mut byte).expect("read byte");
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset)).expect("seek");
    file.write_all(&byte).expect("write byte");
}

/// xorshift64* — deterministic, dependency-free fault randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ganglia-crash-{tag}-{}", std::process::id()))
    }

    #[test]
    fn torn_append_recovers_to_control() {
        let dir = temp_dir("torn");
        let report = run_crash_replay(&dir, &CrashParams::default());
        assert!(report.keys > 0);
        assert!(
            report.consistent(),
            "victim diverged from control: {report:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_checkpoint_recovers_to_control() {
        let dir = temp_dir("partial");
        let report = run_crash_replay(
            &dir,
            &CrashParams {
                mode: CrashMode::PartialCheckpoint,
                crash_round: 7,
                ..CrashParams::default()
            },
        );
        assert!(report.keys > 0);
        assert!(
            report.consistent(),
            "victim diverged from control: {report:?}"
        );
        assert!(
            report.replayed + report.noops > 0,
            "journal should have had records to replay: {report:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
