//! CPU accounting over a measurement window.
//!
//! The paper measures "%CPU ... calculated over a 60-minute timing
//! window" per gmeta node (§4.1), emphasizing *relative* timings. Here
//! the window is virtual (rounds × poll interval) while the busy time is
//! real measured work, so the percentage is `busy / window` — the same
//! quantity `ps` reports, minus scheduler noise.

use std::time::Duration;

use ganglia_core::{WorkCategory, WorkMeter};

/// One monitor's CPU figures for a window.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorCpu {
    pub monitor: String,
    /// Busy time inside the window.
    pub busy: Duration,
    /// CPU utilization in percent.
    pub percent: f64,
    /// Busy time by category, in [`WorkCategory::ALL`] order.
    pub by_category: Vec<(WorkCategory, Duration)>,
}

/// A whole tree's CPU figures.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuReport {
    /// Virtual measurement window.
    pub window: Duration,
    /// Per-monitor rows, in the order requested.
    pub rows: Vec<MonitorCpu>,
}

impl CpuReport {
    /// Collect a report from `(name, meter)` pairs over `window`.
    pub fn collect<'a>(
        window: Duration,
        meters: impl IntoIterator<Item = (&'a str, &'a WorkMeter)>,
    ) -> CpuReport {
        let rows = meters
            .into_iter()
            .map(|(monitor, meter)| MonitorCpu {
                monitor: monitor.to_string(),
                busy: meter.total_busy(),
                percent: meter.cpu_percent(window),
                by_category: meter.breakdown(),
            })
            .collect();
        CpuReport { window, rows }
    }

    /// Sum of per-monitor CPU percentages — the y-axis of figure 6
    /// ("the sum of the CPU utilization across all gmeta nodes").
    pub fn aggregate_percent(&self) -> f64 {
        self.rows.iter().map(|r| r.percent).sum()
    }

    /// One monitor's row.
    pub fn monitor(&self, name: &str) -> Option<&MonitorCpu> {
        self.rows.iter().find(|r| r.monitor == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_computes_percentages() {
        let meter_a = WorkMeter::new();
        meter_a.record(WorkCategory::Parse, Duration::from_secs(6));
        let meter_b = WorkMeter::new();
        meter_b.record(WorkCategory::Archive, Duration::from_secs(3));
        let report = CpuReport::collect(
            Duration::from_secs(60),
            [("root", &meter_a), ("leaf", &meter_b)],
        );
        assert_eq!(report.rows.len(), 2);
        assert!((report.monitor("root").unwrap().percent - 10.0).abs() < 1e-9);
        assert!((report.monitor("leaf").unwrap().percent - 5.0).abs() < 1e-9);
        assert!((report.aggregate_percent() - 15.0).abs() < 1e-9);
        assert!(report.monitor("nobody").is_none());
    }
}
