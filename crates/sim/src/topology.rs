//! Monitoring-tree specifications.

use std::collections::{HashMap, HashSet, VecDeque};

/// A leaf cluster attached to a monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    pub name: String,
    pub hosts: usize,
}

/// One wide-area monitor (gmetad) in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSpec {
    pub name: String,
    /// Child monitors (trust edges point child → parent; the parent
    /// polls).
    pub children: Vec<String>,
    /// Clusters attached directly to this monitor.
    pub local_clusters: Vec<ClusterSpec>,
}

/// A whole monitoring tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSpec {
    pub root: String,
    pub monitors: Vec<MonitorSpec>,
}

/// Why a tree specification is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    UnknownMonitor(String),
    DuplicateMonitor(String),
    DuplicateCluster(String),
    MultipleParents(String),
    UnreachableMonitor(String),
    NoRoot,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::UnknownMonitor(m) => write!(f, "unknown monitor {m:?} referenced"),
            TreeError::DuplicateMonitor(m) => write!(f, "monitor {m:?} defined twice"),
            TreeError::DuplicateCluster(c) => write!(f, "cluster {c:?} attached twice"),
            TreeError::MultipleParents(m) => write!(f, "monitor {m:?} has several parents"),
            TreeError::UnreachableMonitor(m) => write!(f, "monitor {m:?} unreachable from root"),
            TreeError::NoRoot => write!(f, "root monitor is not defined"),
        }
    }
}

impl std::error::Error for TreeError {}

impl TreeSpec {
    /// Check the tree is well-formed: unique names, single parent per
    /// monitor, everything reachable from the root.
    pub fn validate(&self) -> Result<(), TreeError> {
        let mut names = HashSet::new();
        for monitor in &self.monitors {
            if !names.insert(monitor.name.as_str()) {
                return Err(TreeError::DuplicateMonitor(monitor.name.clone()));
            }
        }
        if !names.contains(self.root.as_str()) {
            return Err(TreeError::NoRoot);
        }
        let mut cluster_names = HashSet::new();
        let mut parented: HashMap<&str, &str> = HashMap::new();
        for monitor in &self.monitors {
            for child in &monitor.children {
                if !names.contains(child.as_str()) {
                    return Err(TreeError::UnknownMonitor(child.clone()));
                }
                if parented.insert(child, &monitor.name).is_some() {
                    return Err(TreeError::MultipleParents(child.clone()));
                }
            }
            for cluster in &monitor.local_clusters {
                if !cluster_names.insert(cluster.name.as_str()) {
                    return Err(TreeError::DuplicateCluster(cluster.name.clone()));
                }
            }
        }
        // Reachability (also rejects cycles that exclude the root).
        let reachable = self.breadth_first();
        for monitor in &self.monitors {
            if !reachable.contains(&monitor.name) {
                return Err(TreeError::UnreachableMonitor(monitor.name.clone()));
            }
        }
        Ok(())
    }

    /// Monitor names in breadth-first order from the root.
    pub fn breadth_first(&self) -> Vec<String> {
        let by_name: HashMap<&str, &MonitorSpec> =
            self.monitors.iter().map(|m| (m.name.as_str(), m)).collect();
        let mut order = Vec::new();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        if by_name.contains_key(self.root.as_str()) {
            queue.push_back(self.root.as_str());
            seen.insert(self.root.as_str());
        }
        while let Some(name) = queue.pop_front() {
            order.push(name.to_string());
            if let Some(monitor) = by_name.get(name) {
                for child in &monitor.children {
                    if seen.insert(child.as_str()) {
                        queue.push_back(child);
                    }
                }
            }
        }
        order
    }

    /// Monitor names deepest-first (children always before parents) —
    /// the deterministic polling order, so each round propagates leaf
    /// data all the way to the root.
    pub fn bottom_up(&self) -> Vec<String> {
        let mut order = self.breadth_first();
        order.reverse();
        order
    }

    /// Look up one monitor.
    pub fn monitor(&self, name: &str) -> Option<&MonitorSpec> {
        self.monitors.iter().find(|m| m.name == name)
    }

    /// Total clusters in the tree.
    pub fn cluster_count(&self) -> usize {
        self.monitors.iter().map(|m| m.local_clusters.len()).sum()
    }

    /// Total hosts in the tree.
    pub fn host_count(&self) -> usize {
        self.monitors
            .iter()
            .flat_map(|m| &m.local_clusters)
            .map(|c| c.hosts)
            .sum()
    }
}

/// The paper's figure-2 monitoring tree: root ← {ucsd, sdsc},
/// ucsd ← {physics, math}, sdsc ← {attic}; "the twelve clusters in the
/// tree are simulated with pseudo-gmons" (§4.1), two local to each
/// monitor.
pub fn fig2_tree(hosts_per_cluster: usize) -> TreeSpec {
    let monitor = |name: &str, children: &[&str]| {
        let local_clusters = (0..2)
            .map(|i| ClusterSpec {
                name: format!("{name}-c{i}"),
                hosts: hosts_per_cluster,
            })
            .collect();
        MonitorSpec {
            name: name.to_string(),
            children: children.iter().map(|c| c.to_string()).collect(),
            local_clusters,
        }
    };
    TreeSpec {
        root: "root".to_string(),
        monitors: vec![
            monitor("root", &["ucsd", "sdsc"]),
            monitor("ucsd", &["physics", "math"]),
            monitor("sdsc", &["attic"]),
            monitor("physics", &[]),
            monitor("math", &[]),
            monitor("attic", &[]),
        ],
    }
}

/// A monitor chain of `levels` gmetads — `m0` (root) polls `m1` polls
/// … polls `m{levels-1}` — with one cluster of `hosts` hosts at the
/// deepest monitor. The propagation-lag experiment drives this shape to
/// measure how data age accumulates per federation level.
pub fn chain_tree(levels: usize, hosts: usize) -> TreeSpec {
    assert!(levels >= 1, "a chain needs at least one monitor");
    let monitors = (0..levels)
        .map(|i| MonitorSpec {
            name: format!("m{i}"),
            children: if i + 1 < levels {
                vec![format!("m{}", i + 1)]
            } else {
                Vec::new()
            },
            local_clusters: if i + 1 == levels {
                vec![ClusterSpec {
                    name: "leaf-c0".to_string(),
                    hosts,
                }]
            } else {
                Vec::new()
            },
        })
        .collect();
    TreeSpec {
        root: "m0".to_string(),
        monitors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_valid_and_linear() {
        for levels in 1..=4 {
            let tree = chain_tree(levels, 8);
            tree.validate().unwrap();
            assert_eq!(tree.monitors.len(), levels);
            assert_eq!(tree.cluster_count(), 1);
            assert_eq!(tree.host_count(), 8);
            let bfs = tree.breadth_first();
            assert_eq!(bfs.first().map(String::as_str), Some("m0"));
            assert_eq!(bfs.last().cloned(), Some(format!("m{}", levels - 1)));
        }
    }

    #[test]
    fn fig2_matches_the_paper() {
        let tree = fig2_tree(100);
        tree.validate().unwrap();
        assert_eq!(tree.monitors.len(), 6, "six gmeta nodes (§4.2)");
        assert_eq!(tree.cluster_count(), 12, "twelve clusters (§4.1)");
        assert_eq!(tree.host_count(), 1200);
        assert_eq!(tree.monitor("root").unwrap().children, vec!["ucsd", "sdsc"]);
        assert_eq!(
            tree.monitor("ucsd").unwrap().children,
            vec!["physics", "math"]
        );
        assert_eq!(tree.monitor("sdsc").unwrap().children, vec!["attic"]);
    }

    #[test]
    fn bottom_up_puts_children_before_parents() {
        let tree = fig2_tree(10);
        let order = tree.bottom_up();
        let pos = |name: &str| order.iter().position(|m| m == name).unwrap();
        assert!(pos("physics") < pos("ucsd"));
        assert!(pos("math") < pos("ucsd"));
        assert!(pos("attic") < pos("sdsc"));
        assert!(pos("ucsd") < pos("root"));
        assert!(pos("sdsc") < pos("root"));
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn validation_catches_bad_trees() {
        let mut tree = fig2_tree(1);
        tree.monitors[0].children.push("mars".into());
        assert_eq!(
            tree.validate(),
            Err(TreeError::UnknownMonitor("mars".into()))
        );

        let mut tree = fig2_tree(1);
        tree.monitors[1].children.push("attic".into());
        assert_eq!(
            tree.validate(),
            Err(TreeError::MultipleParents("attic".into()))
        );

        let mut tree = fig2_tree(1);
        tree.monitors[4].local_clusters[0].name = "root-c0".into();
        assert_eq!(
            tree.validate(),
            Err(TreeError::DuplicateCluster("root-c0".into()))
        );

        let mut tree = fig2_tree(1);
        tree.root = "mars".into();
        assert_eq!(tree.validate(), Err(TreeError::NoRoot));

        let mut tree = fig2_tree(1);
        let dup = tree.monitors[5].clone();
        tree.monitors.push(dup);
        assert!(matches!(
            tree.validate(),
            Err(TreeError::DuplicateMonitor(_))
        ));

        // An orphan monitor is unreachable.
        let mut tree = fig2_tree(1);
        tree.monitors.push(MonitorSpec {
            name: "island".into(),
            children: vec![],
            local_clusters: vec![],
        });
        assert_eq!(
            tree.validate(),
            Err(TreeError::UnreachableMonitor("island".into()))
        );
    }
}
