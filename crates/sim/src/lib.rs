//! Deployment simulator and the paper's experiments.
//!
//! The paper evaluates its designs on a 10-node cluster running a
//! six-gmeta monitoring tree over twelve pseudo-gmond clusters (§4,
//! fig 2). This crate rebuilds that testbed in-process:
//!
//! * [`topology`] — monitoring-tree specifications, including the exact
//!   figure-2 tree used by every experiment;
//! * [`deploy`] — instantiates a tree over the simulated network:
//!   pseudo-gmond clusters at the leaves, one [`ganglia_core::Gmetad`]
//!   per monitor, trust edges wired parent→child, polls driven
//!   deterministically bottom-up on a virtual clock;
//! * [`cpu`] — per-monitor CPU accounting over a measurement window
//!   (the stand-in for the paper's `ps`-based CPU%, §4.1);
//! * [`experiments`] — one module per table/figure: [`experiments::fig5`]
//!   (per-monitor CPU% in the tree), [`experiments::fig6`] (aggregate
//!   CPU% vs cluster size), [`experiments::table1`] (viewer
//!   download+parse times).

pub mod cpu;
pub mod crash;
pub mod deploy;
pub mod experiments;
pub mod topology;

pub use cpu::{CpuReport, MonitorCpu};
pub use crash::{run_crash_replay, CrashMode, CrashParams, CrashReport};
pub use deploy::{Deployment, DeploymentParams};
pub use topology::{chain_tree, fig2_tree, ClusterSpec, MonitorSpec, TreeSpec};
