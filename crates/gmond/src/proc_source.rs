//! A real `/proc` metric collector for Linux hosts.
//!
//! Gives the standalone `gmond` binary genuine host metrics: load
//! averages, process counts, memory, CPU percentages and network rates
//! (both computed from counter deltas between collections), and the
//! constant host description. Metrics that have no portable source here
//! (the disk group) fall back to the definition's simulation model, and
//! any `/proc` read failure falls back the same way — so the collector
//! degrades gracefully off Linux.

use std::time::Instant;

use ganglia_metrics::{MetricDefinition, MetricValue};

use crate::source::{MetricSource, SimulatedHost};

/// Counters snapshot for rate metrics.
#[derive(Debug, Clone, Copy, Default)]
struct CpuTimes {
    user: u64,
    nice: u64,
    system: u64,
    idle: u64,
    total: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct NetTotals {
    bytes_in: u64,
    bytes_out: u64,
    pkts_in: u64,
    pkts_out: u64,
}

/// Collects from `/proc`, with a simulated fallback.
pub struct ProcSource {
    fallback: SimulatedHost,
    prev_cpu: Option<CpuTimes>,
    prev_net: Option<(Instant, NetTotals)>,
}

impl ProcSource {
    /// A collector whose fallback identity derives from `seed`.
    pub fn new(seed: u64) -> ProcSource {
        ProcSource {
            fallback: SimulatedHost::new(seed),
            prev_cpu: None,
            prev_net: None,
        }
    }

    fn collect_real(&mut self, def: &MetricDefinition) -> Option<MetricValue> {
        let value = match def.name {
            "load_one" => loadavg_field(0)?,
            "load_five" => loadavg_field(1)?,
            "load_fifteen" => loadavg_field(2)?,
            "proc_run" => proc_counts()?.0,
            "proc_total" => proc_counts()?.1,
            "cpu_num" => cpu_count()? as f64,
            "boottime" => stat_field("btime")?,
            "mem_total" => meminfo_kb("MemTotal:")?,
            "mem_free" => meminfo_kb("MemFree:")?,
            "mem_shared" => meminfo_kb("Shmem:")?,
            "mem_buffers" => meminfo_kb("Buffers:")?,
            "mem_cached" => meminfo_kb("Cached:")?,
            "swap_total" => meminfo_kb("SwapTotal:")?,
            "swap_free" => meminfo_kb("SwapFree:")?,
            "cpu_user" => self.cpu_percent(|d, t| d.user as f64 / t)?,
            "cpu_nice" => self.cpu_percent(|d, t| d.nice as f64 / t)?,
            "cpu_system" => self.cpu_percent(|d, t| d.system as f64 / t)?,
            "cpu_idle" => self.cpu_percent(|d, t| d.idle as f64 / t)?,
            "bytes_in" => self.net_rate(|d| d.bytes_in)?,
            "bytes_out" => self.net_rate(|d| d.bytes_out)?,
            "pkts_in" => self.net_rate(|d| d.pkts_in)?,
            "pkts_out" => self.net_rate(|d| d.pkts_out)?,
            "os_name" => return read_trimmed("/proc/sys/kernel/ostype").map(MetricValue::String),
            "os_release" => {
                return read_trimmed("/proc/sys/kernel/osrelease").map(MetricValue::String)
            }
            "machine_type" => return Some(MetricValue::String(std::env::consts::ARCH.to_string())),
            _ => return None,
        };
        Some(MetricValue::from_f64(def.ty, value))
    }

    /// Percentage of CPU time spent in one bucket since the previous
    /// collection.
    fn cpu_percent(&mut self, bucket: impl Fn(&CpuTimes, f64) -> f64) -> Option<f64> {
        let current = read_cpu_times()?;
        let prev = self.prev_cpu.replace(current);
        let prev = prev?;
        let delta = CpuTimes {
            user: current.user.saturating_sub(prev.user),
            nice: current.nice.saturating_sub(prev.nice),
            system: current.system.saturating_sub(prev.system),
            idle: current.idle.saturating_sub(prev.idle),
            total: current.total.saturating_sub(prev.total),
        };
        if delta.total == 0 {
            return Some(0.0);
        }
        Some(100.0 * bucket(&delta, delta.total as f64))
    }

    /// Per-second rate of one network counter since the previous
    /// collection.
    fn net_rate(&mut self, counter: impl Fn(&NetTotals) -> u64) -> Option<f64> {
        let current = read_net_totals()?;
        let now = Instant::now();
        let prev = self.prev_net.replace((now, current));
        let (prev_at, prev_totals) = prev?;
        let secs = now.duration_since(prev_at).as_secs_f64();
        if secs <= 0.0 {
            return Some(0.0);
        }
        let delta = counter(&current).saturating_sub(counter(&prev_totals));
        Some(delta as f64 / secs)
    }
}

impl MetricSource for ProcSource {
    fn collect(&mut self, def: &MetricDefinition) -> MetricValue {
        match self.collect_real(def) {
            Some(value) => value,
            None => self.fallback.collect(def),
        }
    }
}

// ---------------------------------------------------------------------
// /proc readers (all failures collapse to None → fallback)
// ---------------------------------------------------------------------

fn read_trimmed(path: &str) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

fn loadavg_field(index: usize) -> Option<f64> {
    let text = std::fs::read_to_string("/proc/loadavg").ok()?;
    text.split_whitespace().nth(index)?.parse().ok()
}

/// `(running, total)` from /proc/loadavg's fourth field (`R/T`).
fn proc_counts() -> Option<(f64, f64)> {
    let text = std::fs::read_to_string("/proc/loadavg").ok()?;
    let field = text.split_whitespace().nth(3)?;
    let (running, total) = field.split_once('/')?;
    Some((running.parse().ok()?, total.parse().ok()?))
}

fn cpu_count() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/stat").ok()?;
    let n = text
        .lines()
        .filter(|l| l.starts_with("cpu") && !l.starts_with("cpu "))
        .count();
    (n > 0).then_some(n)
}

fn stat_field(key: &str) -> Option<f64> {
    let text = std::fs::read_to_string("/proc/stat").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest.trim().parse().ok();
        }
    }
    None
}

fn meminfo_kb(key: &str) -> Option<f64> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

fn read_cpu_times() -> Option<CpuTimes> {
    let text = std::fs::read_to_string("/proc/stat").ok()?;
    let line = text.lines().find(|l| l.starts_with("cpu "))?;
    let fields: Vec<u64> = line
        .split_whitespace()
        .skip(1)
        .filter_map(|f| f.parse().ok())
        .collect();
    if fields.len() < 4 {
        return None;
    }
    Some(CpuTimes {
        user: fields[0],
        nice: fields[1],
        system: fields[2],
        idle: fields[3],
        total: fields.iter().sum(),
    })
}

fn read_net_totals() -> Option<NetTotals> {
    let text = std::fs::read_to_string("/proc/net/dev").ok()?;
    let mut totals = NetTotals::default();
    for line in text.lines().skip(2) {
        let (iface, rest) = line.split_once(':')?;
        if iface.trim() == "lo" {
            continue; // loopback traffic is not cluster traffic
        }
        let fields: Vec<u64> = rest
            .split_whitespace()
            .filter_map(|f| f.parse().ok())
            .collect();
        if fields.len() >= 10 {
            totals.bytes_in += fields[0];
            totals.pkts_in += fields[1];
            totals.bytes_out += fields[8];
            totals.pkts_out += fields[9];
        }
    }
    Some(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::builtin_metrics;

    fn def(name: &str) -> &'static MetricDefinition {
        builtin_metrics().iter().find(|d| d.name == name).unwrap()
    }

    #[test]
    fn collects_every_builtin_without_panicking() {
        let mut source = ProcSource::new(7);
        for d in builtin_metrics() {
            let value = source.collect(d);
            assert_eq!(value.metric_type(), d.ty, "{}", d.name);
        }
        // Second pass exercises the delta paths (cpu%, net rates).
        for d in builtin_metrics() {
            let _ = source.collect(d);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_values_are_plausible() {
        let mut source = ProcSource::new(7);
        let load = source.collect(def("load_one")).as_f64().unwrap();
        assert!((0.0..10_000.0).contains(&load));
        let cpus = source.collect(def("cpu_num")).as_f64().unwrap();
        assert!(cpus >= 1.0);
        let mem = source.collect(def("mem_total")).as_f64().unwrap();
        assert!(mem > 1024.0, "at least a megabyte of RAM: {mem}");
        let os = source.collect(def("os_name"));
        assert_eq!(os, MetricValue::String("Linux".into()));
        let (running, total) = proc_counts().expect("loadavg parses");
        assert!(running >= 1.0, "at least this process runs");
        assert!(total >= running);
    }

    #[test]
    fn cpu_percent_needs_two_samples() {
        let mut source = ProcSource::new(7);
        // First collection establishes the baseline (may fall back);
        // the second must be a real in-range percentage on Linux.
        let _ = source.collect(def("cpu_user"));
        let second = source.collect(def("cpu_user")).as_f64().unwrap();
        assert!((0.0..=100.0).contains(&second), "{second}");
    }

    #[test]
    fn disk_metrics_fall_back_to_simulation() {
        let mut source = ProcSource::new(7);
        let disk = source.collect(def("disk_total")).as_f64().unwrap();
        assert!((18.0..=240.0).contains(&disk), "fallback range: {disk}");
    }
}
