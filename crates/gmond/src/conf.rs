//! `gmond.conf` parsing for the standalone agent daemon.
//!
//! One directive per line, gmond 2.5-flavoured:
//!
//! ```text
//! name "meteor"              # cluster name (required)
//! owner "ops@site"
//! node_name "compute-0-0"    # defaults to the machine hostname
//!
//! # Unicast mesh: where to send metric datagrams, and where to listen.
//! udp_recv_port 8650
//! udp_send_channel 10.1.1.2:8650
//! udp_send_channel 10.1.1.3:8650
//!
//! tcp_port 8649              # the XML report port
//! host_dmax 3600
//! ```

use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmondConfError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for GmondConfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gmond.conf line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for GmondConfError {}

/// Parsed daemon options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmondConf {
    pub cluster_name: String,
    pub owner: String,
    /// This node's name; empty = use the machine hostname.
    pub node_name: String,
    /// UDP port to receive metric datagrams on.
    pub udp_recv_port: u16,
    /// Peer `host:port` strings to send datagrams to.
    pub udp_peers: Vec<String>,
    /// TCP port serving the cluster XML report.
    pub tcp_port: u16,
    /// Soft-state lifetime for silent hosts, seconds.
    pub host_dmax: u32,
}

/// Parse a complete `gmond.conf` document.
pub fn parse_gmond_conf(input: &str) -> Result<GmondConf, GmondConfError> {
    let mut conf = GmondConf {
        cluster_name: String::new(),
        owner: "unspecified".to_string(),
        node_name: String::new(),
        udp_recv_port: 8650,
        udp_peers: Vec::new(),
        tcp_port: 8649,
        host_dmax: 3600,
    };
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let err = |reason: String| GmondConfError {
            line: line_no,
            reason,
        };
        let tokens = tokenize(raw_line).map_err(&err)?;
        let Some((directive, args)) = tokens.split_first() else {
            continue;
        };
        let one = |what: &str| -> Result<String, GmondConfError> {
            match args {
                [only] => Ok(only.clone()),
                _ => Err(err(format!("{what} takes exactly one value"))),
            }
        };
        match directive.as_str() {
            "name" => conf.cluster_name = one("name")?,
            "owner" => conf.owner = one("owner")?,
            "node_name" => conf.node_name = one("node_name")?,
            "udp_recv_port" => {
                conf.udp_recv_port = one("udp_recv_port")?
                    .parse()
                    .map_err(|_| err("bad udp_recv_port".into()))?
            }
            "udp_send_channel" => {
                let peer = one("udp_send_channel")?;
                if !peer.contains(':') {
                    return Err(err(format!("udp_send_channel {peer:?} must be host:port")));
                }
                conf.udp_peers.push(peer);
            }
            "tcp_port" => {
                conf.tcp_port = one("tcp_port")?
                    .parse()
                    .map_err(|_| err("bad tcp_port".into()))?
            }
            "host_dmax" => {
                conf.host_dmax = one("host_dmax")?
                    .parse()
                    .map_err(|_| err("bad host_dmax".into()))?
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    if conf.cluster_name.is_empty() {
        return Err(GmondConfError {
            line: 0,
            reason: "missing required directive: name".into(),
        });
    }
    Ok(conf)
}

/// Same line tokenizer as gmetad.conf: words, double-quoted strings,
/// `#` comments.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None | Some('#') => break,
            Some('"') => {
                chars.next();
                let mut token = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated quoted string".into()),
                        Some('"') => break,
                        Some(c) => token.push(c),
                    }
                }
                tokens.push(token);
            }
            Some(_) => {
                let mut token = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '#' {
                        break;
                    }
                    token.push(c);
                    chars.next();
                }
                tokens.push(token);
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# two-node mesh
name "meteor"
owner "ops"
node_name "compute-0-0"
udp_recv_port 8650
udp_send_channel 10.1.1.2:8650
udp_send_channel 10.1.1.3:8650  # neighbor
tcp_port 8649
host_dmax 1800
"#;

    #[test]
    fn parses_the_sample() {
        let conf = parse_gmond_conf(SAMPLE).unwrap();
        assert_eq!(conf.cluster_name, "meteor");
        assert_eq!(conf.owner, "ops");
        assert_eq!(conf.node_name, "compute-0-0");
        assert_eq!(conf.udp_recv_port, 8650);
        assert_eq!(conf.udp_peers, vec!["10.1.1.2:8650", "10.1.1.3:8650"]);
        assert_eq!(conf.tcp_port, 8649);
        assert_eq!(conf.host_dmax, 1800);
    }

    #[test]
    fn name_is_required_everything_else_defaults() {
        let conf = parse_gmond_conf("name \"x\"\n").unwrap();
        assert_eq!(conf.udp_recv_port, 8650);
        assert_eq!(conf.tcp_port, 8649);
        assert!(conf.udp_peers.is_empty());
        assert!(parse_gmond_conf("owner \"x\"\n").is_err());
    }

    #[test]
    fn rejects_bad_directives_with_line_numbers() {
        let err = parse_gmond_conf("name \"x\"\nfrobnicate 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_gmond_conf("name \"x\"\nudp_send_channel nocolon\n").is_err());
        assert!(parse_gmond_conf("name \"x\"\ntcp_port zap\n").is_err());
        assert!(parse_gmond_conf("name \"x\"\nname \"y\" \"z\"\n").is_err());
    }
}
