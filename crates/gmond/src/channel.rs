//! The metric channel abstraction: how an agent's packets reach its
//! neighbors.
//!
//! Gmond is channel-agnostic by design — multicast where the network
//! allows it, unicast mesh where it does not. Both carry the same XDR
//! packets and both are lossy, which is why everything above them is
//! soft state.

use bytes::Bytes;

use crate::udp::UdpMesh;
use ganglia_net::McastSubscription;

/// A best-effort, lossy packet channel.
pub trait MetricChannel: Send {
    /// Send to every neighbor. Best-effort: delivery failures are the
    /// soft-state layer's problem, not the sender's.
    fn publish(&mut self, payload: Bytes);

    /// Receive the next pending packet, if any.
    fn poll(&mut self) -> Option<Bytes>;
}

impl MetricChannel for McastSubscription {
    fn publish(&mut self, payload: Bytes) {
        McastSubscription::publish(self, payload);
    }

    fn poll(&mut self) -> Option<Bytes> {
        McastSubscription::poll(self)
    }
}

impl MetricChannel for UdpMesh {
    fn publish(&mut self, payload: Bytes) {
        // UDP is fire-and-forget; socket-level errors are dropped like
        // any other lost datagram.
        let _ = UdpMesh::publish(self, &payload);
    }

    fn poll(&mut self) -> Option<Bytes> {
        UdpMesh::poll(self).ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_net::McastBus;

    #[test]
    fn mcast_subscription_implements_the_trait() {
        let bus = McastBus::new(1);
        let mut a: Box<dyn MetricChannel> = Box::new(bus.subscribe());
        let mut b: Box<dyn MetricChannel> = Box::new(bus.subscribe());
        a.publish(Bytes::from_static(b"x"));
        assert_eq!(b.poll().as_deref(), Some(b"x".as_ref()));
        assert_eq!(a.poll(), None);
    }

    #[test]
    fn udp_mesh_implements_the_trait() {
        let mut a = UdpMesh::bind("127.0.0.1:0").unwrap();
        let b = UdpMesh::bind("127.0.0.1:0").unwrap();
        a.add_peer(b.local_addr().unwrap());
        let mut a: Box<dyn MetricChannel> = Box::new(a);
        let mut b: Box<dyn MetricChannel> = Box::new(b);
        a.publish(Bytes::from_static(b"y"));
        // Non-blocking receive: spin briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if let Some(got) = b.poll() {
                assert_eq!(&got[..], b"y");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "datagram lost");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
}
