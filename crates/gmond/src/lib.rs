//! The Gmon local-area monitor.
//!
//! "The Gmon system operates at the cluster level and gathers metrics such
//! as heartbeats, hardware/operating system parameters, and user-defined
//! key-value pairs from every node. Gmon uses UDP multicast to exchange
//! these metrics within the cluster. The local-area multicast backbone
//! enables gmon agents to organize into a redundant, leaderless network
//! where nodes listen to their neighbors rather than polling them."
//! (paper §1)
//!
//! This crate implements that system:
//!
//! * [`packet`] — the XDR-style binary metric packets agents multicast;
//! * [`agent::GmondAgent`] — one per node: collects metrics on their
//!   schedules, rebroadcasts on value/time thresholds, merges neighbor
//!   packets into **redundant global cluster state**, expires silent
//!   hosts by soft state, and serves the full cluster report as XML —
//!   which is what lets a gmetad "automatically fail-over when a cluster
//!   node malfunctions" (fig 1);
//! * [`cluster::SimCluster`] — a whole simulated cluster of agents on a
//!   multicast bus, with node kill/restore for failure experiments;
//! * [`pseudo::PseudoGmond`] — the paper's own experimental workload
//!   generator (§4): "gmon emulators ... behave identically to a
//!   cluster's gmon daemons, except their metric values are chosen
//!   randomly", emitting DTD-conformant XML.

pub mod agent;
pub mod channel;
pub mod cluster;
pub mod conf;
pub mod config;
pub mod packet;
pub mod proc_source;
pub mod pseudo;
pub mod source;
pub mod udp;

pub use agent::GmondAgent;
pub use channel::MetricChannel;
pub use cluster::SimCluster;
pub use config::GmondConfig;
pub use packet::MetricPacket;
pub use proc_source::ProcSource;
pub use pseudo::PseudoGmond;
pub use source::{MetricSource, SimulatedHost};
pub use udp::UdpMesh;
