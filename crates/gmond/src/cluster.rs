//! A whole simulated cluster: agents on a multicast bus, served on the
//! simulated network.
//!
//! Every node's XML port is registered at `"{cluster}/{node}"` on the
//! [`SimNet`], so a gmetad can be configured with several redundant
//! addresses for the same cluster and fail over between them (paper
//! fig 1).

use std::sync::Arc;

use parking_lot::Mutex;

use ganglia_net::transport::Transport;
use ganglia_net::{Addr, McastBus, SimNet};

use crate::agent::GmondAgent;
use crate::config::GmondConfig;
use crate::source::SimulatedHost;

/// A simulated cluster of gmond agents.
pub struct SimCluster {
    name: String,
    config: Arc<GmondConfig>,
    bus: Arc<McastBus>,
    net: Arc<SimNet>,
    agents: Vec<Arc<Mutex<GmondAgent>>>,
    alive: Vec<bool>,
    /// Keeps XML endpoints bound for the cluster's lifetime.
    _guards: Vec<Box<dyn ganglia_net::ServerGuard>>,
    /// Shared "now" read by the XML handlers.
    clock: Arc<Mutex<u64>>,
    seed: u64,
}

impl SimCluster {
    /// Build a cluster of `node_count` agents at time `now`, with
    /// deterministic identities derived from `seed`.
    pub fn new(
        net: &Arc<SimNet>,
        config: GmondConfig,
        node_count: usize,
        seed: u64,
        now: u64,
    ) -> SimCluster {
        let name = config.cluster_name.clone();
        let config = Arc::new(config);
        let bus = McastBus::new(seed);
        let clock = Arc::new(Mutex::new(now));
        let mut agents = Vec::with_capacity(node_count);
        let mut guards = Vec::with_capacity(node_count);
        for i in 0..node_count {
            let node_name = format!("{name}-node-{i}");
            let ip = format!("10.{}.{}.{}", seed % 200, i / 250, i % 250 + 1);
            let agent = Arc::new(Mutex::new(GmondAgent::new(
                &node_name,
                ip,
                Arc::clone(&config),
                Box::new(SimulatedHost::new(
                    seed.wrapping_mul(1_000_003).wrapping_add(i as u64),
                )),
                bus.subscribe(),
                now,
            )));
            let addr = Addr::new(format!("{name}/{node_name}"));
            let handler_agent = Arc::clone(&agent);
            let handler_clock = Arc::clone(&clock);
            let guard = net
                .serve(
                    &addr,
                    Arc::new(move |_req: &str| {
                        let now = *handler_clock.lock();
                        handler_agent.lock().xml_report(now)
                    }),
                )
                .expect("cluster node addresses are unique");
            agents.push(agent);
            guards.push(guard);
        }
        SimCluster {
            name,
            config,
            bus,
            net: Arc::clone(net),
            agents,
            alive: vec![true; node_count],
            _guards: guards,
            clock,
            seed,
        }
    }

    /// The cluster's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulated-network addresses of every node's XML port, in node
    /// order — the redundant address list a gmetad data source uses.
    pub fn addrs(&self) -> Vec<Addr> {
        self.agents
            .iter()
            .map(|a| Addr::new(format!("{}/{}", self.name, a.lock().node_name())))
            .collect()
    }

    /// Number of nodes (alive or not).
    pub fn node_count(&self) -> usize {
        self.agents.len()
    }

    /// Advance the whole cluster one scheduling round at time `now`:
    /// every live agent collects/broadcasts, then everyone drains the
    /// bus and runs soft-state expiry.
    pub fn tick_all(&mut self, now: u64) {
        *self.clock.lock() = now;
        for (agent, alive) in self.agents.iter().zip(&self.alive) {
            if *alive {
                agent.lock().tick(now);
            }
        }
        for (agent, alive) in self.agents.iter().zip(&self.alive) {
            if *alive {
                let mut agent = agent.lock();
                agent.receive(now);
                agent.expire(now);
            }
        }
    }

    /// Run scheduling rounds from `from` (exclusive) to `to` (inclusive)
    /// every `interval` seconds.
    pub fn run(&mut self, from: u64, to: u64, interval: u64) {
        let mut t = from + interval;
        while t <= to {
            self.tick_all(t);
            t += interval;
        }
    }

    /// Stop-fail a node: it stops broadcasting and its XML port goes
    /// unreachable. Its neighbors keep serving its last-known state.
    pub fn kill(&mut self, index: usize) {
        self.alive[index] = false;
        self.net.set_down(&self.addrs()[index], true);
    }

    /// Restart a node at time `now` with fresh (empty) state, as a real
    /// gmond restart would; it re-learns the cluster from the bus.
    pub fn restore(&mut self, index: usize, now: u64) {
        self.alive[index] = true;
        let addr = self.addrs()[index].clone();
        self.net.set_down(&addr, false);
        let node_name = self.agents[index].lock().node_name().to_string();
        let ip = format!("10.{}.0.{}", self.seed % 200, index % 250 + 1);
        *self.agents[index].lock() = GmondAgent::new(
            node_name,
            ip,
            Arc::clone(&self.config),
            Box::new(SimulatedHost::new(
                self.seed.wrapping_mul(1_000_003).wrapping_add(index as u64),
            )),
            self.bus.subscribe(),
            now,
        );
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, index: usize) -> bool {
        self.alive[index]
    }

    /// Inject multicast packet loss (UDP gives no delivery guarantee;
    /// soft state is designed to absorb this).
    pub fn set_multicast_loss(&self, probability: f64) {
        self.bus.set_loss(probability);
    }

    /// Direct access to an agent (tests).
    pub fn agent(&self, index: usize) -> Arc<Mutex<GmondAgent>> {
        Arc::clone(&self.agents[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_net::NetError;
    use std::time::Duration;

    const T: Duration = Duration::from_millis(100);

    fn cluster(nodes: usize) -> (Arc<SimNet>, SimCluster) {
        let net = SimNet::new(1);
        let cluster = SimCluster::new(&net, GmondConfig::new("alpha"), nodes, 7, 0);
        (net, cluster)
    }

    #[test]
    fn all_nodes_converge_to_full_membership() {
        let (_net, mut cluster) = cluster(5);
        cluster.tick_all(0);
        for i in 0..5 {
            assert_eq!(cluster.agent(i).lock().known_hosts(), 5, "agent {i}");
        }
    }

    #[test]
    fn any_node_serves_the_complete_cluster_report() {
        let (net, mut cluster) = cluster(4);
        cluster.tick_all(0);
        for addr in cluster.addrs() {
            let xml = net.fetch(&addr, "", T).unwrap();
            let doc = ganglia_metrics::parse_document(&xml).unwrap();
            assert_eq!(doc.host_count(), 4, "from {addr}");
        }
    }

    #[test]
    fn killed_node_is_unreachable_but_state_survives_on_neighbors() {
        let (net, mut cluster) = cluster(3);
        cluster.run(0, 40, 20);
        cluster.kill(0);
        let addrs = cluster.addrs();
        assert_eq!(
            net.fetch(&addrs[0], "", T),
            Err(NetError::Unreachable(addrs[0].clone()))
        );
        // Failover target still reports all 3 hosts (stale entry for the
        // dead one).
        let xml = net.fetch(&addrs[1], "", T).unwrap();
        let doc = ganglia_metrics::parse_document(&xml).unwrap();
        assert_eq!(doc.host_count(), 3);
    }

    #[test]
    fn dead_host_ages_and_goes_down_in_reports() {
        let (net, mut cluster) = cluster(3);
        cluster.run(0, 40, 20);
        cluster.kill(0);
        cluster.run(40, 240, 20);
        let xml = net.fetch(&cluster.addrs()[1], "", T).unwrap();
        let doc = ganglia_metrics::parse_document(&xml).unwrap();
        let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        let dead = c.host("alpha-node-0").unwrap();
        assert!(!dead.is_up(), "tn={} tmax={}", dead.tn, dead.tmax);
        let alive = c.host("alpha-node-1").unwrap();
        assert!(alive.is_up());
        // Summary counts 1 down, 2 up.
        let summary = c.summary();
        assert_eq!(summary.hosts_up, 2);
        assert_eq!(summary.hosts_down, 1);
    }

    #[test]
    fn restored_node_relearns_cluster() {
        let (net, mut cluster) = cluster(3);
        cluster.run(0, 40, 20);
        cluster.kill(0);
        cluster.run(40, 100, 20);
        cluster.restore(0, 100);
        cluster.run(100, 200, 20);
        assert!(cluster.is_alive(0));
        let xml = net.fetch(&cluster.addrs()[0], "", T).unwrap();
        let doc = ganglia_metrics::parse_document(&xml).unwrap();
        assert_eq!(doc.host_count(), 3, "restarted node re-learned neighbors");
    }

    #[test]
    fn steady_state_traffic_is_sparse() {
        let (_net, mut cluster) = cluster(2);
        cluster.tick_all(0);
        let initial: u64 = (0..2).map(|i| cluster.agent(i).lock().packets_sent()).sum();
        assert_eq!(initial, 68, "first round broadcasts everything");
        cluster.run(0, 200, 20);
        let after: u64 = (0..2).map(|i| cluster.agent(i).lock().packets_sent()).sum();
        let per_round = (after - initial) as f64 / 10.0 / 2.0;
        // Far fewer than the full 34 metrics per node per round.
        assert!(per_round < 20.0, "per-round sends {per_round}");
    }
}
