//! Real UDP packet exchange for gmond agents.
//!
//! Gmon's native channel is IP multicast, but real deployments on
//! multicast-hostile networks run gmond in *unicast mesh* mode: every
//! agent sends its metric datagrams to an explicit peer list. This
//! module implements that mode over `std::net::UdpSocket` — one socket
//! per agent, non-blocking receive — so a cluster of
//! [`crate::GmondAgent`]s can run across real machines.
//!
//! Datagram payloads are the same XDR packets the simulated bus carries
//! ([`crate::packet::MetricPacket`]); undecodable datagrams are dropped
//! exactly as a UDP listener must.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

use bytes::Bytes;

/// Maximum datagram we accept (a metric packet is well under this).
const MAX_DATAGRAM: usize = 1500;

/// One agent's endpoint in a unicast mesh.
#[derive(Debug)]
pub struct UdpMesh {
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    /// Datagrams sent/received (traffic accounting).
    sent: u64,
    received: u64,
}

impl UdpMesh {
    /// Bind a mesh endpoint. `bind` may use port 0 for an ephemeral
    /// port; peers can be added later as the mesh assembles.
    pub fn bind(bind: impl ToSocketAddrs) -> io::Result<UdpMesh> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_nonblocking(true)?;
        Ok(UdpMesh {
            socket,
            peers: Vec::new(),
            sent: 0,
            received: 0,
        })
    }

    /// The bound local address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Add a peer to send to. Adding our own address is allowed and
    /// ignored at send time (agents apply their own packets locally).
    pub fn add_peer(&mut self, peer: SocketAddr) {
        if !self.peers.contains(&peer) {
            self.peers.push(peer);
        }
    }

    /// Current peer list.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Send one packet to every peer. Partial failure is fine — UDP
    /// gives no guarantee anyway — but local socket errors other than
    /// would-block are reported.
    pub fn publish(&mut self, payload: &Bytes) -> io::Result<usize> {
        let own = self.socket.local_addr().ok();
        let mut delivered = 0;
        for peer in &self.peers {
            if own == Some(*peer) {
                continue;
            }
            match self.socket.send_to(payload, peer) {
                Ok(_) => {
                    delivered += 1;
                    self.sent += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
        }
        Ok(delivered)
    }

    /// Receive one pending datagram, if any.
    pub fn poll(&mut self) -> io::Result<Option<Bytes>> {
        let mut buf = [0u8; MAX_DATAGRAM];
        match self.socket.recv_from(&mut buf) {
            Ok((len, _peer)) => {
                self.received += 1;
                Ok(Some(Bytes::copy_from_slice(&buf[..len])))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Drain everything pending.
    pub fn drain(&mut self) -> io::Result<Vec<Bytes>> {
        let mut out = Vec::new();
        while let Some(datagram) = self.poll()? {
            out.push(datagram);
        }
        Ok(out)
    }

    /// `(sent, received)` datagram counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.sent, self.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MetricPacket;
    use ganglia_metrics::{MetricValue, Slope};
    use std::time::{Duration, Instant};

    fn wait_for<T>(mut f: impl FnMut() -> io::Result<Option<T>>) -> Option<T> {
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if let Some(v) = f().expect("socket io") {
                return Some(v);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        None
    }

    fn mesh() -> UdpMesh {
        UdpMesh::bind("127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn datagrams_flow_between_mesh_members() {
        let mut a = mesh();
        let mut b = mesh();
        let mut c = mesh();
        let addrs = [
            a.local_addr().unwrap(),
            b.local_addr().unwrap(),
            c.local_addr().unwrap(),
        ];
        for m in [&mut a, &mut b, &mut c] {
            for addr in addrs {
                m.add_peer(addr);
            }
        }
        let payload = Bytes::from_static(b"metric");
        let delivered = a.publish(&payload).unwrap();
        assert_eq!(delivered, 2, "self excluded from the mesh send");
        assert_eq!(wait_for(|| b.poll()).as_deref(), Some(b"metric".as_ref()));
        assert_eq!(wait_for(|| c.poll()).as_deref(), Some(b"metric".as_ref()));
        assert_eq!(a.counters().0, 2);
    }

    #[test]
    fn metric_packets_survive_the_wire() {
        let mut a = mesh();
        let mut b = mesh();
        a.add_peer(b.local_addr().unwrap());
        let packet = MetricPacket {
            host: "n0".into(),
            ip: "10.0.0.1".into(),
            gmond_started: 100,
            name: "load_one".into(),
            value: MetricValue::Float(0.75),
            units: String::new(),
            slope: Slope::Both,
            tmax: 70,
            dmax: 0,
        };
        a.publish(&packet.encode()).unwrap();
        let raw = wait_for(|| b.poll()).expect("datagram arrives");
        assert_eq!(MetricPacket::decode(&raw).unwrap(), packet);
    }

    #[test]
    fn duplicate_peers_are_deduplicated() {
        let mut a = mesh();
        let peer = "127.0.0.1:9".parse().unwrap();
        a.add_peer(peer);
        a.add_peer(peer);
        assert_eq!(a.peers().len(), 1);
    }

    #[test]
    fn poll_on_quiet_socket_is_none() {
        let mut a = mesh();
        assert!(a.poll().unwrap().is_none());
        assert!(a.drain().unwrap().is_empty());
    }
}
