//! Pseudo-gmond: the paper's experimental workload generator.
//!
//! "All experiments employ gmon emulators called pseudo-gmond to generate
//! controlled Ganglia XML datasets for the monitoring tree. These agents
//! behave identically to a cluster's gmon daemons, except their metric
//! values are chosen randomly. Their XML output conforms to the Ganglia
//! DTD, and therefore requires the same processing effort by the gmeta
//! system under study." (paper §4)
//!
//! A [`PseudoGmond`] synthesizes a cluster of `H` hosts with the full
//! built-in metric set; [`PseudoGmond::advance`] rerolls the random
//! values (bounded walks, like real load curves) and re-serializes the
//! report once, so serving a poll is a plain buffer copy — deliberately
//! discounting gmon processing from the experiments, as the paper does.

use std::sync::Arc;

use parking_lot::Mutex;

use ganglia_metrics::model::{ClusterNode, GangliaDoc, HostNode, MetricEntry};
use ganglia_metrics::{builtin_metrics, codec};
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, ServerGuard, SimNet};

use crate::source::{MetricSource, SimulatedHost};

struct PseudoHost {
    name: String,
    ip: String,
    source: SimulatedHost,
}

/// A simulated cluster that exists only as generated XML.
pub struct PseudoGmond {
    cluster_name: String,
    hosts: Vec<PseudoHost>,
    doc: GangliaDoc,
    xml: String,
    last_advance: u64,
}

impl PseudoGmond {
    /// Create a pseudo-cluster of `host_count` hosts and generate its
    /// initial report at time `now`.
    pub fn new(cluster_name: impl Into<String>, host_count: usize, seed: u64, now: u64) -> Self {
        let cluster_name = cluster_name.into();
        let hosts = (0..host_count)
            .map(|i| PseudoHost {
                name: format!("{cluster_name}-{i:04}"),
                ip: format!("10.{}.{}.{}", seed % 100 + 100, i / 250, i % 250 + 1),
                source: SimulatedHost::new(seed.wrapping_mul(0x9E37).wrapping_add(i as u64)),
            })
            .collect();
        let mut this = PseudoGmond {
            cluster_name,
            hosts,
            doc: GangliaDoc::gmond(ClusterNode::with_hosts("", Vec::new())),
            xml: String::new(),
            last_advance: now,
        };
        this.advance(now);
        this
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.cluster_name
    }

    /// Number of simulated hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Reroll metric values and regenerate the cached report at `now`.
    pub fn advance(&mut self, now: u64) {
        self.last_advance = now;
        let host_nodes: Vec<HostNode> = self
            .hosts
            .iter_mut()
            .enumerate()
            .map(|(i, host)| {
                let metrics: Vec<MetricEntry> = builtin_metrics()
                    .iter()
                    .map(|def| MetricEntry {
                        name: def.name.into(),
                        value: host.source.collect(def),
                        units: def.units.into(),
                        // Spread TN values plausibly inside the collection
                        // interval, deterministic per host.
                        tn: (i as u32 * 3 + def.collect_every / 3) % def.collect_every.max(1),
                        tmax: def.tmax,
                        dmax: def.dmax,
                        slope: def.slope,
                        source: "gmond".into(),
                    })
                    .collect();
                HostNode {
                    name: host.name.as_str().into(),
                    ip: host.ip.clone(),
                    reported: Some(now),
                    tn: (i % 15) as u32,
                    tmax: 20,
                    dmax: 0,
                    location: String::new(),
                    gmond_started: now.saturating_sub(1000),
                    metrics,
                }
            })
            .collect();
        let mut cluster = ClusterNode::with_hosts(self.cluster_name.clone(), host_nodes);
        cluster.localtime = Some(now);
        cluster.owner = "pseudo".to_string();
        self.doc = GangliaDoc::gmond(cluster);
        // Render in place: the buffer keeps its allocation across
        // rounds, so steady-state advances are realloc-free.
        codec::render_document_into(&self.doc, &mut self.xml);
    }

    /// The current report as a typed document.
    pub fn doc(&self) -> &GangliaDoc {
        &self.doc
    }

    /// The current report, serialized (what a poll downloads).
    pub fn xml(&self) -> &str {
        &self.xml
    }

    /// Time of the last advance.
    pub fn last_advance(&self) -> u64 {
        self.last_advance
    }
}

/// A pseudo-cluster bound to the simulated network at `node_count`
/// redundant addresses (`cluster/cluster-node-i`), like a real cluster
/// where any node can serve the report.
pub struct ServedPseudoCluster {
    inner: Arc<Mutex<PseudoGmond>>,
    addrs: Vec<Addr>,
    _guards: Vec<Box<dyn ServerGuard>>,
}

impl ServedPseudoCluster {
    /// Serve `pseudo` at `node_count` redundant addresses on `net`.
    pub fn serve(net: &Arc<SimNet>, pseudo: PseudoGmond, node_count: usize) -> Self {
        let name = pseudo.name().to_string();
        let inner = Arc::new(Mutex::new(pseudo));
        let mut addrs = Vec::with_capacity(node_count);
        let mut guards = Vec::with_capacity(node_count);
        for i in 0..node_count {
            let addr = Addr::new(format!("{name}/{name}-node-{i}"));
            let handler_state = Arc::clone(&inner);
            let guard = net
                .serve(
                    &addr,
                    Arc::new(move |_req: &str| handler_state.lock().xml().to_string()),
                )
                .expect("pseudo cluster addresses are unique");
            addrs.push(addr);
            guards.push(guard);
        }
        ServedPseudoCluster {
            inner,
            addrs,
            _guards: guards,
        }
    }

    /// The redundant serving addresses.
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Reroll values at time `now`.
    pub fn advance(&self, now: u64) {
        self.inner.lock().advance(now);
    }

    /// Shared handle to the generator.
    pub fn pseudo(&self) -> Arc<Mutex<PseudoGmond>> {
        Arc::clone(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::{parse_document, GridItem};
    use std::time::Duration;

    #[test]
    fn generates_dtd_conformant_xml() {
        let pseudo = PseudoGmond::new("meteor", 10, 42, 100);
        let doc = parse_document(pseudo.xml()).unwrap();
        assert_eq!(doc.source, "gmond");
        assert_eq!(doc.host_count(), 10);
        let GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        assert_eq!(c.name, "meteor");
        let host = c.host("meteor-0000").unwrap();
        assert_eq!(host.metrics.len(), builtin_metrics().len());
        assert!(host.is_up());
    }

    #[test]
    fn advance_changes_values_but_not_shape() {
        let mut pseudo = PseudoGmond::new("meteor", 5, 42, 0);
        let before = pseudo.xml().to_string();
        pseudo.advance(15);
        let after = pseudo.xml().to_string();
        assert_ne!(before, after, "values must reroll");
        let a = parse_document(&before).unwrap();
        let b = parse_document(&after).unwrap();
        assert_eq!(a.host_count(), b.host_count());
    }

    #[test]
    fn same_seed_same_data() {
        let a = PseudoGmond::new("x", 8, 7, 0);
        let b = PseudoGmond::new("x", 8, 7, 0);
        assert_eq!(a.xml(), b.xml());
    }

    #[test]
    fn xml_size_scales_linearly_with_hosts() {
        let small = PseudoGmond::new("c", 10, 1, 0).xml().len();
        let large = PseudoGmond::new("c", 100, 1, 0).xml().len();
        let ratio = large as f64 / small as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn served_cluster_answers_on_all_addresses() {
        let net = SimNet::new(1);
        let served = ServedPseudoCluster::serve(&net, PseudoGmond::new("nashi", 4, 3, 0), 3);
        assert_eq!(served.addrs().len(), 3);
        let t = Duration::from_millis(100);
        let first = net.fetch(&served.addrs()[0], "", t).unwrap();
        let second = net.fetch(&served.addrs()[2], "", t).unwrap();
        assert_eq!(first, second, "any node serves the same report");
        served.advance(15);
        let third = net.fetch(&served.addrs()[1], "", t).unwrap();
        assert_ne!(first, third);
    }

    #[test]
    fn summary_of_pseudo_cluster_is_consistent() {
        let pseudo = PseudoGmond::new("meteor", 50, 42, 0);
        let GridItem::Cluster(c) = &pseudo.doc().items[0] else {
            panic!()
        };
        let summary = c.summary();
        assert_eq!(summary.hosts_total(), 50);
        // Numeric metrics summarized; strings not.
        assert!(summary.metric("load_one").is_some());
        assert!(summary.metric("os_name").is_none());
        let cpu = summary.metric("cpu_num").unwrap();
        assert_eq!(cpu.num, summary.hosts_up);
        assert!(cpu.mean().unwrap() >= 1.0 && cpu.mean().unwrap() <= 4.0);
    }
}
