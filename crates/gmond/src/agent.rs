//! One gmond agent: collect, broadcast, listen, expire, report.
//!
//! Every agent keeps **redundant global knowledge of the cluster**, "so
//! that any node can supply a complete report containing the state of
//! itself and all its neighbors" (paper §1). Metrics are rebroadcast when
//! they change by more than their value threshold or when their time
//! threshold (`TMAX`) expires; silent hosts age out by soft state.

use std::collections::HashMap;
use std::sync::Arc;

use ganglia_metrics::model::{ClusterNode, GangliaDoc, HostNode, MetricEntry};
use ganglia_metrics::{MetricValue, Slope};
use ganglia_telemetry::{Counter, Registry};

use crate::channel::MetricChannel;
use crate::config::GmondConfig;
use crate::packet::MetricPacket;
use crate::source::MetricSource;

/// Broadcast bookkeeping for one of the agent's own metrics.
#[derive(Debug, Clone, Default)]
struct SendState {
    last_collect: Option<u64>,
    last_sent: Option<u64>,
    last_sent_value: Option<MetricValue>,
}

/// What an agent knows about one metric of one host.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricState {
    pub value: MetricValue,
    pub units: String,
    pub slope: Slope,
    pub tmax: u32,
    pub dmax: u32,
    /// When the last packet for this metric arrived.
    pub last_update: u64,
}

/// What an agent knows about one host (possibly itself).
#[derive(Debug, Clone)]
pub struct HostView {
    pub ip: String,
    pub gmond_started: u64,
    /// When the last packet from this host arrived.
    pub last_heard: u64,
    pub metrics: HashMap<String, MetricState>,
}

/// A gmond daemon on one cluster node.
pub struct GmondAgent {
    node_name: String,
    ip: String,
    config: Arc<GmondConfig>,
    started: u64,
    source: Box<dyn MetricSource>,
    channel: Box<dyn MetricChannel>,
    send_state: HashMap<&'static str, SendState>,
    cluster: HashMap<String, HostView>,
    /// Packets sent over the agent's lifetime (traffic accounting).
    packets_sent: u64,
    registry: Arc<Registry>,
    packets_tx: Counter,
    packets_rx: Counter,
    decode_errors: Counter,
    /// Output-size predictor for the TCP report (per-agent, not global:
    /// cluster sizes differ wildly between agents in one process).
    render_hint: ganglia_metrics::RenderHint,
}

impl GmondAgent {
    /// Start an agent at time `now` on a metric channel (a multicast
    /// subscription or a UDP mesh endpoint).
    pub fn new(
        node_name: impl Into<String>,
        ip: impl Into<String>,
        config: Arc<GmondConfig>,
        source: Box<dyn MetricSource>,
        channel: impl MetricChannel + 'static,
        now: u64,
    ) -> Self {
        let registry = Arc::new(Registry::new());
        let packets_tx = registry.counter("packets_tx_total");
        let packets_rx = registry.counter("packets_rx_total");
        let decode_errors = registry.counter("decode_errors_total");
        GmondAgent {
            node_name: node_name.into(),
            ip: ip.into(),
            config,
            started: now,
            source,
            channel: Box::new(channel),
            send_state: HashMap::new(),
            cluster: HashMap::new(),
            packets_sent: 0,
            registry,
            packets_tx,
            packets_rx,
            decode_errors,
            render_hint: ganglia_metrics::RenderHint::new(),
        }
    }

    /// This agent's node name.
    pub fn node_name(&self) -> &str {
        &self.node_name
    }

    /// Packets this agent has multicast.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// The agent's telemetry registry (packet and decode counters).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Number of hosts currently in this agent's cluster state.
    pub fn known_hosts(&self) -> usize {
        self.cluster.len()
    }

    /// One scheduling pass at time `now`: collect due metrics and
    /// broadcast the ones whose value or time thresholds fire.
    pub fn tick(&mut self, now: u64) {
        let config = Arc::clone(&self.config);
        for def in config.registry.iter() {
            let state = self.send_state.entry(def.name).or_default();
            let due = match state.last_collect {
                None => true,
                Some(last) => now.saturating_sub(last) >= u64::from(def.collect_every),
            };
            if !due {
                continue;
            }
            state.last_collect = Some(now);
            let value = self.source.collect(def);
            let time_expired = match state.last_sent {
                None => true,
                Some(last) => now.saturating_sub(last) >= u64::from(def.tmax),
            };
            let value_changed = !def.slope.is_constant()
                && def.value_threshold > 0.0
                && state
                    .last_sent_value
                    .as_ref()
                    .and_then(|prev| prev.relative_change(&value))
                    .is_some_and(|change| change > def.value_threshold);
            if !(time_expired || value_changed) {
                continue;
            }
            let state = self.send_state.get_mut(def.name).expect("just inserted");
            state.last_sent = Some(now);
            state.last_sent_value = Some(value.clone());
            let packet = MetricPacket {
                host: self.node_name.clone(),
                ip: self.ip.clone(),
                gmond_started: self.started,
                name: def.name.to_string(),
                value,
                units: def.units.to_string(),
                slope: def.slope,
                tmax: def.tmax,
                dmax: def.dmax,
            };
            // Multicast to neighbors, and apply locally: the sender's own
            // state must include itself (a report covers "itself and all
            // its neighbors").
            self.channel.publish(packet.encode());
            self.packets_sent += 1;
            self.packets_tx.inc();
            self.apply_packet(&packet, now);
        }
    }

    /// Announce a user-defined key/value metric, `gmetric`-style: the
    /// value is multicast to the cluster exactly like a built-in metric
    /// ("user-defined key-value pairs", paper §1). `dmax` gives the
    /// soft-state lifetime after which a silent user metric disappears.
    pub fn announce_user_metric(
        &mut self,
        now: u64,
        name: impl Into<String>,
        value: MetricValue,
        units: impl Into<String>,
        tmax: u32,
        dmax: u32,
    ) {
        let packet = MetricPacket {
            host: self.node_name.clone(),
            ip: self.ip.clone(),
            gmond_started: self.started,
            name: name.into(),
            value,
            units: units.into(),
            slope: Slope::Both,
            tmax,
            dmax,
        };
        self.channel.publish(packet.encode());
        self.packets_sent += 1;
        self.packets_tx.inc();
        self.apply_packet(&packet, now);
    }

    /// Drain the multicast inbox, merging neighbor packets.
    /// Undecodable packets are dropped, as a UDP listener would, but the
    /// drop is counted so the loss is visible in self-telemetry.
    pub fn receive(&mut self, now: u64) {
        while let Some(raw) = self.channel.poll() {
            self.packets_rx.inc();
            match MetricPacket::decode(&raw) {
                Ok(packet) => self.apply_packet(&packet, now),
                Err(_) => self.decode_errors.inc(),
            }
        }
    }

    fn apply_packet(&mut self, packet: &MetricPacket, now: u64) {
        let host = self
            .cluster
            .entry(packet.host.clone())
            .or_insert_with(|| HostView {
                ip: packet.ip.clone(),
                gmond_started: packet.gmond_started,
                last_heard: now,
                metrics: HashMap::new(),
            });
        host.last_heard = now;
        // A restarted gmond announces a new start time; adopt it.
        host.gmond_started = packet.gmond_started;
        host.metrics.insert(
            packet.name.clone(),
            MetricState {
                value: packet.value.clone(),
                units: packet.units.clone(),
                slope: packet.slope,
                tmax: packet.tmax,
                dmax: packet.dmax,
                last_update: now,
            },
        );
    }

    /// Soft-state expiry: purge hosts silent past the cluster's host
    /// lifetime and metrics past their own `DMAX`.
    pub fn expire(&mut self, now: u64) {
        let host_dmax = u64::from(self.config.host_dmax);
        // The agent's own entry never expires: a live gmond always counts
        // itself (it would re-announce on its next heartbeat anyway).
        let own = &self.node_name;
        self.cluster
            .retain(|name, host| name == own || now.saturating_sub(host.last_heard) <= host_dmax);
        for host in self.cluster.values_mut() {
            host.metrics.retain(|_, m| {
                m.dmax == 0 || now.saturating_sub(m.last_update) <= u64::from(m.dmax)
            });
        }
    }

    /// The complete cluster report from this agent's state.
    pub fn report(&self, now: u64) -> GangliaDoc {
        let mut hosts: Vec<HostNode> = self
            .cluster
            .iter()
            .map(|(name, view)| {
                let mut metrics: Vec<MetricEntry> = view
                    .metrics
                    .iter()
                    .map(|(metric_name, m)| MetricEntry {
                        name: metric_name.into(),
                        value: m.value.clone(),
                        units: m.units.as_str().into(),
                        tn: now.saturating_sub(m.last_update) as u32,
                        tmax: m.tmax,
                        dmax: m.dmax,
                        slope: m.slope,
                        source: "gmond".into(),
                    })
                    .collect();
                if self.config.self_telemetry && name == &self.node_name {
                    metrics.extend(self.self_metrics());
                }
                metrics.sort_by(|a, b| a.name.cmp(&b.name));
                HostNode {
                    name: name.into(),
                    ip: view.ip.clone(),
                    reported: Some(view.last_heard),
                    tn: now.saturating_sub(view.last_heard) as u32,
                    tmax: self.config.heartbeat_interval,
                    dmax: self.config.host_dmax,
                    location: String::new(),
                    gmond_started: view.gmond_started,
                    metrics,
                }
            })
            .collect();
        hosts.sort_by(|a, b| a.name.cmp(&b.name));
        let mut cluster = ClusterNode::with_hosts(self.config.cluster_name.clone(), hosts);
        cluster.owner = self.config.owner.clone();
        cluster.latlong = self.config.latlong.clone();
        cluster.url = self.config.url.clone();
        cluster.localtime = Some(now);
        GangliaDoc::gmond(cluster)
    }

    /// The cluster report serialized to Ganglia XML (what the TCP port
    /// serves).
    pub fn xml_report(&mut self, now: u64) -> String {
        ganglia_metrics::codec::write_document_hinted(&self.report(now), &mut self.render_hint)
    }

    /// The agent's own telemetry as `self.*` metric entries ("monitor
    /// the monitor"): appended to its own host in [`report`] when
    /// `self_telemetry` is on, so the counters ride the normal
    /// monitoring channel up to gmetad and into the archives.
    fn self_metrics(&self) -> Vec<MetricEntry> {
        let metric = |metric_name: &str, value: u64, units: &str| {
            let mut entry = MetricEntry::new(metric_name, MetricValue::Double(value as f64));
            entry.units = units.into();
            entry.source = "gmond".into();
            entry.tmax = self.config.heartbeat_interval;
            entry
        };
        vec![
            metric("self.packets_tx_total", self.packets_tx.get(), "packets"),
            metric("self.packets_rx_total", self.packets_rx.get(), "packets"),
            metric(
                "self.decode_errors_total",
                self.decode_errors.get(),
                "packets",
            ),
            metric("self.known_hosts", self.cluster.len() as u64, "hosts"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SimulatedHost;
    use ganglia_net::McastBus;

    fn agent_pair() -> (GmondAgent, GmondAgent) {
        let bus = McastBus::new(1);
        let config = Arc::new(GmondConfig::new("alpha"));
        let a = GmondAgent::new(
            "node-0",
            "10.0.0.10",
            Arc::clone(&config),
            Box::new(SimulatedHost::new(10)),
            bus.subscribe(),
            0,
        );
        let b = GmondAgent::new(
            "node-1",
            "10.0.0.11",
            config,
            Box::new(SimulatedHost::new(11)),
            bus.subscribe(),
            0,
        );
        (a, b)
    }

    #[test]
    fn first_tick_broadcasts_everything() {
        let (mut a, mut b) = agent_pair();
        a.tick(0);
        assert_eq!(a.packets_sent(), 34);
        b.receive(0);
        assert_eq!(b.known_hosts(), 1);
        let doc = b.report(0);
        assert_eq!(doc.host_count(), 1);
    }

    #[test]
    fn agents_learn_each_other_without_polling() {
        let (mut a, mut b) = agent_pair();
        a.tick(0);
        b.tick(0);
        a.receive(0);
        b.receive(0);
        assert_eq!(a.known_hosts(), 2);
        assert_eq!(b.known_hosts(), 2);
        // Reports are complete from either node (redundant global state).
        assert_eq!(a.report(0).host_count(), 2);
        assert_eq!(b.report(0).host_count(), 2);
    }

    #[test]
    fn constant_metrics_are_not_rebroadcast_early() {
        let (mut a, _b) = agent_pair();
        a.tick(0);
        let initial = a.packets_sent();
        // 20 s later only short-interval metrics fire; cpu_num (tmax
        // 1200) must not.
        a.tick(20);
        let second = a.packets_sent() - initial;
        assert!(second < 34, "resent everything: {second}");
        assert!(second >= 1, "heartbeat must fire");
    }

    #[test]
    fn soft_state_expires_silent_hosts() {
        let (mut a, mut b) = agent_pair();
        a.tick(0);
        b.tick(0);
        a.receive(0);
        // node-1 goes silent; its entry survives until host_dmax.
        a.expire(3600);
        assert_eq!(a.known_hosts(), 2);
        a.expire(3601);
        assert_eq!(a.known_hosts(), 1);
        let doc = a.report(3601);
        let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        assert!(c.host("node-1").is_none());
    }

    #[test]
    fn report_tn_reflects_staleness() {
        let (mut a, mut b) = agent_pair();
        b.tick(0);
        a.receive(0);
        let doc = a.report(100);
        let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        let host = c.host("node-1").unwrap();
        assert_eq!(host.tn, 100);
        assert!(!host.is_up(), "tn=100 > 4*tmax=80 means down");
    }

    #[test]
    fn xml_report_parses_and_matches_dtd() {
        let (mut a, mut b) = agent_pair();
        a.tick(5);
        b.tick(5);
        a.receive(5);
        let xml = a.xml_report(5);
        let doc = ganglia_metrics::parse_document(&xml).unwrap();
        assert_eq!(doc.source, "gmond");
        assert_eq!(doc.host_count(), 2);
        let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        assert_eq!(c.name, "alpha");
        let host = c.host("node-0").unwrap();
        assert_eq!(host.metrics.len(), 34);
        assert!(host.metric("load_one").is_some());
        assert!(host.metric("os_name").is_some());
    }

    #[test]
    fn value_threshold_triggers_rebroadcast() {
        // A source that jumps wildly forces value-threshold sends for
        // load_one (threshold 5%).
        struct Jumpy(f64);
        impl MetricSource for Jumpy {
            fn collect(&mut self, def: &ganglia_metrics::MetricDefinition) -> MetricValue {
                self.0 += 1.0;
                MetricValue::from_f64(def.ty, self.0)
            }
        }
        let bus = McastBus::new(1);
        let config = Arc::new(GmondConfig::new("alpha"));
        let mut agent = GmondAgent::new(
            "n",
            "1.1.1.1",
            config,
            Box::new(Jumpy(0.0)),
            bus.subscribe(),
            0,
        );
        agent.tick(0);
        let initial = agent.packets_sent();
        // 20 s later: load_one collects (interval 20), value doubled, so
        // it must be resent even though tmax (70) has not expired.
        agent.tick(20);
        let resent = agent.packets_sent() - initial;
        assert!(resent > 1, "expected value-threshold rebroadcasts");
    }

    #[test]
    fn self_telemetry_publishes_packet_counters() {
        let bus = McastBus::new(1);
        let mut config = GmondConfig::new("alpha");
        config.self_telemetry = true;
        let mut a = GmondAgent::new(
            "node-0",
            "10.0.0.10",
            Arc::new(config),
            Box::new(SimulatedHost::new(10)),
            bus.subscribe(),
            0,
        );
        a.tick(0);
        let xml = a.xml_report(0);
        let doc = ganglia_metrics::parse_document(&xml).unwrap();
        let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
            panic!()
        };
        let host = c.host("node-0").unwrap();
        // 34 builtin metrics + 4 self.* entries, only on the own host.
        assert_eq!(host.metrics.len(), 38);
        let tx = host.metric("self.packets_tx_total").unwrap();
        assert_eq!(tx.value.as_f64(), Some(34.0));
        assert!(host.metric("self.known_hosts").is_some());
        // The counters never ride the multicast channel: a neighbor's
        // view of node-0 stays telemetry-free.
        let bus2 = McastBus::new(1);
        let plain = Arc::new(GmondConfig::new("alpha"));
        let mut b = GmondAgent::new(
            "node-1",
            "10.0.0.11",
            plain,
            Box::new(SimulatedHost::new(11)),
            bus2.subscribe(),
            0,
        );
        b.receive(0);
        assert_eq!(b.known_hosts(), 0);
        assert_eq!(b.registry().counter("packets_rx_total").get(), 0);
    }

    #[test]
    fn decode_errors_are_counted_not_fatal() {
        let bus = McastBus::new(1);
        let config = Arc::new(GmondConfig::new("alpha"));
        let mut a = GmondAgent::new(
            "node-0",
            "10.0.0.10",
            Arc::clone(&config),
            Box::new(SimulatedHost::new(10)),
            bus.subscribe(),
            0,
        );
        let mut b = GmondAgent::new(
            "node-1",
            "10.0.0.11",
            config,
            Box::new(SimulatedHost::new(11)),
            bus.subscribe(),
            0,
        );
        let injector = bus.subscribe();
        a.tick(0);
        // Garbage alongside the real packets: dropped, counted, not fatal.
        injector.publish(bytes::Bytes::from_static(b"\xff\xff\xffnot-xdr"));
        b.receive(0);
        assert_eq!(b.known_hosts(), 1);
        let reg = b.registry();
        assert_eq!(reg.counter("decode_errors_total").get(), 1);
        assert_eq!(reg.counter("packets_rx_total").get(), 35);
        assert_eq!(reg.counter("packets_tx_total").get(), 0);
    }

    #[test]
    fn metric_dmax_expires_user_metrics() {
        use ganglia_metrics::definition::{MetricDefinition, Synth};
        use ganglia_metrics::{MetricType, Slope};
        let bus = McastBus::new(1);
        let mut config = GmondConfig::new("alpha");
        config.registry.register(MetricDefinition {
            name: "job_temp",
            ty: MetricType::Float,
            units: "C",
            slope: Slope::Both,
            collect_every: 10,
            value_threshold: 0.0,
            tmax: 20,
            dmax: 60,
            synth: Synth::Uniform { min: 0.0, max: 1.0 },
        });
        let config = Arc::new(config);
        let mut a = GmondAgent::new(
            "n0",
            "1.1.1.1",
            Arc::clone(&config),
            Box::new(SimulatedHost::new(1)),
            bus.subscribe(),
            0,
        );
        let mut b = GmondAgent::new(
            "n1",
            "1.1.1.2",
            config,
            Box::new(SimulatedHost::new(2)),
            bus.subscribe(),
            0,
        );
        a.tick(0);
        b.receive(0);
        let has_metric = |agent: &GmondAgent, now: u64| {
            let doc = agent.report(now);
            let ganglia_metrics::GridItem::Cluster(c) = &doc.items[0] else {
                panic!()
            };
            c.host("n0").unwrap().metric("job_temp").is_some()
        };
        assert!(has_metric(&b, 0));
        // n0 keeps heartbeating but stops sending job_temp (we simulate by
        // simply expiring b's state at a time past dmax).
        b.expire(61);
        assert!(!has_metric(&b, 61));
    }
}
