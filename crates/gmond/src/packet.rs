//! XDR-style binary metric packets.
//!
//! Real gmond multicasts metrics as XDR-encoded datagrams. This module
//! reimplements that encoding: big-endian fixed-width integers and
//! length-prefixed strings padded to four-byte alignment, one metric per
//! packet, small enough that a 128-node cluster's monitoring traffic fits
//! in "less than 56Kbps ... roughly the capacity of a dialup modem"
//! (paper §3.1).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ganglia_metrics::{MetricType, MetricValue, Slope};

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketError(pub &'static str);

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad metric packet: {}", self.0)
    }
}

impl std::error::Error for PacketError {}

const MAGIC: u32 = 0x474D_4F4E; // "GMON"

/// One multicast metric announcement.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPacket {
    /// Reporting host.
    pub host: String,
    /// Host IP (string form, as the XML carries it).
    pub ip: String,
    /// When the reporting gmond started (epoch seconds).
    pub gmond_started: u64,
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: MetricValue,
    /// Units string.
    pub units: String,
    /// Expected slope.
    pub slope: Slope,
    /// Maximum seconds between broadcasts.
    pub tmax: u32,
    /// Seconds after which the metric should be deleted (0 = never).
    pub dmax: u32,
}

impl MetricPacket {
    /// Encode to the wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(96);
        buf.put_u32(MAGIC);
        put_xdr_string(&mut buf, &self.host);
        put_xdr_string(&mut buf, &self.ip);
        buf.put_u64(self.gmond_started);
        put_xdr_string(&mut buf, &self.name);
        buf.put_u32(type_code(self.value.metric_type()));
        match &self.value {
            MetricValue::String(s) => put_xdr_string(&mut buf, s),
            MetricValue::Int8(v) => buf.put_i32(i32::from(*v)),
            MetricValue::Uint8(v) => buf.put_u32(u32::from(*v)),
            MetricValue::Int16(v) => buf.put_i32(i32::from(*v)),
            MetricValue::Uint16(v) => buf.put_u32(u32::from(*v)),
            MetricValue::Int32(v) => buf.put_i32(*v),
            MetricValue::Uint32(v) => buf.put_u32(*v),
            MetricValue::Float(v) => buf.put_f32(*v),
            MetricValue::Double(v) => buf.put_f64(*v),
            MetricValue::Timestamp(v) => buf.put_u64(*v),
        }
        put_xdr_string(&mut buf, &self.units);
        buf.put_u32(slope_code(self.slope));
        buf.put_u32(self.tmax);
        buf.put_u32(self.dmax);
        buf.freeze()
    }

    /// Decode from the wire form.
    pub fn decode(mut input: &[u8]) -> Result<MetricPacket, PacketError> {
        if input.remaining() < 4 || input.get_u32() != MAGIC {
            return Err(PacketError("bad magic"));
        }
        let host = get_xdr_string(&mut input)?;
        let ip = get_xdr_string(&mut input)?;
        if input.remaining() < 8 {
            return Err(PacketError("truncated start time"));
        }
        let gmond_started = input.get_u64();
        let name = get_xdr_string(&mut input)?;
        if input.remaining() < 4 {
            return Err(PacketError("truncated type"));
        }
        let ty = type_from_code(input.get_u32()).ok_or(PacketError("unknown type code"))?;
        let value = match ty {
            MetricType::String => MetricValue::String(get_xdr_string(&mut input)?),
            MetricType::Int8 => MetricValue::Int8(get_i32(&mut input)? as i8),
            MetricType::Uint8 => MetricValue::Uint8(get_u32(&mut input)? as u8),
            MetricType::Int16 => MetricValue::Int16(get_i32(&mut input)? as i16),
            MetricType::Uint16 => MetricValue::Uint16(get_u32(&mut input)? as u16),
            MetricType::Int32 => MetricValue::Int32(get_i32(&mut input)?),
            MetricType::Uint32 => MetricValue::Uint32(get_u32(&mut input)?),
            MetricType::Float => {
                if input.remaining() < 4 {
                    return Err(PacketError("truncated float"));
                }
                MetricValue::Float(input.get_f32())
            }
            MetricType::Double => {
                if input.remaining() < 8 {
                    return Err(PacketError("truncated double"));
                }
                MetricValue::Double(input.get_f64())
            }
            MetricType::Timestamp => {
                if input.remaining() < 8 {
                    return Err(PacketError("truncated timestamp"));
                }
                MetricValue::Timestamp(input.get_u64())
            }
        };
        let units = get_xdr_string(&mut input)?;
        let slope = slope_from_code(get_u32(&mut input)?).ok_or(PacketError("unknown slope"))?;
        let tmax = get_u32(&mut input)?;
        let dmax = get_u32(&mut input)?;
        Ok(MetricPacket {
            host,
            ip,
            gmond_started,
            name,
            value,
            units,
            slope,
            tmax,
            dmax,
        })
    }
}

fn type_code(ty: MetricType) -> u32 {
    match ty {
        MetricType::String => 0,
        MetricType::Int8 => 1,
        MetricType::Uint8 => 2,
        MetricType::Int16 => 3,
        MetricType::Uint16 => 4,
        MetricType::Int32 => 5,
        MetricType::Uint32 => 6,
        MetricType::Float => 7,
        MetricType::Double => 8,
        MetricType::Timestamp => 9,
    }
}

fn type_from_code(code: u32) -> Option<MetricType> {
    Some(match code {
        0 => MetricType::String,
        1 => MetricType::Int8,
        2 => MetricType::Uint8,
        3 => MetricType::Int16,
        4 => MetricType::Uint16,
        5 => MetricType::Int32,
        6 => MetricType::Uint32,
        7 => MetricType::Float,
        8 => MetricType::Double,
        9 => MetricType::Timestamp,
        _ => return None,
    })
}

fn slope_code(slope: Slope) -> u32 {
    match slope {
        Slope::Zero => 0,
        Slope::Positive => 1,
        Slope::Negative => 2,
        Slope::Both => 3,
        Slope::Unspecified => 4,
    }
}

fn slope_from_code(code: u32) -> Option<Slope> {
    Some(match code {
        0 => Slope::Zero,
        1 => Slope::Positive,
        2 => Slope::Negative,
        3 => Slope::Both,
        4 => Slope::Unspecified,
        _ => return None,
    })
}

/// XDR string: u32 length, bytes, zero padding to a 4-byte boundary.
fn put_xdr_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
    let pad = (4 - s.len() % 4) % 4;
    buf.put_bytes(0, pad);
}

fn get_xdr_string(input: &mut &[u8]) -> Result<String, PacketError> {
    let len = get_u32(input)? as usize;
    if len > 1 << 16 {
        return Err(PacketError("implausible string length"));
    }
    let padded = len + (4 - len % 4) % 4;
    if input.remaining() < padded {
        return Err(PacketError("truncated string"));
    }
    let s = std::str::from_utf8(&input[..len])
        .map_err(|_| PacketError("non-utf8 string"))?
        .to_string();
    input.advance(padded);
    Ok(s)
}

fn get_u32(input: &mut &[u8]) -> Result<u32, PacketError> {
    if input.remaining() < 4 {
        return Err(PacketError("truncated u32"));
    }
    Ok(input.get_u32())
}

fn get_i32(input: &mut &[u8]) -> Result<i32, PacketError> {
    if input.remaining() < 4 {
        return Err(PacketError("truncated i32"));
    }
    Ok(input.get_i32())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(value: MetricValue) -> MetricPacket {
        MetricPacket {
            host: "compute-0-0".into(),
            ip: "10.1.1.1".into(),
            gmond_started: 1_058_000_000,
            name: "load_one".into(),
            value,
            units: "".into(),
            slope: Slope::Both,
            tmax: 70,
            dmax: 0,
        }
    }

    #[test]
    fn roundtrip_every_value_type() {
        let values = vec![
            MetricValue::String("Linux".into()),
            MetricValue::Int8(-5),
            MetricValue::Uint8(200),
            MetricValue::Int16(-3000),
            MetricValue::Uint16(60000),
            MetricValue::Int32(-70000),
            MetricValue::Uint32(4_000_000_000),
            MetricValue::Float(0.89),
            MetricValue::Double(17.56),
            MetricValue::Timestamp(1_058_918_400),
        ];
        for value in values {
            let packet = sample(value);
            let decoded = MetricPacket::decode(&packet.encode()).unwrap();
            assert_eq!(decoded, packet);
        }
    }

    #[test]
    fn strings_are_four_byte_aligned() {
        let mut buf = BytesMut::new();
        put_xdr_string(&mut buf, "abc");
        assert_eq!(buf.len(), 8); // 4 len + 3 bytes + 1 pad
        put_xdr_string(&mut buf, "abcd");
        assert_eq!(buf.len(), 16); // + 4 len + 4 bytes + 0 pad
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MetricPacket::decode(b"").is_err());
        assert!(MetricPacket::decode(b"\0\0\0\0junkjunk").is_err());
        let good = sample(MetricValue::Float(1.0)).encode();
        assert!(MetricPacket::decode(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn decode_rejects_unknown_codes() {
        let mut bytes = sample(MetricValue::Float(1.0)).encode().to_vec();
        // Corrupt the magic.
        bytes[0] ^= 0xFF;
        assert_eq!(MetricPacket::decode(&bytes), Err(PacketError("bad magic")));
    }

    #[test]
    fn packets_are_compact() {
        // The 56 Kbps / 128-node figure needs small packets.
        let packet = sample(MetricValue::Float(0.89));
        assert!(packet.encode().len() < 96, "{}", packet.encode().len());
    }

    #[test]
    fn empty_and_unicode_strings_roundtrip() {
        let mut packet = sample(MetricValue::String(String::new()));
        packet.units = "üs".into();
        let decoded = MetricPacket::decode(&packet.encode()).unwrap();
        assert_eq!(decoded.units, "üs");
    }
}
