//! Gmond configuration.

use ganglia_metrics::MetricRegistry;

/// Cluster-wide configuration shared by every agent.
#[derive(Debug, Clone)]
pub struct GmondConfig {
    /// Cluster name reported in the `CLUSTER` tag.
    pub cluster_name: String,
    /// Administrative owner string.
    pub owner: String,
    /// Cluster lat/long string (may be empty).
    pub latlong: String,
    /// URL with more information about the cluster.
    pub url: String,
    /// Seconds between heartbeat broadcasts.
    pub heartbeat_interval: u32,
    /// Soft-state lifetime for a silent host: hosts whose last heartbeat
    /// is older than this are purged from neighbor state.
    pub host_dmax: u32,
    /// When set, the agent publishes its own telemetry (`self.*` packet
    /// and decode counters) as extra metrics on its own host entry, so
    /// the monitoring channel carries the monitor's health too.
    pub self_telemetry: bool,
    /// The metric set agents collect.
    pub registry: MetricRegistry,
}

impl GmondConfig {
    /// Defaults matching gmond 2.5: 20 s heartbeats, hosts purged after
    /// an hour of silence.
    pub fn new(cluster_name: impl Into<String>) -> Self {
        GmondConfig {
            cluster_name: cluster_name.into(),
            owner: "unspecified".to_string(),
            latlong: String::new(),
            url: String::new(),
            heartbeat_interval: 20,
            host_dmax: 3600,
            self_telemetry: false,
            registry: MetricRegistry::with_builtins(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_gmond_25_like() {
        let config = GmondConfig::new("meteor");
        assert_eq!(config.cluster_name, "meteor");
        assert_eq!(config.heartbeat_interval, 20);
        assert_eq!(config.host_dmax, 3600);
        assert_eq!(config.registry.len(), 34);
    }
}
