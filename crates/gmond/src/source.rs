//! Where metric values come from.
//!
//! A real gmond reads `/proc`; the simulator synthesizes values from each
//! metric definition's [`Synth`] model. Per-host constants (CPU count,
//! memory size, OS release) are drawn once from the host's seed so a host
//! keeps a stable identity across collections.

use std::collections::HashMap;

use ganglia_metrics::definition::Synth;
use ganglia_metrics::{MetricDefinition, MetricValue};
use ganglia_net::rng::SplitMix64;

/// Supplies the current value of a metric on one host.
pub trait MetricSource: Send {
    /// Collect the metric's current value.
    fn collect(&mut self, def: &MetricDefinition) -> MetricValue;
}

/// Simulated host state: plausible, seeded, slowly-evolving values.
pub struct SimulatedHost {
    rng: SplitMix64,
    /// Fixed per-host constants (drawn on first collection).
    constants: HashMap<&'static str, MetricValue>,
    /// Current positions of random-walk metrics.
    walks: HashMap<&'static str, f64>,
}

impl SimulatedHost {
    /// A host with a deterministic identity derived from `seed`.
    pub fn new(seed: u64) -> Self {
        SimulatedHost {
            rng: SplitMix64::new(seed),
            constants: HashMap::new(),
            walks: HashMap::new(),
        }
    }
}

impl MetricSource for SimulatedHost {
    fn collect(&mut self, def: &MetricDefinition) -> MetricValue {
        match def.synth {
            Synth::ConstRange { min, max } => {
                let rng = &mut self.rng;
                self.constants
                    .entry(def.name)
                    .or_insert_with(|| {
                        let x = min + rng.next_f64() * (max - min);
                        MetricValue::from_f64(def.ty, x)
                    })
                    .clone()
            }
            Synth::ConstChoice(choices) => {
                let rng = &mut self.rng;
                self.constants
                    .entry(def.name)
                    .or_insert_with(|| {
                        let idx = (rng.next_u64() % choices.len() as u64) as usize;
                        match def.ty {
                            ganglia_metrics::MetricType::String => {
                                MetricValue::String(choices[idx].to_string())
                            }
                            ty => MetricValue::from_f64(
                                ty,
                                choices[idx].parse::<f64>().unwrap_or(0.0),
                            ),
                        }
                    })
                    .clone()
            }
            Synth::Uniform { min, max } => {
                let x = min + self.rng.next_f64() * (max - min);
                MetricValue::from_f64(def.ty, x)
            }
            Synth::Walk { min, max, step } => {
                let rng = &mut self.rng;
                let slot = self
                    .walks
                    .entry(def.name)
                    .or_insert_with(|| min + rng.next_f64() * (max - min));
                let delta = (rng.next_f64() * 2.0 - 1.0) * step;
                *slot = (*slot + delta).clamp(min, max);
                MetricValue::from_f64(def.ty, *slot)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::builtin_metrics;

    fn def(name: &str) -> &'static MetricDefinition {
        builtin_metrics().iter().find(|d| d.name == name).unwrap()
    }

    #[test]
    fn constants_are_stable_per_host() {
        let mut host = SimulatedHost::new(7);
        let a = host.collect(def("cpu_num"));
        let b = host.collect(def("cpu_num"));
        assert_eq!(a, b);
        let os = host.collect(def("os_name"));
        assert_eq!(os, MetricValue::String("Linux".into()));
    }

    #[test]
    fn different_hosts_differ() {
        // With many hosts, cpu_speed must not be globally constant.
        let speeds: Vec<MetricValue> = (0..32)
            .map(|i| SimulatedHost::new(i).collect(def("cpu_speed")))
            .collect();
        let first = &speeds[0];
        assert!(speeds.iter().any(|s| s != first));
    }

    #[test]
    fn walks_stay_in_bounds_and_move() {
        let mut host = SimulatedHost::new(3);
        let d = def("load_one");
        let mut values = Vec::new();
        for _ in 0..200 {
            let v = host.collect(d).as_f64().unwrap();
            assert!((0.0..=8.0).contains(&v), "{v}");
            values.push(v);
        }
        let first = values[0];
        assert!(values.iter().any(|v| (v - first).abs() > 1e-6));
    }

    #[test]
    fn same_seed_is_reproducible() {
        let mut a = SimulatedHost::new(11);
        let mut b = SimulatedHost::new(11);
        for d in builtin_metrics() {
            assert_eq!(a.collect(d), b.collect(d), "{}", d.name);
        }
    }

    #[test]
    fn uniform_draws_vary() {
        let mut host = SimulatedHost::new(5);
        let d = def("heartbeat");
        let a = host.collect(d);
        let mut changed = false;
        for _ in 0..50 {
            if host.collect(d) != a {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }
}
