//! The pseudo-gmond workload generator as a standalone daemon.
//!
//! Serves a simulated cluster's Ganglia XML over real TCP, rerolling
//! metric values on a fixed period — the tool the paper's experiments
//! used in place of real clusters (§4). Point a `gmetad` at it:
//!
//! ```sh
//! pseudo-gmond --name meteor --hosts 100 --port 8649 --period 15
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use ganglia_gmond::PseudoGmond;
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, TcpTransport};
use parking_lot::Mutex;

struct Options {
    name: String,
    hosts: usize,
    port: u16,
    period: u64,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        name: "pseudo".to_string(),
        hosts: 100,
        port: 8649,
        period: 15,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--name" => options.name = value("--name")?,
            "--hosts" => {
                options.hosts = value("--hosts")?
                    .parse()
                    .map_err(|e| format!("bad --hosts: {e}"))?
            }
            "--port" => {
                options.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?
            }
            "--period" => {
                options.period = value("--period")?
                    .parse()
                    .map_err(|e| format!("bad --period: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if options.hosts == 0 || options.period == 0 {
        return Err("--hosts and --period must be positive".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("pseudo-gmond: {e}");
            eprintln!(
                "usage: pseudo-gmond [--name N] [--hosts H] [--port P] [--period SECS] [--seed S]"
            );
            return ExitCode::from(2);
        }
    };
    let now = wall_secs();
    let pseudo = Arc::new(Mutex::new(PseudoGmond::new(
        &options.name,
        options.hosts,
        options.seed,
        now,
    )));
    let transport = TcpTransport::new();
    let handler_state = Arc::clone(&pseudo);
    let guard = match transport.serve(
        &Addr::new(format!("0.0.0.0:{}", options.port)),
        Arc::new(move |_: &str| handler_state.lock().xml().to_string()),
    ) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("pseudo-gmond: cannot bind port {}: {e}", options.port);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "pseudo-gmond: cluster {:?} with {} hosts on {} (reroll every {}s)",
        options.name,
        options.hosts,
        guard.addr(),
        options.period
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(options.period));
        pseudo.lock().advance(wall_secs());
    }
}

fn wall_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
