//! The standalone gmond agent daemon.
//!
//! Collects real host metrics from `/proc` (falling back to simulation
//! off Linux), exchanges XDR packets with its peers over a UDP unicast
//! mesh, and serves the full cluster report as Ganglia XML on its TCP
//! port — one node of a real local-area monitor.
//!
//! ```sh
//! gmond --conf /etc/ganglia/gmond.conf
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use ganglia_gmond::conf::parse_gmond_conf;
use ganglia_gmond::proc_source::ProcSource;
use ganglia_gmond::{GmondAgent, GmondConfig, UdpMesh};
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, TcpTransport};
use parking_lot::Mutex;

fn main() -> ExitCode {
    let mut conf_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conf" | "-c" => conf_path = args.next(),
            _ => {
                eprintln!("usage: gmond --conf <path>");
                return ExitCode::from(2);
            }
        }
    }
    let Some(conf_path) = conf_path else {
        eprintln!("usage: gmond --conf <path>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&conf_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("gmond: cannot read {conf_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let conf = match parse_gmond_conf(&text) {
        Ok(conf) => conf,
        Err(e) => {
            eprintln!("gmond: {e}");
            return ExitCode::FAILURE;
        }
    };

    let node_name = if conf.node_name.is_empty() {
        hostname()
    } else {
        conf.node_name.clone()
    };

    // The metric channel: a UDP mesh endpoint with the configured peers.
    let mut mesh = match UdpMesh::bind(("0.0.0.0", conf.udp_recv_port)) {
        Ok(mesh) => mesh,
        Err(e) => {
            eprintln!("gmond: cannot bind UDP port {}: {e}", conf.udp_recv_port);
            return ExitCode::FAILURE;
        }
    };
    for peer in &conf.udp_peers {
        match peer_addr(peer) {
            Some(addr) => mesh.add_peer(addr),
            None => eprintln!("gmond: ignoring unresolvable peer {peer:?}"),
        }
    }

    let mut gmond_config = GmondConfig::new(&conf.cluster_name);
    gmond_config.owner = conf.owner.clone();
    gmond_config.host_dmax = conf.host_dmax;

    let seed = node_name.bytes().fold(0u64, |h, b| {
        h.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b))
    });
    let agent = Arc::new(Mutex::new(GmondAgent::new(
        &node_name,
        "0.0.0.0",
        Arc::new(gmond_config),
        Box::new(ProcSource::new(seed)),
        mesh,
        wall_secs(),
    )));

    // TCP report port.
    let transport = TcpTransport::new();
    let agent_for_port = Arc::clone(&agent);
    let guard = match transport.serve(
        &Addr::new(format!("0.0.0.0:{}", conf.tcp_port)),
        Arc::new(move |_: &str| agent_for_port.lock().xml_report(wall_secs())),
    ) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("gmond: cannot bind TCP port {}: {e}", conf.tcp_port);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "gmond: node {node_name:?} in cluster {:?}; UDP {} ({} peer(s)), XML on {}",
        conf.cluster_name,
        conf.udp_recv_port,
        conf.udp_peers.len(),
        guard.addr(),
    );

    // The scheduling loop: collect/broadcast, drain, expire.
    loop {
        let now = wall_secs();
        {
            let mut agent = agent.lock();
            agent.tick(now);
            agent.receive(now);
            agent.expire(now);
        }
        std::thread::sleep(Duration::from_secs(5));
    }
}

fn wall_secs() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "localhost".to_string())
}

fn peer_addr(peer: &str) -> Option<std::net::SocketAddr> {
    use std::net::ToSocketAddrs;
    peer.to_socket_addrs().ok()?.next()
}
