//! A real gmond cluster over loopback UDP: agents exchange XDR packets
//! through actual sockets in unicast-mesh mode and converge to full
//! membership, exactly as they do on the simulated multicast bus.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ganglia_gmond::{GmondAgent, GmondConfig, SimulatedHost, UdpMesh};

#[test]
fn udp_mesh_cluster_converges_and_reports() {
    let config = Arc::new(GmondConfig::new("udp-alpha"));

    // Bind three endpoints, then fully mesh them.
    let mut meshes: Vec<UdpMesh> = (0..3)
        .map(|_| UdpMesh::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = meshes
        .iter()
        .map(|m| m.local_addr().expect("bound"))
        .collect();
    for mesh in &mut meshes {
        for &addr in &addrs {
            mesh.add_peer(addr);
        }
    }

    let mut agents: Vec<GmondAgent> = meshes
        .into_iter()
        .enumerate()
        .map(|(i, mesh)| {
            GmondAgent::new(
                format!("udp-node-{i}"),
                format!("127.0.0.{}", i + 1),
                Arc::clone(&config),
                Box::new(SimulatedHost::new(i as u64)),
                mesh,
                0,
            )
        })
        .collect();

    // Broadcast round, then drain until everyone has heard everyone
    // (UDP delivery is asynchronous; spin with a deadline).
    for agent in &mut agents {
        agent.tick(0);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        for agent in &mut agents {
            agent.receive(0);
        }
        if agents.iter().all(|a| a.known_hosts() == 3) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "membership did not converge: {:?}",
            agents.iter().map(|a| a.known_hosts()).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Any agent now serves the complete cluster report.
    for agent in &mut agents {
        let doc = ganglia_metrics::parse_document(&agent.xml_report(0)).expect("well-formed");
        assert_eq!(doc.host_count(), 3, "from {}", agent.node_name());
    }
}
