//! Property tests for the XDR metric packets: encode/decode is an exact
//! round trip for every representable packet, and the decoder never
//! panics on arbitrary bytes (UDP datagrams come from the network).

use ganglia_gmond::MetricPacket;
use ganglia_metrics::{MetricValue, Slope};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = MetricValue> {
    prop_oneof![
        "[ -~]{0,32}".prop_map(MetricValue::String),
        any::<i8>().prop_map(MetricValue::Int8),
        any::<u8>().prop_map(MetricValue::Uint8),
        any::<i16>().prop_map(MetricValue::Int16),
        any::<u16>().prop_map(MetricValue::Uint16),
        any::<i32>().prop_map(MetricValue::Int32),
        any::<u32>().prop_map(MetricValue::Uint32),
        // Finite floats only: NaN breaks PartialEq roundtrip comparison,
        // and gmond never broadcasts NaN samples.
        (-1.0e30f32..1.0e30).prop_map(MetricValue::Float),
        (-1.0e300f64..1.0e300).prop_map(MetricValue::Double),
        any::<u64>().prop_map(MetricValue::Timestamp),
    ]
}

fn slope_strategy() -> impl Strategy<Value = Slope> {
    prop_oneof![
        Just(Slope::Zero),
        Just(Slope::Positive),
        Just(Slope::Negative),
        Just(Slope::Both),
        Just(Slope::Unspecified),
    ]
}

fn packet_strategy() -> impl Strategy<Value = MetricPacket> {
    (
        "[a-z0-9.-]{1,24}",
        "[0-9.]{7,15}",
        any::<u64>(),
        "[a-z_][a-z0-9_]{0,24}",
        value_strategy(),
        "[ -~]{0,12}",
        slope_strategy(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(host, ip, gmond_started, name, value, units, slope, tmax, dmax)| MetricPacket {
                host,
                ip,
                gmond_started,
                name,
                value,
                units,
                slope,
                tmax,
                dmax,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrips(packet in packet_strategy()) {
        let decoded = MetricPacket::decode(&packet.encode()).unwrap();
        prop_assert_eq!(decoded, packet);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = MetricPacket::decode(&bytes);
    }

    #[test]
    fn truncations_of_valid_packets_are_rejected_not_panics(
        packet in packet_strategy(),
        cut in 0usize..64,
    ) {
        let encoded = packet.encode();
        if cut < encoded.len() {
            let truncated = &encoded[..encoded.len() - cut - 1];
            let _ = MetricPacket::decode(truncated);
        }
    }

    #[test]
    fn single_byte_corruptions_never_panic(
        packet in packet_strategy(),
        position in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = packet.encode().to_vec();
        let idx = position.index(bytes.len());
        bytes[idx] ^= flip;
        let _ = MetricPacket::decode(&bytes);
    }
}
