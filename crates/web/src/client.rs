//! The viewer's connection to a gmeta agent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ganglia_metrics::{parse_document, GangliaDoc, ParseError};
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, NetError};
use ganglia_telemetry::json::{self, JsonValue};
use ganglia_telemetry::{Registry, Snapshot, TelemetryError};

use crate::timing::ViewTiming;

/// Why a page could not be generated.
#[derive(Debug)]
pub enum ViewerError {
    /// The gmeta agent could not be reached.
    Net(NetError),
    /// The agent's response did not parse.
    Parse(ParseError),
    /// The selected cluster/host does not exist in the response.
    NotFound(String),
    /// A `?filter=telemetry` response did not parse as a TELEMETRY doc.
    Telemetry(TelemetryError),
    /// A `?filter=trace` response did not parse as JSON.
    Trace(json::JsonError),
}

impl std::fmt::Display for ViewerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewerError::Net(e) => write!(f, "gmeta unreachable: {e}"),
            ViewerError::Parse(e) => write!(f, "bad gmeta response: {e}"),
            ViewerError::NotFound(what) => write!(f, "{what} not found"),
            ViewerError::Telemetry(e) => write!(f, "bad telemetry response: {e}"),
            ViewerError::Trace(e) => write!(f, "bad trace response: {e}"),
        }
    }
}

impl std::error::Error for ViewerError {}

impl From<NetError> for ViewerError {
    fn from(e: NetError) -> Self {
        ViewerError::Net(e)
    }
}

impl From<ParseError> for ViewerError {
    fn from(e: ParseError) -> Self {
        ViewerError::Parse(e)
    }
}

/// A viewer session bound to one gmeta agent.
pub struct ViewerClient {
    transport: Arc<dyn Transport>,
    gmeta: Addr,
    timeout: Duration,
    telemetry: Option<Arc<Registry>>,
}

impl ViewerClient {
    /// Connect-info for a gmeta agent.
    pub fn new(transport: Arc<dyn Transport>, gmeta: Addr) -> ViewerClient {
        ViewerClient {
            transport,
            gmeta,
            timeout: Duration::from_secs(10),
            telemetry: None,
        }
    }

    /// Record every fetch into `registry` (`viewer.download_us` and
    /// `viewer.parse_us` histograms plus a `viewer.bytes_in_total`
    /// counter), alongside the per-view [`ViewTiming`].
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> ViewerClient {
        self.telemetry = Some(registry);
        self
    }

    /// The agent this client queries.
    pub fn gmeta(&self) -> &Addr {
        &self.gmeta
    }

    /// Issue one query and parse the response, recording download and
    /// parse time into `timing`.
    pub fn fetch_parsed(
        &self,
        query: &str,
        timing: &mut ViewTiming,
    ) -> Result<GangliaDoc, ViewerError> {
        let start = Instant::now();
        let xml = self.transport.fetch(&self.gmeta, query, self.timeout)?;
        let download = start.elapsed();
        timing.download += download;
        timing.xml_bytes += xml.len();
        let start = Instant::now();
        let doc = parse_document(&xml)?;
        let parse = start.elapsed();
        timing.parse += parse;
        if let Some(registry) = &self.telemetry {
            registry
                .histogram("viewer.download_us")
                .record_duration(download);
            registry.histogram("viewer.parse_us").record_duration(parse);
            registry
                .counter("viewer.bytes_in_total")
                .add(xml.len() as u64);
        }
        Ok(doc)
    }

    /// Fetch the agent's self-telemetry snapshot (`?filter=telemetry`)
    /// and parse the TELEMETRY document into a [`Snapshot`] plus its
    /// `SOURCE` label.
    pub fn fetch_telemetry(&self) -> Result<(Snapshot, String), ViewerError> {
        let xml = self
            .transport
            .fetch(&self.gmeta, "/?filter=telemetry", self.timeout)?;
        Snapshot::parse_xml(&xml).map_err(ViewerError::Telemetry)
    }

    /// Fetch the agent's structured trace log (`?filter=trace`): a JSON
    /// document with the current poll-round id and the bounded span-
    /// event ring (round, source, stage, timestamps, outcome per event).
    pub fn fetch_trace(&self) -> Result<JsonValue, ViewerError> {
        let raw = self
            .transport
            .fetch(&self.gmeta, "/?filter=trace", self.timeout)?;
        json::parse(&raw).map_err(ViewerError::Trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_net::transport::Transport;
    use ganglia_net::SimNet;

    #[test]
    fn fetch_parsed_times_and_parses() {
        let net = SimNet::new(1);
        let _g = net
            .serve(
                &Addr::new("gmeta"),
                Arc::new(|q: &str| {
                    format!(
                        "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmetad\">\
                         <GRID NAME=\"g\" AUTHORITY=\"\" LOCALTIME=\"0\">\
                         <!-- q={q} --></GRID></GANGLIA_XML>"
                    )
                }),
            )
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let mut timing = ViewTiming::default();
        let doc = client.fetch_parsed("/x", &mut timing).unwrap();
        assert_eq!(doc.items.len(), 1);
        assert!(timing.xml_bytes > 0);
    }

    #[test]
    fn with_telemetry_records_fetches() {
        let net = SimNet::new(1);
        let _g = net
            .serve(
                &Addr::new("gmeta"),
                Arc::new(|_: &str| {
                    "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmetad\">\
                     <GRID NAME=\"g\" AUTHORITY=\"\" LOCALTIME=\"0\">\
                     </GRID></GANGLIA_XML>"
                        .to_string()
                }),
            )
            .unwrap();
        let registry = Arc::new(ganglia_telemetry::Registry::new());
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"))
            .with_telemetry(Arc::clone(&registry));
        let mut timing = ViewTiming::default();
        client.fetch_parsed("/", &mut timing).unwrap();
        client.fetch_parsed("/g", &mut timing).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("viewer.download_us").unwrap().count, 2);
        assert_eq!(snap.histogram("viewer.parse_us").unwrap().count, 2);
        assert!(timing.xml_bytes > 0);
        assert_eq!(
            snap.counter("viewer.bytes_in_total"),
            Some(timing.xml_bytes as u64)
        );
    }

    #[test]
    fn fetch_telemetry_round_trips_a_snapshot() {
        let net = SimNet::new(1);
        let served = {
            let registry = ganglia_telemetry::Registry::new();
            registry.counter("polls_ok_total").add(7);
            registry.histogram("fetch_us").record(1500);
            registry.snapshot().to_xml("gmetad:wide")
        };
        let _g = net
            .serve(&Addr::new("gmeta"), {
                let served = served.clone();
                Arc::new(move |q: &str| {
                    assert_eq!(q, "/?filter=telemetry");
                    served.clone()
                })
            })
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let (snap, source) = client.fetch_telemetry().unwrap();
        assert_eq!(source, "gmetad:wide");
        assert_eq!(snap.counter("polls_ok_total"), Some(7));
        assert_eq!(snap.histogram("fetch_us").unwrap().count, 1);
    }

    #[test]
    fn fetch_trace_parses_the_event_log() {
        let net = SimNet::new(1);
        let _g = net
            .serve(
                &Addr::new("gmeta"),
                Arc::new(|q: &str| {
                    assert_eq!(q, "/?filter=trace");
                    "{\"source\":\"gmetad:wide\",\"round\":3,\"events\":[\
                     {\"round\":3,\"source\":\"sdsc\",\"stage\":\"poll\",\
                      \"path\":\"round.poll\",\"opened_at\":45,\"closed_at\":45,\
                      \"us\":120,\"outcome\":\"ok\"}]}"
                        .to_string()
                }),
            )
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let doc = client.fetch_trace().unwrap();
        assert_eq!(doc.get("round").and_then(|v| v.as_u64()), Some(3));
        let event = doc.get("events").and_then(|e| e.index(0)).unwrap();
        assert_eq!(event.get("stage").and_then(|v| v.as_str()), Some("poll"));
    }

    #[test]
    fn bad_trace_json_is_reported() {
        let net = SimNet::new(1);
        let _g = net
            .serve(&Addr::new("gmeta"), Arc::new(|_: &str| "{oops".to_string()))
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        assert!(matches!(client.fetch_trace(), Err(ViewerError::Trace(_))));
    }

    #[test]
    fn network_errors_are_reported() {
        let net = SimNet::new(1);
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("ghost"));
        let mut timing = ViewTiming::default();
        assert!(matches!(
            client.fetch_parsed("/", &mut timing),
            Err(ViewerError::Net(_))
        ));
    }

    #[test]
    fn bad_xml_is_a_parse_error() {
        let net = SimNet::new(1);
        let _g = net
            .serve(&Addr::new("gmeta"), Arc::new(|_: &str| "<junk".to_string()))
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let mut timing = ViewTiming::default();
        assert!(matches!(
            client.fetch_parsed("/", &mut timing),
            Err(ViewerError::Parse(_))
        ));
    }
}
