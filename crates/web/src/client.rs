//! The viewer's connection to a gmeta agent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ganglia_metrics::{parse_document, GangliaDoc, ParseError};
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, NetError};

use crate::timing::ViewTiming;

/// Why a page could not be generated.
#[derive(Debug)]
pub enum ViewerError {
    /// The gmeta agent could not be reached.
    Net(NetError),
    /// The agent's response did not parse.
    Parse(ParseError),
    /// The selected cluster/host does not exist in the response.
    NotFound(String),
}

impl std::fmt::Display for ViewerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewerError::Net(e) => write!(f, "gmeta unreachable: {e}"),
            ViewerError::Parse(e) => write!(f, "bad gmeta response: {e}"),
            ViewerError::NotFound(what) => write!(f, "{what} not found"),
        }
    }
}

impl std::error::Error for ViewerError {}

impl From<NetError> for ViewerError {
    fn from(e: NetError) -> Self {
        ViewerError::Net(e)
    }
}

impl From<ParseError> for ViewerError {
    fn from(e: ParseError) -> Self {
        ViewerError::Parse(e)
    }
}

/// A viewer session bound to one gmeta agent.
pub struct ViewerClient {
    transport: Arc<dyn Transport>,
    gmeta: Addr,
    timeout: Duration,
}

impl ViewerClient {
    /// Connect-info for a gmeta agent.
    pub fn new(transport: Arc<dyn Transport>, gmeta: Addr) -> ViewerClient {
        ViewerClient {
            transport,
            gmeta,
            timeout: Duration::from_secs(10),
        }
    }

    /// The agent this client queries.
    pub fn gmeta(&self) -> &Addr {
        &self.gmeta
    }

    /// Issue one query and parse the response, recording download and
    /// parse time into `timing`.
    pub fn fetch_parsed(
        &self,
        query: &str,
        timing: &mut ViewTiming,
    ) -> Result<GangliaDoc, ViewerError> {
        let start = Instant::now();
        let xml = self.transport.fetch(&self.gmeta, query, self.timeout)?;
        timing.download += start.elapsed();
        timing.xml_bytes += xml.len();
        let start = Instant::now();
        let doc = parse_document(&xml)?;
        timing.parse += start.elapsed();
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_net::transport::Transport;
    use ganglia_net::SimNet;

    #[test]
    fn fetch_parsed_times_and_parses() {
        let net = SimNet::new(1);
        let _g = net
            .serve(
                &Addr::new("gmeta"),
                Arc::new(|q: &str| {
                    format!(
                        "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmetad\">\
                         <GRID NAME=\"g\" AUTHORITY=\"\" LOCALTIME=\"0\">\
                         <!-- q={q} --></GRID></GANGLIA_XML>"
                    )
                }),
            )
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let mut timing = ViewTiming::default();
        let doc = client.fetch_parsed("/x", &mut timing).unwrap();
        assert_eq!(doc.items.len(), 1);
        assert!(timing.xml_bytes > 0);
    }

    #[test]
    fn network_errors_are_reported() {
        let net = SimNet::new(1);
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("ghost"));
        let mut timing = ViewTiming::default();
        assert!(matches!(
            client.fetch_parsed("/", &mut timing),
            Err(ViewerError::Net(_))
        ));
    }

    #[test]
    fn bad_xml_is_a_parse_error() {
        let net = SimNet::new(1);
        let _g = net
            .serve(&Addr::new("gmeta"), Arc::new(|_: &str| "<junk".to_string()))
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let mut timing = ViewTiming::default();
        assert!(matches!(
            client.fetch_parsed("/", &mut timing),
            Err(ViewerError::Parse(_))
        ));
    }
}
