//! A persistent viewer session over the keep-alive protocol.
//!
//! The per-view cost in Table 1 includes a TCP connect per query; a
//! viewer auto-refreshing every few seconds pays it forever. When the
//! gmeta agent's ports run through the `ganglia-serve` pooled server,
//! a viewer can instead hold one connection open and issue every
//! refresh over it, framed (`#keepalive` hello, length-prefixed
//! responses). The session's name is also its rate-limit identity, so
//! an aggressive dashboard throttles itself rather than its neighbours.

use std::time::{Duration, Instant};

use ganglia_metrics::{parse_document, GangliaDoc};
use ganglia_net::{Addr, NetError};
use ganglia_query::gql::{Delta, Mirror, Row};
use ganglia_serve::KeepAliveClient;

use crate::client::ViewerError;
use crate::timing::ViewTiming;

/// One long-lived viewer connection to a pooled gmeta port.
pub struct PersistentSession {
    client: KeepAliveClient,
    addr: Addr,
    name: String,
    timeout: Duration,
}

impl PersistentSession {
    /// Open a keep-alive session to `addr` (a `host:port` socket
    /// address), identified to the server as `name`.
    pub fn connect(addr: &Addr, name: &str, timeout: Duration) -> Result<Self, NetError> {
        let client = KeepAliveClient::connect(addr, name, timeout)?;
        Ok(PersistentSession {
            client,
            addr: addr.clone(),
            name: name.to_string(),
            timeout,
        })
    }

    /// The server address this session is connected to.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The identity the session is accounted under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue one raw query over the session.
    pub fn query(&mut self, request: &str) -> Result<String, NetError> {
        self.client.query(request)
    }

    /// Issue one query and parse the response, recording download and
    /// parse time into `timing` — [`ViewerClient::fetch_parsed`] without
    /// the per-request connection.
    ///
    /// [`ViewerClient::fetch_parsed`]: crate::client::ViewerClient::fetch_parsed
    pub fn fetch_parsed(
        &mut self,
        query: &str,
        timing: &mut ViewTiming,
    ) -> Result<GangliaDoc, ViewerError> {
        let start = Instant::now();
        let xml = self.client.query(query)?;
        timing.download += start.elapsed();
        timing.xml_bytes += xml.len();
        let start = Instant::now();
        let doc = parse_document(&xml)?;
        timing.parse += start.elapsed();
        Ok(doc)
    }

    /// Drop and re-dial the connection (after a server restart or an
    /// idle-eviction). The new session keeps the same name, so its rate
    /// budget carries over on the server.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.client = KeepAliveClient::connect(&self.addr, &self.name, self.timeout)?;
        Ok(())
    }

    /// Turn the session into a continuous-query watch: send
    /// `#subscribe <expr>`, apply the initial snapshot frame, and tail
    /// delta frames from then on. The server answers a refused
    /// subscription (bad expression, over capacity, subscriptions
    /// disabled) with an `<ERROR>` document, surfaced here as
    /// [`WatchError::Refused`].
    pub fn watch(mut self, expr: &str) -> Result<WatchSession, WatchError> {
        let initial = self.client.subscribe(expr)?;
        let delta = Delta::parse(&initial).map_err(|_| WatchError::Refused(initial))?;
        let mut mirror = Mirror::new();
        mirror.apply(&delta);
        Ok(WatchSession {
            client: self.client,
            mirror,
            last: delta,
        })
    }
}

/// Why a watch could not be established.
#[derive(Debug)]
pub enum WatchError {
    /// Transport failure.
    Net(NetError),
    /// The server refused the subscription; the payload is its
    /// `<ERROR>` document (which carries a byte-offset diagnostic for
    /// malformed expressions).
    Refused(String),
}

impl std::fmt::Display for WatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchError::Net(e) => write!(f, "{e}"),
            WatchError::Refused(doc) => write!(f, "subscription refused: {}", doc.trim()),
        }
    }
}

impl std::error::Error for WatchError {}

impl From<NetError> for WatchError {
    fn from(e: NetError) -> WatchError {
        WatchError::Net(e)
    }
}

/// A live continuous query: the server pushes one delta frame after
/// every poll round that changes the query's result, and the session
/// replays them into a [`Mirror`] that stays byte-identical to a fresh
/// server-side evaluation.
pub struct WatchSession {
    client: KeepAliveClient,
    mirror: Mirror,
    last: Delta,
}

impl WatchSession {
    /// Block until the server pushes the next delta frame, apply it,
    /// and return it. An unparseable frame (the stream is no longer a
    /// subscription) surfaces as [`WatchError::Refused`].
    pub fn next_delta(&mut self) -> Result<&Delta, WatchError> {
        let frame = self.client.next_frame()?;
        let delta = Delta::parse(&frame).map_err(|_| WatchError::Refused(frame))?;
        self.mirror.apply(&delta);
        self.last = delta;
        Ok(&self.last)
    }

    /// The delta most recently applied (initially the snapshot frame).
    pub fn last_delta(&self) -> &Delta {
        &self.last
    }

    /// The mirrored result rows, in canonical order.
    pub fn rows(&self) -> Vec<Row> {
        self.mirror.rows()
    }

    /// The revision of the last applied frame.
    pub fn revision(&self) -> u64 {
        self.mirror.revision()
    }

    /// Render the mirrored state exactly as the server would render a
    /// fresh one-shot evaluation of the same query.
    pub fn render(&self) -> String {
        self.mirror.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ganglia_net::transport::RequestHandler;
    use ganglia_serve::{FrontTier, PooledServer, ServeOptions};
    use ganglia_telemetry::Registry;

    #[test]
    fn session_refreshes_views_over_one_connection() {
        let handler: Arc<dyn RequestHandler> = Arc::new(|q: &str| {
            format!(
                "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmetad\">\
                 <GRID NAME=\"g\" AUTHORITY=\"\" LOCALTIME=\"0\">\
                 <!-- q={q} --></GRID></GANGLIA_XML>"
            )
        });
        let registry = Arc::new(Registry::new());
        let tier = FrontTier::new(
            handler,
            || 1,
            ServeOptions::default(),
            Arc::clone(&registry),
        );
        let guard = PooledServer::bind(&Addr::new("127.0.0.1:0"), tier).unwrap();
        let mut session =
            PersistentSession::connect(&guard.addr(), "dashboard", Duration::from_secs(2)).unwrap();
        let mut timing = ViewTiming::default();
        for _ in 0..3 {
            let doc = session.fetch_parsed("/g", &mut timing).unwrap();
            assert_eq!(doc.items.len(), 1);
        }
        assert!(timing.xml_bytes > 0);
        // Three identical refreshes: one render, two cache hits.
        assert_eq!(
            registry.snapshot().counter("serve.cache_hits_total"),
            Some(2)
        );
        assert!(session.reconnect().is_ok());
        assert_eq!(session.name(), "dashboard");
    }

    #[test]
    fn watch_tails_subscription_deltas() {
        use std::sync::atomic::{AtomicU64, Ordering};

        use ganglia_query::gql::GqlQuery;
        use ganglia_serve::SubscriptionRegistry;

        // A store stand-in whose single row tracks an atomic: revision N
        // reports load_one = N.
        let revision = Arc::new(AtomicU64::new(1));
        let eval_rev = Arc::clone(&revision);
        let eval = Box::new(move |_q: &GqlQuery| {
            let rev = eval_rev.load(Ordering::SeqCst);
            let row = Row {
                key: "|meteor|m0|load_one".to_string(),
                grid: String::new(),
                cluster: "meteor".to_string(),
                host: "m0".to_string(),
                metric: "load_one".to_string(),
                value: Some(rev as f64),
                raw: format!("{rev}"),
                units: String::new(),
                num: 1,
            };
            (vec![row], rev)
        });
        let registry = Arc::new(Registry::new());
        let subs = Arc::new(SubscriptionRegistry::new(eval, 4, 4, &registry));
        let handler: Arc<dyn RequestHandler> = Arc::new(|_q: &str| String::new());
        let rev_for_tier = Arc::clone(&revision);
        let tier = FrontTier::new_with_subscriptions(
            handler,
            move || rev_for_tier.load(Ordering::SeqCst),
            ServeOptions::default(),
            Arc::clone(&registry),
            Some(Arc::clone(&subs)),
        );
        let guard = PooledServer::bind(&Addr::new("127.0.0.1:0"), tier).unwrap();

        // A malformed expression is refused with an offset diagnostic.
        let session =
            PersistentSession::connect(&guard.addr(), "tail", Duration::from_secs(2)).unwrap();
        match session.watch("metric =") {
            Err(WatchError::Refused(doc)) => assert!(doc.contains("OFFSET="), "{doc}"),
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("expected refusal"),
        }

        let session =
            PersistentSession::connect(&guard.addr(), "tail", Duration::from_secs(5)).unwrap();
        let mut watch = session.watch("metric == load_one").unwrap();
        assert!(watch.last_delta().full);
        assert_eq!(watch.revision(), 1);
        assert_eq!(watch.rows().len(), 1);

        // A poll round that changes the store pushes a delta the watch
        // replays into the same state a fresh evaluation would render.
        revision.store(2, Ordering::SeqCst);
        subs.run_round();
        let delta = watch.next_delta().unwrap();
        assert!(!delta.full);
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(watch.revision(), 2);
        assert!(watch.render().contains("REVISION=\"2\""));
        assert_eq!(watch.rows()[0].value, Some(2.0));
    }
}
