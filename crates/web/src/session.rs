//! A persistent viewer session over the keep-alive protocol.
//!
//! The per-view cost in Table 1 includes a TCP connect per query; a
//! viewer auto-refreshing every few seconds pays it forever. When the
//! gmeta agent's ports run through the `ganglia-serve` pooled server,
//! a viewer can instead hold one connection open and issue every
//! refresh over it, framed (`#keepalive` hello, length-prefixed
//! responses). The session's name is also its rate-limit identity, so
//! an aggressive dashboard throttles itself rather than its neighbours.

use std::time::{Duration, Instant};

use ganglia_metrics::{parse_document, GangliaDoc};
use ganglia_net::{Addr, NetError};
use ganglia_serve::KeepAliveClient;

use crate::client::ViewerError;
use crate::timing::ViewTiming;

/// One long-lived viewer connection to a pooled gmeta port.
pub struct PersistentSession {
    client: KeepAliveClient,
    addr: Addr,
    name: String,
    timeout: Duration,
}

impl PersistentSession {
    /// Open a keep-alive session to `addr` (a `host:port` socket
    /// address), identified to the server as `name`.
    pub fn connect(addr: &Addr, name: &str, timeout: Duration) -> Result<Self, NetError> {
        let client = KeepAliveClient::connect(addr, name, timeout)?;
        Ok(PersistentSession {
            client,
            addr: addr.clone(),
            name: name.to_string(),
            timeout,
        })
    }

    /// The server address this session is connected to.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The identity the session is accounted under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue one raw query over the session.
    pub fn query(&mut self, request: &str) -> Result<String, NetError> {
        self.client.query(request)
    }

    /// Issue one query and parse the response, recording download and
    /// parse time into `timing` — [`ViewerClient::fetch_parsed`] without
    /// the per-request connection.
    ///
    /// [`ViewerClient::fetch_parsed`]: crate::client::ViewerClient::fetch_parsed
    pub fn fetch_parsed(
        &mut self,
        query: &str,
        timing: &mut ViewTiming,
    ) -> Result<GangliaDoc, ViewerError> {
        let start = Instant::now();
        let xml = self.client.query(query)?;
        timing.download += start.elapsed();
        timing.xml_bytes += xml.len();
        let start = Instant::now();
        let doc = parse_document(&xml)?;
        timing.parse += start.elapsed();
        Ok(doc)
    }

    /// Drop and re-dial the connection (after a server restart or an
    /// idle-eviction). The new session keeps the same name, so its rate
    /// budget carries over on the server.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.client = KeepAliveClient::connect(&self.addr, &self.name, self.timeout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ganglia_net::transport::RequestHandler;
    use ganglia_serve::{FrontTier, PooledServer, ServeOptions};
    use ganglia_telemetry::Registry;

    #[test]
    fn session_refreshes_views_over_one_connection() {
        let handler: Arc<dyn RequestHandler> = Arc::new(|q: &str| {
            format!(
                "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmetad\">\
                 <GRID NAME=\"g\" AUTHORITY=\"\" LOCALTIME=\"0\">\
                 <!-- q={q} --></GRID></GANGLIA_XML>"
            )
        });
        let registry = Arc::new(Registry::new());
        let tier = FrontTier::new(
            handler,
            || 1,
            ServeOptions::default(),
            Arc::clone(&registry),
        );
        let guard = PooledServer::bind(&Addr::new("127.0.0.1:0"), tier).unwrap();
        let mut session =
            PersistentSession::connect(&guard.addr(), "dashboard", Duration::from_secs(2)).unwrap();
        let mut timing = ViewTiming::default();
        for _ in 0..3 {
            let doc = session.fetch_parsed("/g", &mut timing).unwrap();
            assert_eq!(doc.items.len(), 1);
        }
        assert!(timing.xml_bytes > 0);
        // Three identical refreshes: one render, two cache hits.
        assert_eq!(
            registry.snapshot().counter("serve.cache_hits_total"),
            Some(2)
        );
        assert!(session.reconnect().is_ok());
        assert_eq!(session.name(), "dashboard");
    }
}
