//! The web-frontend viewer.
//!
//! "The most common method of viewing the monitor tree is with Ganglia's
//! web frontend. This and other viewers request raw XML from a gmeta
//! agent and parse it for display. The processing required to view the
//! tree is therefore proportional to the size of the XML returned by the
//! monitor." (paper §3.3)
//!
//! This crate reimplements that client — the system under measurement in
//! the paper's Table 1. It builds the frontend's three central views:
//!
//! * **meta view** — summarizes all monitored clusters;
//! * **cluster view** — one cluster at full resolution;
//! * **host view** — everything known about a single host;
//!
//! under both designs:
//!
//! * [`frontend::OneLevelFrontend`] downloads the *entire tree* for every
//!   view and does its own summarization/filtering client-side, exactly
//!   like the PHP frontend against gmetad 2.5.1 ("the 1-level viewer must
//!   parse and discard much of the data it receives", §4.3);
//! * [`frontend::NLevelFrontend`] issues targeted path queries and
//!   summary filters against the query engine.
//!
//! Every view returns a [`timing::ViewTiming`] separating download,
//! parse, and view-construction time, mirroring the paper's
//! `gettimeofday()` instrumentation points (§4.1).

pub mod client;
pub mod frontend;
pub mod history;
pub mod render;
pub mod session;
pub mod sparkline;
pub mod timing;
pub mod views;

pub use client::ViewerClient;
pub use frontend::{Frontend, NLevelFrontend, OneLevelFrontend};
pub use session::{PersistentSession, WatchError, WatchSession};
pub use timing::ViewTiming;
pub use views::{ClusterView, HostRow, HostView, MetaRow, MetaView, MetricRow, SourceHealth};
