//! ASCII sparklines over archived metric history.
//!
//! The PHP frontend renders rrdtool graphs; our stand-in renders the
//! same round-robin series as unicode block sparklines, with unknown
//! intervals (downtime "zero records") marked distinctly so forensic
//! gaps stay visible.

use ganglia_rrd::Series;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Rendered for unknown (NaN) samples.
const UNKNOWN: char = '·';

/// Render a series as one sparkline row, scaled to its own min..max.
pub fn sparkline(series: &Series) -> String {
    let known: Vec<f64> = series
        .values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if known.is_empty() {
        return UNKNOWN.to_string().repeat(series.values.len());
    }
    let min = known.iter().copied().fold(f64::INFINITY, f64::min);
    let max = known.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    series
        .values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                UNKNOWN
            } else {
                let t = ((v - min) / span).clamp(0.0, 1.0);
                BARS[((t * (BARS.len() - 1) as f64).round()) as usize]
            }
        })
        .collect()
}

/// Render a labelled history block: sparkline plus min/mean/max and the
/// covered time range.
pub fn render_history(metric: &str, series: &Series) -> String {
    let known: Vec<f64> = series
        .values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    let (min, max) = known
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let mean = series.mean();
    let end = series.start + series.step * series.values.len().saturating_sub(1) as u64;
    let unknown = series.values.len() - known.len();
    format!(
        "{metric:<16} [{}] t={}..{} step={}s min={} mean={} max={} unknown={}\n",
        sparkline(series),
        series.start,
        end,
        series.step,
        fmt(min),
        mean.map_or("-".to_string(), fmt),
        fmt(max),
        unknown,
    )
}

fn fmt(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<f64>) -> Series {
        Series {
            start: 15,
            step: 15,
            values,
        }
    }

    #[test]
    fn scales_to_range() {
        let s = sparkline(&series(vec![0.0, 0.5, 1.0]));
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn unknowns_are_marked() {
        let s = sparkline(&series(vec![1.0, f64::NAN, 2.0]));
        assert_eq!(s.chars().nth(1), Some('·'));
    }

    #[test]
    fn all_unknown_is_all_dots() {
        let s = sparkline(&series(vec![f64::NAN, f64::NAN]));
        assert_eq!(s, "··");
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = sparkline(&series(vec![5.0, 5.0, 5.0]));
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn history_block_mentions_everything() {
        let text = render_history("load_one", &series(vec![1.0, f64::NAN, 3.0]));
        assert!(text.contains("load_one"));
        assert!(text.contains("min=1.00"));
        assert!(text.contains("max=3.00"));
        assert!(text.contains("mean=2.00"));
        assert!(text.contains("unknown=1"));
        assert!(text.contains("t=15..45"));
    }
}
