//! Per-view timing, mirroring the paper's instrumentation.
//!
//! "Timings are taken with gettimeofday() calls inserted just before the
//! socket connection to the gmeta agent and after the completion of the
//! XML parsing." (paper §4.1)

use std::time::Duration;

/// Where a view's wall-clock time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewTiming {
    /// Socket exchange with the gmeta agent.
    pub download: Duration,
    /// XML parsing.
    pub parse: Duration,
    /// View-model construction from the parsed document.
    pub build: Duration,
    /// Bytes of XML downloaded.
    pub xml_bytes: usize,
}

impl ViewTiming {
    /// Download + parse, the quantity Table 1 reports.
    pub fn download_and_parse(&self) -> Duration {
        self.download + self.parse
    }

    /// Everything.
    pub fn total(&self) -> Duration {
        self.download + self.parse + self.build
    }

    /// Accumulate another timing (averaging helpers in experiments).
    pub fn add(&mut self, other: &ViewTiming) {
        self.download += other.download;
        self.parse += other.parse;
        self.build += other.build;
        self.xml_bytes += other.xml_bytes;
    }

    /// Divide by a sample count.
    pub fn div(&self, n: u32) -> ViewTiming {
        ViewTiming {
            download: self.download / n,
            parse: self.parse / n,
            build: self.build / n,
            xml_bytes: self.xml_bytes / n as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = ViewTiming {
            download: Duration::from_millis(10),
            parse: Duration::from_millis(20),
            build: Duration::from_millis(5),
            xml_bytes: 1000,
        };
        assert_eq!(a.download_and_parse(), Duration::from_millis(30));
        assert_eq!(a.total(), Duration::from_millis(35));
        let mut sum = ViewTiming::default();
        sum.add(&a);
        sum.add(&a);
        let avg = sum.div(2);
        assert_eq!(avg, a);
    }
}
