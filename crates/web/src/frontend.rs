//! The two frontend implementations Table 1 compares.

use std::time::Instant;

use crate::client::{ViewerClient, ViewerError};
use crate::timing::ViewTiming;
use crate::views::{find_cluster, top_level_items, ClusterView, HostView, MetaView};

/// A frontend builds the three central views, reporting where the time
/// went.
pub trait Frontend {
    /// Summary of all monitored clusters.
    fn meta_view(&self) -> Result<(MetaView, ViewTiming), ViewerError>;
    /// One cluster at full resolution.
    fn cluster_view(&self, cluster: &str) -> Result<(ClusterView, ViewTiming), ViewerError>;
    /// All information about a single host.
    fn host_view(&self, cluster: &str, host: &str) -> Result<(HostView, ViewTiming), ViewerError>;
}

/// The 2.5.1-era frontend: downloads the whole tree for every page and
/// filters client-side.
pub struct OneLevelFrontend {
    client: ViewerClient,
}

impl OneLevelFrontend {
    /// Point the frontend at a gmeta agent.
    pub fn new(client: ViewerClient) -> Self {
        OneLevelFrontend { client }
    }
}

impl Frontend for OneLevelFrontend {
    fn meta_view(&self) -> Result<(MetaView, ViewTiming), ViewerError> {
        let mut timing = ViewTiming::default();
        let doc = self.client.fetch_parsed("/", &mut timing)?;
        let start = Instant::now();
        // Client-side summarization of the entire tree (§4.3).
        let view = MetaView::from_full_tree(&doc);
        timing.build += start.elapsed();
        Ok((view, timing))
    }

    fn cluster_view(&self, cluster: &str) -> Result<(ClusterView, ViewTiming), ViewerError> {
        let mut timing = ViewTiming::default();
        let doc = self.client.fetch_parsed("/", &mut timing)?;
        let start = Instant::now();
        // "The 1-level viewer must parse and discard much of the data it
        // receives" — everything but the selected cluster.
        let node = find_cluster(top_level_items(&doc), cluster)
            .ok_or_else(|| ViewerError::NotFound(format!("cluster {cluster}")))?;
        let view = ClusterView::from_cluster(node);
        timing.build += start.elapsed();
        Ok((view, timing))
    }

    fn host_view(&self, cluster: &str, host: &str) -> Result<(HostView, ViewTiming), ViewerError> {
        let mut timing = ViewTiming::default();
        let doc = self.client.fetch_parsed("/", &mut timing)?;
        let start = Instant::now();
        let node = find_cluster(top_level_items(&doc), cluster)
            .ok_or_else(|| ViewerError::NotFound(format!("cluster {cluster}")))?;
        let host_node = node
            .host(host)
            .ok_or_else(|| ViewerError::NotFound(format!("host {host}")))?;
        let view = HostView::from_host(cluster, host_node);
        timing.build += start.elapsed();
        Ok((view, timing))
    }
}

/// The 2.5.4-era frontend: targeted path queries against the N-level
/// query engine.
pub struct NLevelFrontend {
    client: ViewerClient,
}

impl NLevelFrontend {
    /// Point the frontend at a gmeta agent.
    pub fn new(client: ViewerClient) -> Self {
        NLevelFrontend { client }
    }
}

impl Frontend for NLevelFrontend {
    fn meta_view(&self) -> Result<(MetaView, ViewTiming), ViewerError> {
        let mut timing = ViewTiming::default();
        // Summaries come straight from the daemon: O(C·m) bytes.
        let doc = self.client.fetch_parsed("/?filter=summary", &mut timing)?;
        let start = Instant::now();
        let view = MetaView::from_doc(&doc);
        timing.build += start.elapsed();
        Ok((view, timing))
    }

    fn cluster_view(&self, cluster: &str) -> Result<(ClusterView, ViewTiming), ViewerError> {
        let mut timing = ViewTiming::default();
        let doc = self
            .client
            .fetch_parsed(&format!("/{cluster}"), &mut timing)?;
        let start = Instant::now();
        let node = find_cluster(top_level_items(&doc), cluster)
            .ok_or_else(|| ViewerError::NotFound(format!("cluster {cluster}")))?;
        let view = ClusterView::from_cluster(node);
        timing.build += start.elapsed();
        Ok((view, timing))
    }

    fn host_view(&self, cluster: &str, host: &str) -> Result<(HostView, ViewTiming), ViewerError> {
        let mut timing = ViewTiming::default();
        let doc = self
            .client
            .fetch_parsed(&format!("/{cluster}/{host}"), &mut timing)?;
        let start = Instant::now();
        let node = find_cluster(top_level_items(&doc), cluster)
            .ok_or_else(|| ViewerError::NotFound(format!("cluster {cluster}")))?;
        let host_node = node
            .host(host)
            .ok_or_else(|| ViewerError::NotFound(format!("host {host}")))?;
        let view = HostView::from_host(cluster, host_node);
        timing.build += start.elapsed();
        Ok((view, timing))
    }
}

// Frontends are exercised end-to-end (against a live gmetad) in the
// crate's integration tests, where a real daemon is available.
#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_net::transport::Transport;
    use ganglia_net::{Addr, SimNet};
    use std::sync::{Arc, Mutex};

    const CANNED: &str = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmetad">
       <GRID NAME="sdsc" AUTHORITY="http://sdsc/" LOCALTIME="5">
         <CLUSTER NAME="meteor" LOCALTIME="5">
           <HOST NAME="n0" IP="1.1.1.1" REPORTED="5" TN="1" TMAX="20" DMAX="0">
             <METRIC NAME="load_one" VAL="0.5" TYPE="float" SLOPE="both"/>
           </HOST>
         </CLUSTER>
       </GRID></GANGLIA_XML>"#;

    #[test]
    fn frontends_issue_the_expected_queries() {
        let net = SimNet::new(1);
        let queries = Arc::new(Mutex::new(Vec::new()));
        let queries_for_handler = Arc::clone(&queries);
        let _guard = net
            .serve(
                &Addr::new("gmeta"),
                Arc::new(move |q: &str| {
                    queries_for_handler
                        .lock()
                        .expect("not poisoned")
                        .push(q.to_string());
                    CANNED.to_string()
                }),
            )
            .unwrap();
        let make_client = || ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));

        let one = OneLevelFrontend::new(make_client());
        let (meta, timing) = one.meta_view().unwrap();
        assert_eq!(meta.rows.len(), 1);
        assert!(timing.xml_bytes > 0);
        one.cluster_view("meteor").unwrap();
        one.host_view("meteor", "n0").unwrap();

        let n = NLevelFrontend::new(make_client());
        n.meta_view().unwrap();
        let (cluster, _) = n.cluster_view("meteor").unwrap();
        assert_eq!(cluster.rows.len(), 1);
        let (host, _) = n.host_view("meteor", "n0").unwrap();
        assert_eq!(host.name, "n0");

        let seen = queries.lock().expect("not poisoned").clone();
        assert_eq!(
            seen,
            vec![
                "/",
                "/",
                "/", // 1-level: always the full tree
                "/?filter=summary",
                "/meteor",
                "/meteor/n0",
            ]
        );
    }

    #[test]
    fn missing_cluster_is_not_found() {
        let net = SimNet::new(1);
        let _guard = net
            .serve(
                &Addr::new("gmeta"),
                Arc::new(|_: &str| {
                    "<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmetad\">\
                     <GRID NAME=\"sdsc\" AUTHORITY=\"\" LOCALTIME=\"0\"/></GANGLIA_XML>"
                        .to_string()
                }),
            )
            .unwrap();
        let client = ViewerClient::new(Arc::new(Arc::clone(&net)), Addr::new("gmeta"));
        let frontend = NLevelFrontend::new(client);
        assert!(matches!(
            frontend.cluster_view("ghost"),
            Err(ViewerError::NotFound(_))
        ));
    }
}
