//! View models: what each web page displays.

use std::fmt;

use ganglia_metrics::model::{
    ClusterBody, ClusterNode, GangliaDoc, GridBody, GridItem, HostNode, SummaryBody,
};

/// Health of one monitored source, derived client-side from its summary
/// numbers. A gmetad whose source went past the down threshold rewrites
/// its summary to `hosts_up = 0`, so the viewer needs no extra
/// protocol: all-up is [`SourceHealth::Up`], all-down is
/// [`SourceHealth::Down`], anything between is
/// [`SourceHealth::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceHealth {
    /// Every known host reporting.
    Up,
    /// Some hosts down (or the source is partially reachable).
    Degraded,
    /// No hosts reporting — the source is down or unreachable.
    Down,
}

impl SourceHealth {
    /// Classify from summary host counts.
    pub fn from_counts(hosts_up: u32, hosts_down: u32) -> SourceHealth {
        if hosts_up == 0 && hosts_down > 0 {
            SourceHealth::Down
        } else if hosts_down > 0 {
            SourceHealth::Degraded
        } else {
            SourceHealth::Up
        }
    }
}

impl fmt::Display for SourceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write!`) so table column widths apply.
        f.pad(match self {
            SourceHealth::Up => "up",
            SourceHealth::Degraded => "degraded",
            SourceHealth::Down => "DOWN",
        })
    }
}

/// One row of the meta view: a cluster or remote grid in summary form.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaRow {
    pub name: String,
    /// `true` for remote grids (one row covers many clusters).
    pub is_grid: bool,
    pub hosts_up: u32,
    pub hosts_down: u32,
    /// Health classification derived from the host counts.
    pub health: SourceHealth,
    /// Total CPUs (sum of `cpu_num`).
    pub cpus: f64,
    /// One-minute load, summed over hosts.
    pub load_one_sum: f64,
    /// Mean one-minute load.
    pub load_one_mean: Option<f64>,
    /// Where a higher-resolution view lives (grids only).
    pub authority: String,
}

impl MetaRow {
    fn from_summary(name: &str, is_grid: bool, authority: &str, summary: &SummaryBody) -> MetaRow {
        let load = summary.metric("load_one");
        MetaRow {
            name: name.to_string(),
            is_grid,
            hosts_up: summary.hosts_up,
            hosts_down: summary.hosts_down,
            health: SourceHealth::from_counts(summary.hosts_up, summary.hosts_down),
            cpus: summary.metric("cpu_num").map_or(0.0, |m| m.sum),
            load_one_sum: load.map_or(0.0, |m| m.sum),
            load_one_mean: load.and_then(|m| m.mean()),
            authority: authority.to_string(),
        }
    }
}

/// The meta view: "summarizes all monitored clusters" (paper §4.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetaView {
    pub rows: Vec<MetaRow>,
}

impl MetaView {
    /// Build from a response whose sources are already in summary form
    /// (the N-level viewer path), or from anything else by summarizing
    /// client-side (the 1-level viewer path uses
    /// [`MetaView::from_full_tree`]).
    pub fn from_doc(doc: &GangliaDoc) -> MetaView {
        let mut view = MetaView::default();
        for item in top_level_items(doc) {
            view.push_item(item);
        }
        view.rows.sort_by(|a, b| a.name.cmp(&b.name));
        view
    }

    /// Client-side summarization of a full tree — what the 1-level
    /// frontend must do ("generates its own summaries for the meta
    /// view", §4.3).
    pub fn from_full_tree(doc: &GangliaDoc) -> MetaView {
        // Identical walk: `GridItem::summary()` reduces full detail when
        // present. The cost difference is in the size of `doc`.
        MetaView::from_doc(doc)
    }

    fn push_item(&mut self, item: &GridItem) {
        match item {
            GridItem::Cluster(c) => {
                let summary = c.summary();
                self.rows
                    .push(MetaRow::from_summary(&c.name, false, &c.url, &summary));
            }
            GridItem::Grid(g) => {
                let summary = g.summary();
                self.rows
                    .push(MetaRow::from_summary(&g.name, true, &g.authority, &summary));
            }
        }
    }

    /// Whole-page totals.
    pub fn totals(&self) -> (u32, u32, f64) {
        let up = self.rows.iter().map(|r| r.hosts_up).sum();
        let down = self.rows.iter().map(|r| r.hosts_down).sum();
        let cpus = self.rows.iter().map(|r| r.cpus).sum();
        (up, down, cpus)
    }
}

/// One row of the cluster view.
#[derive(Debug, Clone, PartialEq)]
pub struct HostRow {
    pub name: String,
    pub ip: String,
    pub up: bool,
    pub load_one: Option<f64>,
    pub cpu_num: Option<f64>,
    /// Heartbeat age in seconds.
    pub tn: u32,
}

/// The cluster view: "describes one cluster at full-resolution" (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView {
    pub name: String,
    pub rows: Vec<HostRow>,
    pub hosts_up: u32,
    pub hosts_down: u32,
}

impl ClusterView {
    /// Build from a cluster node at full resolution.
    pub fn from_cluster(cluster: &ClusterNode) -> ClusterView {
        let mut rows = Vec::new();
        let mut up = 0;
        let mut down = 0;
        if let ClusterBody::Hosts(hosts) = &cluster.body {
            for host in hosts {
                if host.is_up() {
                    up += 1;
                } else {
                    down += 1;
                }
                rows.push(HostRow {
                    name: host.name.to_string(),
                    ip: host.ip.clone(),
                    up: host.is_up(),
                    load_one: host.metric("load_one").and_then(|m| m.value.as_f64()),
                    cpu_num: host.metric("cpu_num").and_then(|m| m.value.as_f64()),
                    tn: host.tn,
                });
            }
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        ClusterView {
            name: cluster.name.clone(),
            rows,
            hosts_up: up,
            hosts_down: down,
        }
    }
}

/// One metric on the host view.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    pub name: String,
    pub value: String,
    pub units: String,
    pub type_name: String,
}

/// The host view: "all information known about a single host" (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct HostView {
    pub cluster: String,
    pub name: String,
    pub ip: String,
    pub up: bool,
    pub metrics: Vec<MetricRow>,
}

impl HostView {
    /// Build from a host node (with its owning cluster's name).
    pub fn from_host(cluster: &str, host: &HostNode) -> HostView {
        let mut metrics: Vec<MetricRow> = host
            .metrics
            .iter()
            .map(|m| MetricRow {
                name: m.name.to_string(),
                value: m.value.to_string(),
                units: m.units.to_string(),
                type_name: m.value.metric_type().name().to_string(),
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        HostView {
            cluster: cluster.to_string(),
            name: host.name.to_string(),
            ip: host.ip.clone(),
            up: host.is_up(),
            metrics,
        }
    }
}

/// The items directly under the response's self grid (or document root
/// for gmond responses).
pub fn top_level_items(doc: &GangliaDoc) -> &[GridItem] {
    match doc.items.as_slice() {
        // A gmetad response wraps everything in its own GRID.
        [GridItem::Grid(grid)] => match &grid.body {
            GridBody::Items(items) => items,
            GridBody::Summary(_) => &[],
        },
        items => items,
    }
}

/// Find a cluster by name anywhere in the response (descends nested
/// grids — needed for 1-level full-tree responses).
pub fn find_cluster<'a>(items: &'a [GridItem], name: &str) -> Option<&'a ClusterNode> {
    for item in items {
        match item {
            GridItem::Cluster(c) if c.name == name => return Some(c),
            GridItem::Cluster(_) => {}
            GridItem::Grid(g) => {
                if let GridBody::Items(inner) = &g.body {
                    if let Some(found) = find_cluster(inner, name) {
                        return Some(found);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::model::{GridNode, MetricEntry};
    use ganglia_metrics::MetricValue;

    fn cluster(name: &str, hosts: usize) -> ClusterNode {
        let hosts: Vec<HostNode> = (0..hosts)
            .map(|i| {
                let mut h = HostNode::new(format!("{name}-{i}"), format!("10.0.0.{i}"));
                h.metrics
                    .push(MetricEntry::new("load_one", MetricValue::Float(0.5)));
                h.metrics
                    .push(MetricEntry::new("cpu_num", MetricValue::Uint16(2)));
                h
            })
            .collect();
        ClusterNode::with_hosts(name, hosts)
    }

    fn doc_with(items: Vec<GridItem>) -> GangliaDoc {
        let mut grid = GridNode::with_items("sdsc", items);
        grid.authority = "http://sdsc/".into();
        GangliaDoc {
            version: "2.5.4".into(),
            source: "gmetad".into(),
            items: vec![GridItem::Grid(grid)],
        }
    }

    #[test]
    fn meta_view_rows_and_totals() {
        let doc = doc_with(vec![
            GridItem::Cluster(cluster("meteor", 4)),
            GridItem::Cluster(cluster("nashi", 2)),
        ]);
        let view = MetaView::from_doc(&doc);
        assert_eq!(view.rows.len(), 2);
        assert_eq!(view.rows[0].name, "meteor");
        assert_eq!(view.rows[0].hosts_up, 4);
        assert_eq!(view.rows[0].cpus, 8.0);
        assert_eq!(view.rows[0].load_one_mean, Some(0.5));
        let (up, down, cpus) = view.totals();
        assert_eq!((up, down), (6, 0));
        assert_eq!(cpus, 12.0);
    }

    #[test]
    fn meta_view_includes_grid_summaries() {
        let mut remote = GridNode::with_items("attic", vec![GridItem::Cluster(cluster("x", 3))]);
        remote.authority = "http://attic/".into();
        let doc = doc_with(vec![GridItem::Grid(remote)]);
        let view = MetaView::from_doc(&doc);
        assert_eq!(view.rows.len(), 1);
        assert!(view.rows[0].is_grid);
        assert_eq!(view.rows[0].hosts_up, 3);
        assert_eq!(view.rows[0].authority, "http://attic/");
    }

    #[test]
    fn source_health_classifies_from_counts() {
        assert_eq!(SourceHealth::from_counts(8, 0), SourceHealth::Up);
        assert_eq!(SourceHealth::from_counts(5, 3), SourceHealth::Degraded);
        assert_eq!(SourceHealth::from_counts(0, 8), SourceHealth::Down);
        // An empty source has nothing down, so it is not an outage.
        assert_eq!(SourceHealth::from_counts(0, 0), SourceHealth::Up);
        assert_eq!(SourceHealth::Down.to_string(), "DOWN");
    }

    #[test]
    fn meta_rows_carry_health() {
        let doc = doc_with(vec![GridItem::Cluster(cluster("meteor", 4))]);
        let view = MetaView::from_doc(&doc);
        assert_eq!(view.rows[0].health, SourceHealth::Up);
        // A down source arrives as a summary with hosts_up=0.
        let summary = SummaryBody {
            hosts_up: 0,
            hosts_down: 4,
            metrics: vec![],
        };
        let row = MetaRow::from_summary("meteor", false, "", &summary);
        assert_eq!(row.health, SourceHealth::Down);
    }

    #[test]
    fn cluster_view_full_resolution() {
        let mut c = cluster("meteor", 3);
        if let ClusterBody::Hosts(hosts) = &mut c.body {
            std::sync::Arc::make_mut(&mut hosts[2]).tn = 9999; // down
        }
        let view = ClusterView::from_cluster(&c);
        assert_eq!(view.rows.len(), 3);
        assert_eq!(view.hosts_up, 2);
        assert_eq!(view.hosts_down, 1);
        assert!(!view.rows[2].up);
        assert_eq!(view.rows[0].load_one, Some(0.5));
    }

    #[test]
    fn host_view_lists_all_metrics_sorted() {
        let c = cluster("meteor", 1);
        let host = c.host("meteor-0").unwrap();
        let view = HostView::from_host("meteor", host);
        assert_eq!(view.cluster, "meteor");
        assert_eq!(view.metrics.len(), 2);
        assert_eq!(view.metrics[0].name, "cpu_num");
        assert_eq!(view.metrics[0].value, "2");
        assert_eq!(view.metrics[1].name, "load_one");
    }

    #[test]
    fn find_cluster_descends_nested_grids() {
        let inner = GridNode::with_items("ucsd", vec![GridItem::Cluster(cluster("physics", 2))]);
        let doc = doc_with(vec![GridItem::Grid(inner)]);
        let items = top_level_items(&doc);
        assert!(find_cluster(items, "physics").is_some());
        assert!(find_cluster(items, "chem").is_none());
    }
}
