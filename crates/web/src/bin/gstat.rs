//! `gstat` — command-line viewer for a gmeta agent over TCP.
//!
//! ```sh
//! gstat --gmetad 127.0.0.1:8652                      # meta view
//! gstat --gmetad 127.0.0.1:8652 --cluster meteor     # cluster view
//! gstat --gmetad 127.0.0.1:8652 --cluster meteor --host compute-0-0
//! gstat --gmetad 127.0.0.1:8652 --one-level          # legacy full-dump client
//! gstat --gmetad 127.0.0.1:8652 --telemetry          # the agent's own health
//! gstat --gmetad 127.0.0.1:8652 --trace              # round-correlated trace log
//! gstat --gmetad 127.0.0.1:8652 --watch 'metric == load_one | avg by cluster'
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ganglia_net::{Addr, TcpTransport};
use ganglia_web::render::{render_cluster, render_host, render_meta, render_trace};
use ganglia_web::{
    Frontend, NLevelFrontend, OneLevelFrontend, PersistentSession, ViewerClient, WatchSession,
};

struct Options {
    gmetad: String,
    cluster: Option<String>,
    host: Option<String>,
    one_level: bool,
    telemetry: bool,
    trace: bool,
    watch: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        gmetad: String::new(),
        cluster: None,
        host: None,
        one_level: false,
        telemetry: false,
        trace: false,
        watch: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--gmetad" | "-g" => options.gmetad = value("--gmetad")?,
            "--cluster" | "-c" => options.cluster = Some(value("--cluster")?),
            "--host" | "-H" => options.host = Some(value("--host")?),
            "--one-level" => options.one_level = true,
            "--telemetry" | "-t" => options.telemetry = true,
            "--trace" | "-T" => options.trace = true,
            "--watch" | "-w" => options.watch = Some(value("--watch")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if options.gmetad.is_empty() {
        return Err("--gmetad <host:port> is required".to_string());
    }
    if options.host.is_some() && options.cluster.is_none() {
        return Err("--host requires --cluster".to_string());
    }
    Ok(options)
}

/// Print the watch's current rows as an aligned table.
fn print_watch(watch: &WatchSession, label: &str) {
    let delta = watch.last_delta();
    println!(
        "-- revision {} {} (+{} ~{} -{}) --",
        watch.revision(),
        label,
        delta.added.len(),
        delta.changed.len(),
        delta.removed.len()
    );
    for row in watch.rows() {
        let place = match (row.cluster.is_empty(), row.host.is_empty()) {
            (true, _) => row.grid.clone(),
            (false, true) => row.cluster.clone(),
            (false, false) => format!("{}/{}", row.cluster, row.host),
        };
        println!(
            "{:<24} {:<16} {:>12} {}",
            place, row.metric, row.raw, row.units
        );
    }
}

/// Tail a continuous query: subscribe over a keep-alive session and
/// reprint the mirrored result every time the server pushes a delta.
fn run_watch(gmetad: &str, expr: &str) -> ExitCode {
    let addr = Addr::new(gmetad);
    let session = match PersistentSession::connect(&addr, "gstat-watch", Duration::from_secs(3600))
    {
        Ok(session) => session,
        Err(e) => {
            eprintln!("gstat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut watch = match session.watch(expr) {
        Ok(watch) => watch,
        Err(e) => {
            eprintln!("gstat: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_watch(&watch, "(snapshot)");
    loop {
        if let Err(e) = watch.next_delta() {
            eprintln!("gstat: {e}");
            return ExitCode::FAILURE;
        }
        print_watch(&watch, "(delta)");
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("gstat: {e}");
            eprintln!(
                "usage: gstat --gmetad <host:port> [--cluster C [--host H]] [--one-level] [--telemetry] [--trace] [--watch EXPR]"
            );
            return ExitCode::from(2);
        }
    };
    if let Some(expr) = &options.watch {
        return run_watch(&options.gmetad, expr);
    }
    let client = ViewerClient::new(
        Arc::new(TcpTransport::new()),
        Addr::new(options.gmetad.clone()),
    );
    if options.trace {
        // Structured trace view: the agent's bounded span-event log,
        // round-correlated, as an aligned table.
        return match client.fetch_trace() {
            Ok(doc) => {
                print!("{}", render_trace(&doc));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gstat: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if options.telemetry {
        // Self-telemetry view: the agent's own counters and latency
        // quantiles, rendered as tables.
        return match client.fetch_telemetry() {
            Ok((snapshot, source)) => {
                print!("{}", snapshot.render_table(&source));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gstat: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let frontend: Box<dyn Frontend> = if options.one_level {
        Box::new(OneLevelFrontend::new(client))
    } else {
        Box::new(NLevelFrontend::new(client))
    };
    let outcome = match (&options.cluster, &options.host) {
        (None, _) => frontend.meta_view().map(|(view, timing)| {
            print!("{}", render_meta(&view));
            timing
        }),
        (Some(cluster), None) => frontend.cluster_view(cluster).map(|(view, timing)| {
            print!("{}", render_cluster(&view));
            timing
        }),
        (Some(cluster), Some(host)) => frontend.host_view(cluster, host).map(|(view, timing)| {
            print!("{}", render_host(&view));
            timing
        }),
    };
    match outcome {
        Ok(timing) => {
            eprintln!(
                "({} bytes of XML; download+parse {:?})",
                timing.xml_bytes,
                timing.download_and_parse()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gstat: {e}");
            ExitCode::FAILURE
        }
    }
}
