//! `gstat` — command-line viewer for a gmeta agent over TCP.
//!
//! ```sh
//! gstat --gmetad 127.0.0.1:8652                      # meta view
//! gstat --gmetad 127.0.0.1:8652 --cluster meteor     # cluster view
//! gstat --gmetad 127.0.0.1:8652 --cluster meteor --host compute-0-0
//! gstat --gmetad 127.0.0.1:8652 --one-level          # legacy full-dump client
//! gstat --gmetad 127.0.0.1:8652 --telemetry          # the agent's own health
//! gstat --gmetad 127.0.0.1:8652 --trace              # round-correlated trace log
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use ganglia_net::{Addr, TcpTransport};
use ganglia_web::render::{render_cluster, render_host, render_meta, render_trace};
use ganglia_web::{Frontend, NLevelFrontend, OneLevelFrontend, ViewerClient};

struct Options {
    gmetad: String,
    cluster: Option<String>,
    host: Option<String>,
    one_level: bool,
    telemetry: bool,
    trace: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        gmetad: String::new(),
        cluster: None,
        host: None,
        one_level: false,
        telemetry: false,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--gmetad" | "-g" => options.gmetad = value("--gmetad")?,
            "--cluster" | "-c" => options.cluster = Some(value("--cluster")?),
            "--host" | "-H" => options.host = Some(value("--host")?),
            "--one-level" => options.one_level = true,
            "--telemetry" | "-t" => options.telemetry = true,
            "--trace" | "-T" => options.trace = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if options.gmetad.is_empty() {
        return Err("--gmetad <host:port> is required".to_string());
    }
    if options.host.is_some() && options.cluster.is_none() {
        return Err("--host requires --cluster".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("gstat: {e}");
            eprintln!(
                "usage: gstat --gmetad <host:port> [--cluster C [--host H]] [--one-level] [--telemetry] [--trace]"
            );
            return ExitCode::from(2);
        }
    };
    let client = ViewerClient::new(
        Arc::new(TcpTransport::new()),
        Addr::new(options.gmetad.clone()),
    );
    if options.trace {
        // Structured trace view: the agent's bounded span-event log,
        // round-correlated, as an aligned table.
        return match client.fetch_trace() {
            Ok(doc) => {
                print!("{}", render_trace(&doc));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gstat: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if options.telemetry {
        // Self-telemetry view: the agent's own counters and latency
        // quantiles, rendered as tables.
        return match client.fetch_telemetry() {
            Ok((snapshot, source)) => {
                print!("{}", snapshot.render_table(&source));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gstat: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let frontend: Box<dyn Frontend> = if options.one_level {
        Box::new(OneLevelFrontend::new(client))
    } else {
        Box::new(NLevelFrontend::new(client))
    };
    let outcome = match (&options.cluster, &options.host) {
        (None, _) => frontend.meta_view().map(|(view, timing)| {
            print!("{}", render_meta(&view));
            timing
        }),
        (Some(cluster), None) => frontend.cluster_view(cluster).map(|(view, timing)| {
            print!("{}", render_cluster(&view));
            timing
        }),
        (Some(cluster), Some(host)) => frontend.host_view(cluster, host).map(|(view, timing)| {
            print!("{}", render_host(&view));
            timing
        }),
    };
    match outcome {
        Ok(timing) => {
            eprintln!(
                "({} bytes of XML; download+parse {:?})",
                timing.xml_bytes,
                timing.download_and_parse()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gstat: {e}");
            ExitCode::FAILURE
        }
    }
}
