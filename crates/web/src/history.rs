//! The host-history page: archived metric series as sparklines.
//!
//! The PHP frontend reads gmetad's RRD files from local disk and graphs
//! them. This renderer is transport-agnostic: it pulls series through a
//! caller-supplied fetch function (typically a closure over
//! `Gmetad::fetch_history`) so it works in-process, over tests, or over
//! any future remote-history protocol.

use ganglia_rrd::{MetricKey, Series};

use crate::sparkline::render_history;

/// Fetches one archived series, or `None` if it does not exist.
pub type HistoryFetch<'a> = dyn Fn(&MetricKey) -> Option<Series> + 'a;

/// Render the history page for one host: one sparkline per requested
/// metric. Missing archives render as an explicit note rather than
/// being dropped, so absent history is visible.
pub fn render_host_history(
    source: &str,
    host: &str,
    metrics: &[&str],
    fetch: &HistoryFetch<'_>,
) -> String {
    let mut out = format!("=== History {source}/{host} ===\n");
    for metric in metrics {
        let key = MetricKey::host_metric(source, host, *metric);
        match fetch(&key) {
            Some(series) => out.push_str(&render_history(metric, &series)),
            None => out.push_str(&format!("{metric:<16} (no archive)\n")),
        }
    }
    out
}

/// Render a cluster's summary history (the `SUM` series of each
/// requested metric).
pub fn render_summary_history(source: &str, metrics: &[&str], fetch: &HistoryFetch<'_>) -> String {
    let mut out = format!("=== Summary history {source} ===\n");
    for metric in metrics {
        let key = MetricKey::summary_metric(source, *metric);
        match fetch(&key) {
            Some(series) => out.push_str(&render_history(metric, &series)),
            None => out.push_str(&format!("{metric:<16} (no archive)\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canned_fetch(key: &MetricKey) -> Option<Series> {
        (key.metric == "load_one").then(|| Series {
            start: 15,
            step: 15,
            values: vec![1.0, 2.0, f64::NAN, 4.0],
        })
    }

    #[test]
    fn host_history_renders_present_and_absent_metrics() {
        let text = render_host_history("meteor", "n0", &["load_one", "cpu_user"], &canned_fetch);
        assert!(text.contains("History meteor/n0"));
        assert!(text.contains("load_one"));
        assert!(text.contains("unknown=1"));
        assert!(text.contains("cpu_user"));
        assert!(text.contains("(no archive)"));
    }

    #[test]
    fn summary_history_uses_summary_keys() {
        let seen = std::cell::RefCell::new(Vec::new());
        let fetch = |key: &MetricKey| {
            seen.borrow_mut().push(key.clone());
            None
        };
        let _ = render_summary_history("meteor", &["load_one"], &fetch);
        let keys = seen.borrow();
        assert_eq!(keys.len(), 1);
        assert!(keys[0].is_summary());
    }
}
