//! Plain-text page rendering.
//!
//! The PHP frontend renders HTML; our stand-in renders aligned text
//! tables, which is what the examples and experiment binaries print.
//! Rendering cost is deliberately proportional to the view model, not to
//! the XML it came from — the point of Table 1 is that the *XML* work
//! differs between designs.

use std::fmt::Write;

use crate::views::{ClusterView, HostView, MetaView};

/// Render the meta view.
pub fn render_meta(view: &MetaView) -> String {
    let mut out = String::new();
    let (up, down, cpus) = view.totals();
    let _ = writeln!(out, "=== Grid overview: {} source(s) ===", view.rows.len());
    let _ = writeln!(out, "hosts up {up}, down {down}, total CPUs {cpus:.0}");
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>5} {:>5} {:>8} {:>10}  AUTHORITY",
        "SOURCE", "HEALTH", "UP", "DOWN", "CPUS", "LOAD(avg)"
    );
    for row in &view.rows {
        let kind = if row.is_grid { "grid " } else { "" };
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>5} {:>5} {:>8.0} {:>10.2}  {}{}",
            row.name,
            row.health,
            row.hosts_up,
            row.hosts_down,
            row.cpus,
            row.load_one_mean.unwrap_or(0.0),
            kind,
            row.authority,
        );
    }
    out
}

/// Render the cluster view.
pub fn render_cluster(view: &ClusterView) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Cluster {} ({} up / {} down) ===",
        view.name, view.hosts_up, view.hosts_down
    );
    let _ = writeln!(
        out,
        "{:<20} {:<15} {:>5} {:>9} {:>8} {:>6}",
        "HOST", "IP", "UP", "LOAD_ONE", "CPU_NUM", "TN"
    );
    for row in &view.rows {
        let _ = writeln!(
            out,
            "{:<20} {:<15} {:>5} {:>9.2} {:>8.0} {:>6}",
            row.name,
            row.ip,
            if row.up { "yes" } else { "NO" },
            row.load_one.unwrap_or(f64::NAN),
            row.cpu_num.unwrap_or(f64::NAN),
            row.tn,
        );
    }
    out
}

/// Render the host view.
pub fn render_host(view: &HostView) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Host {}/{} ({}) — {} ===",
        view.cluster,
        view.name,
        view.ip,
        if view.up { "up" } else { "DOWN" }
    );
    for metric in &view.metrics {
        let _ = writeln!(
            out,
            "{:<16} = {:>14} {:<12} ({})",
            metric.name, metric.value, metric.units, metric.type_name
        );
    }
    out
}

/// Render a `?filter=trace` document (see `ViewerClient::fetch_trace`)
/// as an aligned table, one span event per line, oldest first.
pub fn render_trace(doc: &ganglia_telemetry::json::JsonValue) -> String {
    let source = doc.get("source").and_then(|v| v.as_str()).unwrap_or("?");
    let round = doc.get("round").and_then(|v| v.as_u64()).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "=== Trace: {source} — round {round} ===");
    let _ = writeln!(
        out,
        "{:>6} {:<20} {:<12} {:>10} {:>10} {:>10}  OUTCOME",
        "ROUND", "SOURCE", "STAGE", "OPENED", "CLOSED", "US"
    );
    let mut i = 0;
    while let Some(event) = doc.get("events").and_then(|e| e.index(i)) {
        i += 1;
        let str_field = |key: &str| event.get(key).and_then(|v| v.as_str()).unwrap_or("?");
        let num_field = |key: &str| event.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        let source = str_field("source");
        let _ = writeln!(
            out,
            "{:>6} {:<20} {:<12} {:>10} {:>10} {:>10}  {}",
            num_field("round"),
            if source.is_empty() { "-" } else { source },
            str_field("stage"),
            num_field("opened_at"),
            num_field("closed_at"),
            num_field("us"),
            str_field("outcome"),
        );
    }
    let _ = writeln!(out, "({i} event(s))");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::{HostRow, MetaRow, MetricRow, SourceHealth};

    #[test]
    fn meta_rendering_contains_rows_and_totals() {
        let view = MetaView {
            rows: vec![MetaRow {
                name: "meteor".into(),
                is_grid: false,
                hosts_up: 100,
                hosts_down: 2,
                health: SourceHealth::from_counts(100, 2),
                cpus: 200.0,
                load_one_sum: 55.0,
                load_one_mean: Some(0.55),
                authority: String::new(),
            }],
        };
        let text = render_meta(&view);
        assert!(text.contains("meteor"));
        assert!(text.contains("100"));
        assert!(text.contains("0.55"));
        assert!(text.contains("HEALTH"));
        assert!(text.contains("degraded"));
    }

    #[test]
    fn cluster_rendering_marks_down_hosts() {
        let view = ClusterView {
            name: "meteor".into(),
            rows: vec![HostRow {
                name: "n0".into(),
                ip: "1.1.1.1".into(),
                up: false,
                load_one: Some(1.25),
                cpu_num: Some(2.0),
                tn: 999,
            }],
            hosts_up: 0,
            hosts_down: 1,
        };
        let text = render_cluster(&view);
        assert!(text.contains("NO"));
        assert!(text.contains("1.25"));
    }

    #[test]
    fn trace_rendering_tabulates_events() {
        let doc = ganglia_telemetry::json::parse(
            "{\"source\":\"gmetad:wide\",\"round\":4,\"events\":[\
             {\"round\":3,\"source\":\"sdsc\",\"stage\":\"poll\",\
              \"path\":\"round.poll\",\"opened_at\":45,\"closed_at\":45,\
              \"us\":120,\"outcome\":\"ok\"},\
             {\"round\":4,\"source\":\"\",\"stage\":\"round\",\
              \"path\":\"round\",\"opened_at\":60,\"closed_at\":60,\
              \"us\":900,\"outcome\":\"ok\"}]}",
        )
        .unwrap();
        let text = render_trace(&doc);
        assert!(text.contains("gmetad:wide — round 4"));
        assert!(text.contains("sdsc"));
        assert!(text.contains("poll"));
        assert!(text.contains("(2 event(s))"));
    }

    #[test]
    fn host_rendering_lists_metrics() {
        let view = HostView {
            cluster: "meteor".into(),
            name: "n0".into(),
            ip: "1.1.1.1".into(),
            up: true,
            metrics: vec![MetricRow {
                name: "os_name".into(),
                value: "Linux".into(),
                units: String::new(),
                type_name: "string".into(),
            }],
        };
        let text = render_host(&view);
        assert!(text.contains("os_name"));
        assert!(text.contains("Linux"));
    }
}
