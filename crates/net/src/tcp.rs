//! Real TCP transport over `std::net`.
//!
//! Implements the gmetad wire protocol: the client connects, sends one
//! request line (possibly empty for a full dump), half-closes, and reads
//! the XML response until EOF — "XML streams sent over TCP connections"
//! (paper §1, fig 1). Addresses are `host:port` socket addresses;
//! binding to port 0 picks an ephemeral port, reported by the guard.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::addr::Addr;
use crate::error::NetError;
use crate::transport::{FetchBuffer, RequestHandler, ServerGuard, Transport};

/// Per-connection read and write deadlines: a peer that stalls
/// mid-request or stops draining its response holds a connection thread
/// for at most this long.
const CONN_DEADLINE: Duration = Duration::from_secs(10);

/// How long a dropped guard waits for in-flight connections to finish
/// before detaching them.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// Transport over real TCP sockets.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

impl TcpTransport {
    /// Construct (stateless).
    pub fn new() -> Self {
        TcpTransport
    }
}

/// In-flight connection count, so the guard can drain on drop.
struct ConnTracker {
    active: Mutex<usize>,
    done: Condvar,
}

impl ConnTracker {
    fn enter(self: &Arc<Self>) -> ConnGuard {
        *self.active.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        ConnGuard(Arc::clone(self))
    }

    /// Wait until no connection is in flight or `deadline` passes;
    /// returns whether everything drained.
    fn wait_drained(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        while *active > 0 {
            let now = Instant::now();
            if now >= until {
                return false;
            }
            active = self
                .done
                .wait_timeout(active, until - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        true
    }
}

/// Decrements the in-flight count when a connection finishes, even on
/// unwind.
struct ConnGuard(Arc<ConnTracker>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        *self.0.active.lock().unwrap_or_else(|e| e.into_inner()) -= 1;
        self.0.done.notify_all();
    }
}

/// Guard for a bound TCP endpoint; stops the accept loop when dropped
/// and drains in-flight connections with a deadline.
struct TcpServerGuard {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    tracker: Arc<ConnTracker>,
}

impl ServerGuard for TcpServerGuard {
    fn addr(&self) -> Addr {
        Addr::new(self.local.to_string())
    }
}

impl Drop for TcpServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the accept loop notices the stop flag.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        // Give responses already being written a chance to finish.
        // Connections still alive past the deadline are detached; their
        // threads die with the per-connection read/write deadlines.
        let _ = self.tracker.wait_drained(DRAIN_DEADLINE);
    }
}

impl Transport for TcpTransport {
    fn serve(
        &self,
        addr: &Addr,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<Box<dyn ServerGuard>, NetError> {
        let listener = TcpListener::bind(addr.as_str()).map_err(|e| {
            if e.kind() == std::io::ErrorKind::AddrInUse {
                NetError::AddrInUse(addr.clone())
            } else {
                NetError::Io(e.to_string())
            }
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Io(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_thread = Arc::clone(&stop);
        let tracker = Arc::new(ConnTracker {
            active: Mutex::new(0),
            done: Condvar::new(),
        });
        let tracker_for_thread = Arc::clone(&tracker);
        let thread = std::thread::Builder::new()
            .name(format!("gmeta-serve-{local}"))
            .spawn(move || accept_loop(listener, handler, stop_for_thread, tracker_for_thread))
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(Box::new(TcpServerGuard {
            local,
            stop,
            thread: Some(thread),
            tracker,
        }))
    }

    fn fetch(&self, addr: &Addr, request: &str, timeout: Duration) -> Result<String, NetError> {
        let mut buf = FetchBuffer::new();
        self.fetch_into(addr, request, timeout, &mut buf)?;
        Ok(buf.into_string())
    }

    /// Streaming fetch into a reusable buffer: the response is read
    /// directly into `buf`, which was pre-reserved to the previous
    /// response's size — steady-state polls of the same child reuse one
    /// allocation instead of growing a fresh `String` from empty.
    fn fetch_into(
        &self,
        addr: &Addr,
        request: &str,
        timeout: Duration,
        buf: &mut FetchBuffer,
    ) -> Result<usize, NetError> {
        let socket_addr: SocketAddr = addr
            .as_str()
            .parse()
            .map_err(|e| NetError::Io(format!("bad socket address {addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&socket_addr, timeout).map_err(|e| {
            if e.kind() == std::io::ErrorKind::TimedOut {
                NetError::Timeout(addr.clone())
            } else {
                NetError::Unreachable(addr.clone())
            }
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| NetError::Io(e.to_string()))?;
        let mut stream = stream;
        stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| classify_io(addr, e))?;
        let _ = stream.shutdown(Shutdown::Write);
        buf.prepare();
        let n = stream
            .read_to_string(&mut buf.text)
            .map_err(|e| classify_io(addr, e))?;
        buf.learn(n);
        Ok(n)
    }
}

fn classify_io(addr: &Addr, e: std::io::Error) -> NetError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            NetError::Timeout(addr.clone())
        }
        std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset => {
            NetError::Unreachable(addr.clone())
        }
        _ => NetError::Io(e.to_string()),
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: Arc<dyn RequestHandler>,
    stop: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let handler = Arc::clone(&handler);
        let conn = tracker.enter();
        // One thread per connection: monitoring fan-in is small (a parent
        // polls each child every ~15 s) so this stays far from any limit.
        std::thread::spawn(move || {
            let _conn = conn;
            let _ = serve_connection(stream, &*handler);
        });
    }
}

fn serve_connection(stream: TcpStream, handler: &dyn RequestHandler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CONN_DEADLINE))?;
    stream.set_write_timeout(Some(CONN_DEADLINE))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    let response = handler.handle(request.trim_end_matches(['\r', '\n']));
    let mut stream = stream;
    stream.write_all(response.as_bytes())?;
    let _ = stream.shutdown(Shutdown::Write);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn serve_and_fetch_over_loopback() {
        let transport = TcpTransport::new();
        let handler: Arc<dyn RequestHandler> =
            Arc::new(|req: &str| format!("<REPLY Q=\"{req}\"/>"));
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        let bound = guard.addr();
        let response = transport.fetch(&bound, "/meteor", T).unwrap();
        assert_eq!(response, "<REPLY Q=\"/meteor\"/>");
    }

    #[test]
    fn empty_request_line_is_full_dump() {
        let transport = TcpTransport::new();
        let handler: Arc<dyn RequestHandler> = Arc::new(|req: &str| format!("[{req}]"));
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        assert_eq!(transport.fetch(&guard.addr(), "", T).unwrap(), "[]");
    }

    #[test]
    fn concurrent_fetches_are_served() {
        let transport = TcpTransport::new();
        let handler: Arc<dyn RequestHandler> = Arc::new(|req: &str| req.repeat(100));
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        let bound = guard.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let bound = bound.clone();
                std::thread::spawn(move || {
                    let t = TcpTransport::new();
                    let resp = t.fetch(&bound, &format!("q{i}"), T).unwrap();
                    assert_eq!(resp.len(), 200);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn fetch_refused_port_is_unreachable() {
        let transport = TcpTransport::new();
        // Bind then immediately drop to find a (very likely) free port.
        let free = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = transport.fetch(&Addr::new(free), "", T).unwrap_err();
        assert!(matches!(err, NetError::Unreachable(_)), "{err}");
    }

    #[test]
    fn guard_drop_stops_server() {
        let transport = TcpTransport::new();
        let handler: Arc<dyn RequestHandler> = Arc::new(|_: &str| "x".to_string());
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        let bound = guard.addr();
        assert!(transport.fetch(&bound, "", T).is_ok());
        drop(guard);
        // After drop, connection attempts must fail.
        assert!(transport.fetch(&bound, "", T).is_err());
    }

    #[test]
    fn guard_drop_drains_in_flight_connections() {
        let transport = TcpTransport::new();
        // A handler slow enough that the response is still pending when
        // the guard drops, but well inside the drain deadline.
        let handler: Arc<dyn RequestHandler> = Arc::new(|_: &str| {
            std::thread::sleep(Duration::from_millis(300));
            "<SLOW/>".to_string()
        });
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        let bound = guard.addr();
        let fetcher = std::thread::spawn(move || TcpTransport::new().fetch(&bound, "", T));
        // Let the connection get accepted before dropping the guard.
        std::thread::sleep(Duration::from_millis(100));
        drop(guard);
        // The in-flight response completed even though the server shut
        // down mid-request.
        assert_eq!(fetcher.join().unwrap().unwrap(), "<SLOW/>");
    }

    #[test]
    fn stalled_client_does_not_hold_a_connection_forever() {
        // A client that connects and never sends: the server-side
        // connection thread must die on the read deadline rather than
        // pin resources indefinitely. Observed indirectly — the tracker
        // drains once the stalled socket is closed client-side.
        let transport = TcpTransport::new();
        let handler: Arc<dyn RequestHandler> = Arc::new(|_: &str| "x".to_string());
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        let addr: SocketAddr = guard.addr().as_str().parse().unwrap();
        let stalled = TcpStream::connect_timeout(&addr, T).unwrap();
        // A normal request is still served alongside the stalled peer.
        assert_eq!(transport.fetch(&guard.addr(), "q", T).unwrap(), "x");
        drop(stalled); // client closes; server read returns EOF
        drop(guard); // drains promptly — the test not hanging is the assertion
    }

    #[test]
    fn fetch_into_reuses_buffer_and_learns_hint() {
        let transport = TcpTransport::new();
        let handler: Arc<dyn RequestHandler> = Arc::new(|req: &str| req.repeat(50));
        let guard = transport.serve(&Addr::new("127.0.0.1:0"), handler).unwrap();
        let bound = guard.addr();
        let mut buf = FetchBuffer::new();
        assert_eq!(buf.hint(), 0);
        let n = transport.fetch_into(&bound, "abcd", T, &mut buf).unwrap();
        assert_eq!(n, 200);
        assert_eq!(buf.len(), 200);
        assert_eq!(buf.as_str(), "abcd".repeat(50));
        assert_eq!(buf.hint(), 200);
        let capacity = buf.capacity();
        // A same-size follow-up fits in the learned capacity: the buffer
        // does not grow.
        let n = transport.fetch_into(&bound, "wxyz", T, &mut buf).unwrap();
        assert_eq!(n, 200);
        assert_eq!(buf.as_str(), "wxyz".repeat(50));
        assert_eq!(buf.capacity(), capacity);
        // And the result matches the one-shot path byte for byte.
        assert_eq!(
            transport.fetch(&bound, "wxyz", T).unwrap(),
            buf.into_string()
        );
    }

    #[test]
    fn bad_address_is_io_error() {
        let transport = TcpTransport::new();
        assert!(matches!(
            transport.fetch(&Addr::new("not-an-addr"), "", T),
            Err(NetError::Io(_))
        ));
    }
}
