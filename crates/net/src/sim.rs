//! The deterministic in-memory network.
//!
//! Handlers run synchronously on the caller's thread, so a fetch's cost
//! lands on the wall clock exactly once and CPU accounting in the caller
//! can attribute serving work to the serving node. Fault injection covers
//! the paper's failure taxonomy (§1, §2.1):
//!
//! * **stop failures** — [`SimNet::set_down`] makes an endpoint refuse
//!   exchanges, like a crashed daemon;
//! * **intermittent failures** — [`SimNet::set_flakiness`] drops a
//!   deterministic fraction of exchanges;
//! * **partitions** — [`SimNet::partition_prefix`] cuts off a whole
//!   `cluster/...` namespace, like losing the link to a remote site;
//! * **latency** — [`SimNet::set_latency`] delays an endpoint's
//!   responses; a delay at or beyond the caller's timeout becomes a
//!   [`NetError::Timeout`], like an overloaded daemon;
//! * **truncation** — [`SimNet::set_truncation`] cuts responses short,
//!   like a connection dying mid-transfer (the caller sees a parse
//!   failure, not a transport error);
//! * **garbage** — [`SimNet::set_garbage`] replaces responses with
//!   bytes that are not XML at all, like a protocol mismatch or
//!   corrupted stream.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::addr::Addr;
use crate::error::NetError;
use crate::rng::SplitMix64;
use crate::stats::TrafficReport;
use crate::transport::{RequestHandler, ServerGuard, Transport};

#[derive(Default)]
struct Faults {
    down: HashSet<Addr>,
    partitioned_prefixes: HashSet<String>,
    /// Per-endpoint probability that an exchange is dropped.
    flaky: HashMap<Addr, f64>,
    /// Simulated response delay per endpoint (no real sleeping: the
    /// delay is compared against the caller's timeout).
    latency: HashMap<Addr, Duration>,
    /// Real (slept) response delay per endpoint, capped at the caller's
    /// timeout. Used by concurrency tests and benchmarks where round
    /// wall-clock is the measured quantity.
    wire_delay: HashMap<Addr, Duration>,
    /// Per-endpoint cap on response length, in bytes.
    truncate: HashMap<Addr, usize>,
    /// Endpoints whose responses are replaced with non-XML garbage.
    garbage: HashSet<Addr>,
}

/// The shared state of a simulated network.
pub struct SimNet {
    handlers: RwLock<HashMap<Addr, Arc<dyn RequestHandler>>>,
    faults: RwLock<Faults>,
    rng: Mutex<SplitMix64>,
    stats: TrafficReport,
}

impl SimNet {
    /// A fresh network with a deterministic fault-injection seed.
    pub fn new(seed: u64) -> Arc<SimNet> {
        Arc::new(SimNet {
            handlers: RwLock::new(HashMap::new()),
            faults: RwLock::new(Faults::default()),
            rng: Mutex::new(SplitMix64::new(seed)),
            stats: TrafficReport::default(),
        })
    }

    /// Traffic counters for assertions and experiments.
    pub fn stats(&self) -> &TrafficReport {
        &self.stats
    }

    /// Mark an endpoint crashed (stop failure) or recovered.
    pub fn set_down(&self, addr: &Addr, down: bool) {
        let mut faults = self.faults.write();
        if down {
            faults.down.insert(addr.clone());
        } else {
            faults.down.remove(addr);
        }
    }

    /// Cut off (or restore) every endpoint under `prefix/`.
    pub fn partition_prefix(&self, prefix: &str, cut: bool) {
        let mut faults = self.faults.write();
        if cut {
            faults.partitioned_prefixes.insert(prefix.to_string());
        } else {
            faults.partitioned_prefixes.remove(prefix);
        }
    }

    /// Set the probability that any one exchange with `addr` is dropped.
    pub fn set_flakiness(&self, addr: &Addr, drop_probability: f64) {
        let mut faults = self.faults.write();
        if drop_probability <= 0.0 {
            faults.flaky.remove(addr);
        } else {
            faults.flaky.insert(addr.clone(), drop_probability);
        }
    }

    /// Delay every response from `addr` by `latency` (simulated — the
    /// delay is charged against the fetching caller's timeout, so a
    /// latency at or beyond the timeout surfaces as [`NetError::Timeout`]).
    /// `Duration::ZERO` clears the fault.
    pub fn set_latency(&self, addr: &Addr, latency: Duration) {
        let mut faults = self.faults.write();
        if latency.is_zero() {
            faults.latency.remove(addr);
        } else {
            faults.latency.insert(addr.clone(), latency);
        }
    }

    /// Delay every response from `addr` by really sleeping `delay` on
    /// the fetching thread, honouring the caller's timeout: a delay at
    /// or beyond the timeout sleeps the full timeout and then fails with
    /// [`NetError::Timeout`], exactly like a socket read deadline.
    /// Unlike [`SimNet::set_latency`] this costs wall-clock time, which
    /// is the point — parallel-polling tests measure it.
    /// `Duration::ZERO` clears the fault.
    pub fn set_wire_delay(&self, addr: &Addr, delay: Duration) {
        let mut faults = self.faults.write();
        if delay.is_zero() {
            faults.wire_delay.remove(addr);
        } else {
            faults.wire_delay.insert(addr.clone(), delay);
        }
    }

    /// Truncate every response from `addr` to at most `bytes` bytes
    /// (`None` clears the fault). Models a connection dying
    /// mid-transfer: the transport still "succeeds", the caller's parser
    /// does not.
    pub fn set_truncation(&self, addr: &Addr, bytes: Option<usize>) {
        let mut faults = self.faults.write();
        match bytes {
            Some(n) => faults.truncate.insert(addr.clone(), n),
            None => faults.truncate.remove(addr),
        };
    }

    /// Replace every response from `addr` with non-XML garbage (or stop
    /// doing so). Models stream corruption or a protocol mismatch.
    pub fn set_garbage(&self, addr: &Addr, enabled: bool) {
        let mut faults = self.faults.write();
        if enabled {
            faults.garbage.insert(addr.clone());
        } else {
            faults.garbage.remove(addr);
        }
    }

    /// Whether an endpoint currently exists and is reachable.
    pub fn is_reachable(&self, addr: &Addr) -> bool {
        let faults = self.faults.read();
        if faults.down.contains(addr)
            || faults
                .partitioned_prefixes
                .iter()
                .any(|p| addr.has_prefix(p))
        {
            return false;
        }
        self.handlers.read().contains_key(addr)
    }

    fn check_faults(&self, addr: &Addr) -> Result<(), NetError> {
        let faults = self.faults.read();
        if faults.down.contains(addr) {
            return Err(NetError::Unreachable(addr.clone()));
        }
        if faults
            .partitioned_prefixes
            .iter()
            .any(|p| addr.has_prefix(p))
        {
            // A partition looks like a timeout, not a refusal: packets
            // vanish rather than being rejected.
            return Err(NetError::Timeout(addr.clone()));
        }
        if let Some(&p) = faults.flaky.get(addr) {
            if self.rng.lock().chance(p) {
                return Err(NetError::Dropped(addr.clone()));
            }
        }
        Ok(())
    }
}

/// Guard that unbinds a simulated endpoint when dropped.
struct SimServerGuard {
    net: Arc<SimNet>,
    addr: Addr,
}

impl ServerGuard for SimServerGuard {
    fn addr(&self) -> Addr {
        self.addr.clone()
    }
}

impl Drop for SimServerGuard {
    fn drop(&mut self) {
        self.net.handlers.write().remove(&self.addr);
    }
}

impl Transport for Arc<SimNet> {
    fn serve(
        &self,
        addr: &Addr,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<Box<dyn ServerGuard>, NetError> {
        let mut handlers = self.handlers.write();
        if handlers.contains_key(addr) {
            return Err(NetError::AddrInUse(addr.clone()));
        }
        handlers.insert(addr.clone(), handler);
        Ok(Box::new(SimServerGuard {
            net: Arc::clone(self),
            addr: addr.clone(),
        }))
    }

    fn fetch(&self, addr: &Addr, request: &str, timeout: Duration) -> Result<String, NetError> {
        if let Err(e) = self.check_faults(addr) {
            self.stats.record_failure(addr);
            return Err(e);
        }
        // Injected latency is simulated, not slept: a response that
        // would arrive at or after the caller's deadline is a timeout.
        if let Some(&latency) = self.faults.read().latency.get(addr) {
            if latency >= timeout {
                self.stats.record_failure(addr);
                return Err(NetError::Timeout(addr.clone()));
            }
        }
        // Wire delay is really slept (outside the fault lock), capped at
        // the caller's timeout like a socket read deadline.
        let wire_delay = self.faults.read().wire_delay.get(addr).copied();
        if let Some(delay) = wire_delay {
            if delay >= timeout {
                std::thread::sleep(timeout);
                self.stats.record_failure(addr);
                return Err(NetError::Timeout(addr.clone()));
            }
            std::thread::sleep(delay);
        }
        let handler = {
            let handlers = self.handlers.read();
            match handlers.get(addr) {
                Some(h) => Arc::clone(h),
                None => {
                    self.stats.record_failure(addr);
                    return Err(NetError::Unreachable(addr.clone()));
                }
            }
        };
        // The handler runs on the caller's thread outside any lock, so
        // servers may themselves fetch from other endpoints (a gmetad
        // polling through to leaf gmonds).
        let mut response = handler.handle(request);
        {
            let faults = self.faults.read();
            if faults.garbage.contains(addr) {
                // Deliberately not XML: not even a '<' to latch onto.
                response = "\u{1}\u{2}GARBAGE 0xDEADBEEF not-xml ]]>".to_string();
            } else if let Some(&limit) = faults.truncate.get(addr) {
                if response.len() > limit {
                    let mut cut = limit;
                    while cut > 0 && !response.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    response.truncate(cut);
                }
            }
        }
        self.stats.record_served(addr, response.len());
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(100);

    fn echo_handler(tag: &'static str) -> Arc<dyn RequestHandler> {
        Arc::new(move |req: &str| format!("{tag}:{req}"))
    }

    #[test]
    fn serve_and_fetch() {
        let net = SimNet::new(1);
        let addr = Addr::new("meteor/n0");
        let _guard = net.serve(&addr, echo_handler("m")).unwrap();
        assert_eq!(net.fetch(&addr, "/", T).unwrap(), "m:/");
        assert!(net.is_reachable(&addr));
    }

    #[test]
    fn fetch_unbound_is_unreachable() {
        let net = SimNet::new(1);
        assert_eq!(
            net.fetch(&Addr::new("ghost"), "", T),
            Err(NetError::Unreachable(Addr::new("ghost")))
        );
    }

    #[test]
    fn double_bind_is_rejected() {
        let net = SimNet::new(1);
        let addr = Addr::new("a");
        let _g = net.serve(&addr, echo_handler("1")).unwrap();
        assert!(matches!(
            net.serve(&addr, echo_handler("2")),
            Err(NetError::AddrInUse(_))
        ));
    }

    #[test]
    fn dropping_guard_unbinds() {
        let net = SimNet::new(1);
        let addr = Addr::new("a");
        let guard = net.serve(&addr, echo_handler("1")).unwrap();
        drop(guard);
        assert!(!net.is_reachable(&addr));
        // And the address can be re-bound (daemon restart).
        let _g2 = net.serve(&addr, echo_handler("2")).unwrap();
        assert_eq!(net.fetch(&addr, "x", T).unwrap(), "2:x");
    }

    #[test]
    fn stop_failure_and_recovery() {
        let net = SimNet::new(1);
        let addr = Addr::new("meteor/n0");
        let _g = net.serve(&addr, echo_handler("m")).unwrap();
        net.set_down(&addr, true);
        assert_eq!(
            net.fetch(&addr, "", T),
            Err(NetError::Unreachable(addr.clone()))
        );
        net.set_down(&addr, false);
        assert!(net.fetch(&addr, "", T).is_ok());
    }

    #[test]
    fn partition_cuts_whole_prefix_as_timeouts() {
        let net = SimNet::new(1);
        let n0 = Addr::new("meteor/n0");
        let n1 = Addr::new("meteor/n1");
        let other = Addr::new("nashi/n0");
        let _g0 = net.serve(&n0, echo_handler("0")).unwrap();
        let _g1 = net.serve(&n1, echo_handler("1")).unwrap();
        let _g2 = net.serve(&other, echo_handler("2")).unwrap();
        net.partition_prefix("meteor", true);
        assert_eq!(net.fetch(&n0, "", T), Err(NetError::Timeout(n0.clone())));
        assert_eq!(net.fetch(&n1, "", T), Err(NetError::Timeout(n1.clone())));
        assert!(net.fetch(&other, "", T).is_ok());
        net.partition_prefix("meteor", false);
        assert!(net.fetch(&n0, "", T).is_ok());
    }

    #[test]
    fn flakiness_drops_a_fraction_deterministically() {
        let net = SimNet::new(42);
        let addr = Addr::new("a");
        let _g = net.serve(&addr, echo_handler("x")).unwrap();
        net.set_flakiness(&addr, 0.5);
        let failures = (0..1000)
            .filter(|_| net.fetch(&addr, "", T).is_err())
            .count();
        assert!((350..650).contains(&failures), "failures {failures}");
        // Errors are classified as intermittent.
        net.set_flakiness(&addr, 1.0);
        assert!(net.fetch(&addr, "", T).unwrap_err().is_intermittent());
        net.set_flakiness(&addr, 0.0);
        assert!(net.fetch(&addr, "", T).is_ok());
    }

    #[test]
    fn latency_beyond_timeout_is_a_timeout() {
        let net = SimNet::new(1);
        let addr = Addr::new("slow");
        let _g = net.serve(&addr, echo_handler("s")).unwrap();
        net.set_latency(&addr, Duration::from_millis(150));
        // Slower than the deadline: times out, classified intermittent.
        let err = net.fetch(&addr, "", T).unwrap_err();
        assert_eq!(err, NetError::Timeout(addr.clone()));
        assert!(err.is_intermittent());
        // A patient caller still gets through.
        assert!(net.fetch(&addr, "", Duration::from_millis(200)).is_ok());
        // Clearing the fault restores normal service.
        net.set_latency(&addr, Duration::ZERO);
        assert!(net.fetch(&addr, "", T).is_ok());
    }

    #[test]
    fn wire_delay_sleeps_and_honours_the_timeout() {
        let net = SimNet::new(1);
        let addr = Addr::new("sluggish");
        let _g = net.serve(&addr, echo_handler("s")).unwrap();
        net.set_wire_delay(&addr, Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert!(net.fetch(&addr, "", T).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(20), "really slept");
        // A delay past the deadline costs the timeout, then fails.
        net.set_wire_delay(&addr, Duration::from_secs(30));
        let start = std::time::Instant::now();
        let err = net.fetch(&addr, "", Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, NetError::Timeout(addr.clone()));
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(30), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5), "capped at timeout");
        net.set_wire_delay(&addr, Duration::ZERO);
        assert!(net.fetch(&addr, "", T).is_ok());
    }

    #[test]
    fn truncation_cuts_responses_short() {
        let net = SimNet::new(1);
        let addr = Addr::new("chopped");
        let _g = net.serve(&addr, echo_handler("tag")).unwrap();
        net.set_truncation(&addr, Some(5));
        assert_eq!(net.fetch(&addr, "1234567", T).unwrap(), "tag:1");
        // Truncation respects char boundaries in multi-byte output.
        net.set_truncation(&addr, Some(4));
        let cut = net.fetch(&addr, "é", T).unwrap();
        assert!(cut.is_char_boundary(cut.len()));
        net.set_truncation(&addr, None);
        assert_eq!(net.fetch(&addr, "1234567", T).unwrap(), "tag:1234567");
    }

    #[test]
    fn garbage_replaces_the_response_body() {
        let net = SimNet::new(1);
        let addr = Addr::new("corrupt");
        let _g = net.serve(&addr, echo_handler("x")).unwrap();
        net.set_garbage(&addr, true);
        let body = net.fetch(&addr, "/", T).unwrap();
        assert!(!body.contains('<'), "garbage must not look like XML");
        net.set_garbage(&addr, false);
        assert_eq!(net.fetch(&addr, "/", T).unwrap(), "x:/");
    }

    #[test]
    fn stats_track_served_bytes_and_failures() {
        let net = SimNet::new(1);
        let addr = Addr::new("a");
        let _g = net.serve(&addr, echo_handler("tag")).unwrap();
        net.fetch(&addr, "1234", T).unwrap(); // response "tag:1234" = 8 bytes
        net.set_down(&addr, true);
        let _ = net.fetch(&addr, "", T);
        let stats = net.stats().get(&addr);
        assert_eq!(stats.requests_served, 1);
        assert_eq!(stats.bytes_served, 8);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn handlers_can_fetch_through_the_net() {
        // A gmetad-style handler that itself polls a child endpoint.
        let net = SimNet::new(1);
        let leaf = Addr::new("leaf");
        let _g1 = net.serve(&leaf, echo_handler("leaf")).unwrap();
        let net_for_mid = Arc::clone(&net);
        let leaf_for_mid = leaf.clone();
        let mid = Addr::new("mid");
        let _g2 = net
            .serve(
                &mid,
                Arc::new(move |req: &str| {
                    let below = net_for_mid.fetch(&leaf_for_mid, req, T).unwrap();
                    format!("mid({below})")
                }),
            )
            .unwrap();
        assert_eq!(net.fetch(&mid, "q", T).unwrap(), "mid(leaf:q)");
    }
}
