//! Error type for transport operations.

use std::fmt;

use crate::addr::Addr;

/// Anything that can go wrong talking to a monitoring endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint is listening at the address (stop failure / refused).
    Unreachable(Addr),
    /// The endpoint exists but the exchange timed out (intermittent
    /// failure or partition; detected "with TCP timeouts", paper §2.1).
    Timeout(Addr),
    /// The exchange was dropped mid-flight (injected intermittent loss).
    Dropped(Addr),
    /// An address was already bound by another server.
    AddrInUse(Addr),
    /// Underlying socket failure (real TCP transport).
    Io(String),
}

impl NetError {
    /// Whether a retry against the *same* address could plausibly succeed
    /// (intermittent failures), as opposed to a stop failure where gmetad
    /// should fail over to another cluster node first.
    pub fn is_intermittent(&self) -> bool {
        matches!(self, NetError::Timeout(_) | NetError::Dropped(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(a) => write!(f, "endpoint {a} is unreachable"),
            NetError::Timeout(a) => write!(f, "exchange with {a} timed out"),
            NetError::Dropped(a) => write!(f, "exchange with {a} was dropped"),
            NetError::AddrInUse(a) => write!(f, "address {a} is already bound"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intermittent_classification() {
        assert!(NetError::Timeout(Addr::new("x")).is_intermittent());
        assert!(NetError::Dropped(Addr::new("x")).is_intermittent());
        assert!(!NetError::Unreachable(Addr::new("x")).is_intermittent());
        assert!(!NetError::Io("e".into()).is_intermittent());
    }
}
