//! The simulated local-area multicast channel.
//!
//! "Gmon uses UDP multicast to exchange these metrics within the cluster.
//! The local-area multicast backbone enables gmon agents to organize into
//! a redundant, leaderless network where nodes listen to their neighbors
//! rather than polling them" (paper §1). The bus below gives every
//! subscriber its own inbox; a publish fans out to every *other*
//! subscriber, with optional deterministic packet loss (UDP gives no
//! delivery guarantee, which is exactly why gmond uses soft state).

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::rng::SplitMix64;

struct Inbox {
    id: u64,
    queue: VecDeque<Bytes>,
}

struct BusState {
    inboxes: Vec<Inbox>,
    next_id: u64,
    loss_probability: f64,
    rng: SplitMix64,
    published: u64,
    delivered: u64,
}

/// A simulated multicast channel.
pub struct McastBus {
    state: Mutex<BusState>,
}

impl McastBus {
    /// A lossless bus.
    pub fn new(seed: u64) -> Arc<McastBus> {
        Arc::new(McastBus {
            state: Mutex::new(BusState {
                inboxes: Vec::new(),
                next_id: 0,
                loss_probability: 0.0,
                rng: SplitMix64::new(seed),
                published: 0,
                delivered: 0,
            }),
        })
    }

    /// Set the probability that any single delivery is lost.
    pub fn set_loss(&self, probability: f64) {
        self.state.lock().loss_probability = probability;
    }

    /// Join the channel.
    pub fn subscribe(self: &Arc<Self>) -> McastSubscription {
        let mut state = self.state.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.inboxes.push(Inbox {
            id,
            queue: VecDeque::new(),
        });
        McastSubscription {
            bus: Arc::clone(self),
            id,
        }
    }

    /// Number of current subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.state.lock().inboxes.len()
    }

    /// Total packets published / deliveries made (for loss assertions).
    pub fn counters(&self) -> (u64, u64) {
        let state = self.state.lock();
        (state.published, state.delivered)
    }

    fn publish_from(&self, sender: u64, payload: &Bytes) {
        let mut state = self.state.lock();
        state.published += 1;
        let loss = state.loss_probability;
        // Split the borrow: decide drops first, then enqueue.
        let mut deliveries = 0u64;
        let n = state.inboxes.len();
        let drops: Vec<bool> = (0..n)
            .map(|_| loss > 0.0 && state.rng.chance(loss))
            .collect();
        for (inbox, dropped) in state.inboxes.iter_mut().zip(drops) {
            if inbox.id == sender || dropped {
                continue;
            }
            inbox.queue.push_back(payload.clone());
            deliveries += 1;
        }
        state.delivered += deliveries;
    }

    fn poll_for(&self, id: u64) -> Option<Bytes> {
        let mut state = self.state.lock();
        state
            .inboxes
            .iter_mut()
            .find(|i| i.id == id)
            .and_then(|i| i.queue.pop_front())
    }

    fn unsubscribe(&self, id: u64) {
        self.state.lock().inboxes.retain(|i| i.id != id);
    }
}

/// Membership in a multicast channel; leaves the channel on drop.
pub struct McastSubscription {
    bus: Arc<McastBus>,
    id: u64,
}

impl McastSubscription {
    /// Send a packet to every other subscriber.
    pub fn publish(&self, payload: Bytes) {
        self.bus.publish_from(self.id, &payload);
    }

    /// Receive the next queued packet, if any.
    pub fn poll(&self) -> Option<Bytes> {
        self.bus.poll_for(self.id)
    }

    /// Receive everything queued.
    pub fn drain(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(pkt) = self.poll() {
            out.push(pkt);
        }
        out
    }

    /// This subscriber's channel-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for McastSubscription {
    fn drop(&mut self) {
        self.bus.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_all_other_subscribers() {
        let bus = McastBus::new(1);
        let a = bus.subscribe();
        let b = bus.subscribe();
        let c = bus.subscribe();
        a.publish(Bytes::from_static(b"hello"));
        assert_eq!(a.poll(), None, "sender must not hear itself");
        assert_eq!(b.poll().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(c.poll().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(bus.counters(), (1, 2));
    }

    #[test]
    fn packets_queue_in_order() {
        let bus = McastBus::new(1);
        let a = bus.subscribe();
        let b = bus.subscribe();
        a.publish(Bytes::from_static(b"1"));
        a.publish(Bytes::from_static(b"2"));
        let got = b.drain();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"1"), Bytes::from_static(b"2")]
        );
        assert!(b.drain().is_empty());
    }

    #[test]
    fn unsubscribe_on_drop() {
        let bus = McastBus::new(1);
        let a = bus.subscribe();
        {
            let _b = bus.subscribe();
            assert_eq!(bus.subscriber_count(), 2);
        }
        assert_eq!(bus.subscriber_count(), 1);
        a.publish(Bytes::from_static(b"x"));
        assert_eq!(bus.counters().1, 0, "no deliveries after unsubscribe");
    }

    #[test]
    fn loss_drops_a_fraction() {
        let bus = McastBus::new(42);
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.set_loss(0.5);
        for _ in 0..1000 {
            a.publish(Bytes::from_static(b"p"));
        }
        let received = b.drain().len();
        assert!((350..650).contains(&received), "received {received}");
        let (published, delivered) = bus.counters();
        assert_eq!(published, 1000);
        assert_eq!(delivered as usize, received);
    }

    #[test]
    fn ids_are_unique() {
        let bus = McastBus::new(1);
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_ne!(a.id(), b.id());
    }
}
