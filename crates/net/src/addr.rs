//! Logical endpoint addresses.

use std::fmt;

/// A logical endpoint address.
///
/// On the simulated network any string is a valid address (conventionally
/// `cluster/node` for gmond endpoints and a bare name for gmetad ones).
/// On the TCP transport the string must be a `host:port` socket address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub String);

impl Addr {
    /// Construct an address.
    pub fn new(addr: impl Into<String>) -> Self {
        Addr(addr.into())
    }

    /// The address as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this address sits under a `prefix/` namespace — used to
    /// partition a whole cluster at once in the simulator.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.0 == prefix
            || self
                .0
                .strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('/'))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Addr {
    fn from(s: &str) -> Self {
        Addr(s.to_string())
    }
}

impl From<String> for Addr {
    fn from(s: String) -> Self {
        Addr(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_respects_separators() {
        let addr = Addr::new("meteor/node-3");
        assert!(addr.has_prefix("meteor"));
        assert!(!addr.has_prefix("met"));
        assert!(!addr.has_prefix("meteor/node-33"));
        assert!(Addr::new("meteor").has_prefix("meteor"));
    }

    #[test]
    fn conversions() {
        let a: Addr = "x:8649".into();
        assert_eq!(a.as_str(), "x:8649");
        assert_eq!(a.to_string(), "x:8649");
        let b: Addr = String::from("y").into();
        assert_eq!(b, Addr::new("y"));
    }
}
