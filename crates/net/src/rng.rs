//! A tiny deterministic RNG (SplitMix64) for fault injection.
//!
//! The simulator must be reproducible run-to-run, so fault decisions come
//! from an explicit seeded generator rather than ambient randomness.

/// SplitMix64: tiny, fast, and plenty random for loss injection.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, probability: f64) -> bool {
        probability > 0.0 && self.next_f64() < probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_edge_cases() {
        let mut rng = SplitMix64::new(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
