//! Transport substrate for the monitoring tree.
//!
//! Ganglia's wide-area traffic is request/response: a gmetad connects to a
//! child (a cluster gmond or another gmetad), optionally sends a query,
//! and reads an XML report (paper §1, fig 1). This crate abstracts that
//! exchange behind [`Transport`] with two implementations:
//!
//! * [`SimNet`] — a deterministic in-memory network used by the tests and
//!   by the paper-reproduction experiments. It supports the failure modes
//!   the paper cares about (node stop failures, intermittent failures,
//!   whole-cluster partitions, §2.1) and records per-endpoint traffic
//!   statistics so experiments can verify the O(m)-vs-O(CHm) reduction in
//!   upstream data volume (§3.2).
//! * [`TcpTransport`] — a real `std::net` TCP implementation with the
//!   gmetad wire protocol (one request line, XML response, close), for
//!   running an actual distributed deployment.
//!
//! [`McastBus`] models the local-area UDP multicast channel gmond agents
//! use to exchange metric packets within a cluster, with configurable
//! packet loss.

pub mod addr;
pub mod error;
pub mod mcast;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use addr::Addr;
pub use error::NetError;
pub use mcast::{McastBus, McastSubscription};
pub use sim::SimNet;
pub use stats::{AddrStats, TrafficReport};
pub use tcp::TcpTransport;
pub use transport::{FetchBuffer, RequestHandler, ServerGuard, Transport};
