//! Per-endpoint traffic accounting.
//!
//! The N-level design's headline property is a reduction in "the amount
//! of information sent along edges of the monitoring tree" (paper §3.2):
//! O(m) upstream per node instead of O(CHm) at the root. The simulated
//! network counts request/response bytes per endpoint so experiments can
//! check the property directly rather than inferring it from CPU time.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::addr::Addr;

/// Counters for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddrStats {
    /// Requests served by this endpoint.
    pub requests_served: u64,
    /// Bytes this endpoint sent in responses.
    pub bytes_served: u64,
    /// Requests this endpoint failed to serve (down/partitioned/dropped).
    pub failures: u64,
}

/// Shared traffic counters for a simulated network.
#[derive(Debug, Default)]
pub struct TrafficReport {
    inner: Mutex<HashMap<Addr, AddrStats>>,
}

impl TrafficReport {
    /// Record a served request of `response_bytes`.
    pub fn record_served(&self, addr: &Addr, response_bytes: usize) {
        let mut map = self.inner.lock();
        let stats = map.entry(addr.clone()).or_default();
        stats.requests_served += 1;
        stats.bytes_served += response_bytes as u64;
    }

    /// Record a failed exchange.
    pub fn record_failure(&self, addr: &Addr) {
        self.inner.lock().entry(addr.clone()).or_default().failures += 1;
    }

    /// Counters for one endpoint (zeroes if never seen).
    pub fn get(&self, addr: &Addr) -> AddrStats {
        self.inner.lock().get(addr).copied().unwrap_or_default()
    }

    /// Snapshot of every endpoint's counters.
    pub fn snapshot(&self) -> HashMap<Addr, AddrStats> {
        self.inner.lock().clone()
    }

    /// Total bytes served across all endpoints.
    pub fn total_bytes_served(&self) -> u64 {
        self.inner.lock().values().map(|s| s.bytes_served).sum()
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let report = TrafficReport::default();
        let a = Addr::new("gmeta-root");
        report.record_served(&a, 100);
        report.record_served(&a, 50);
        report.record_failure(&a);
        let stats = report.get(&a);
        assert_eq!(stats.requests_served, 2);
        assert_eq!(stats.bytes_served, 150);
        assert_eq!(stats.failures, 1);
        assert_eq!(report.total_bytes_served(), 150);
    }

    #[test]
    fn unseen_addr_is_zero() {
        let report = TrafficReport::default();
        assert_eq!(report.get(&Addr::new("nobody")), AddrStats::default());
    }

    #[test]
    fn reset_clears() {
        let report = TrafficReport::default();
        report.record_served(&Addr::new("a"), 10);
        report.reset();
        assert_eq!(report.total_bytes_served(), 0);
        assert!(report.snapshot().is_empty());
    }
}
