//! The transport abstraction: serve and fetch.

use std::sync::Arc;
use std::time::Duration;

use crate::addr::Addr;
use crate::error::NetError;

/// Serves requests at one endpoint.
///
/// The request is the gmetad wire protocol's single query line: empty (or
/// `/`) for a full dump, or a path query like `/meteor/compute-0-0`. The
/// response is a complete Ganglia XML document.
pub trait RequestHandler: Send + Sync {
    /// Produce the response for one request.
    fn handle(&self, request: &str) -> String;
}

/// Closures are handlers.
impl<F> RequestHandler for F
where
    F: Fn(&str) -> String + Send + Sync,
{
    fn handle(&self, request: &str) -> String {
        self(request)
    }
}

/// Keeps a served endpoint alive; dropping it unbinds the address.
pub trait ServerGuard: Send {
    /// The bound address (useful when binding to an ephemeral port).
    fn addr(&self) -> Addr;
}

/// A bidirectional request/response transport.
pub trait Transport: Send + Sync {
    /// Bind `handler` at `addr`. The endpoint lives until the returned
    /// guard is dropped.
    fn serve(
        &self,
        addr: &Addr,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<Box<dyn ServerGuard>, NetError>;

    /// Perform one exchange: send `request` to `addr`, await the full
    /// response.
    fn fetch(&self, addr: &Addr, request: &str, timeout: Duration) -> Result<String, NetError>;
}
