//! The transport abstraction: serve and fetch.

use std::sync::Arc;
use std::time::Duration;

use crate::addr::Addr;
use crate::error::NetError;

/// Serves requests at one endpoint.
///
/// The request is the gmetad wire protocol's single query line: empty (or
/// `/`) for a full dump, or a path query like `/meteor/compute-0-0`. The
/// response is a complete Ganglia XML document.
pub trait RequestHandler: Send + Sync {
    /// Produce the response for one request.
    fn handle(&self, request: &str) -> String;
}

/// Closures are handlers.
impl<F> RequestHandler for F
where
    F: Fn(&str) -> String + Send + Sync,
{
    fn handle(&self, request: &str) -> String {
        self(request)
    }
}

/// Keeps a served endpoint alive; dropping it unbinds the address.
pub trait ServerGuard: Send {
    /// The bound address (useful when binding to an ephemeral port).
    fn addr(&self) -> Addr;
}

/// A reusable response buffer for [`Transport::fetch_into`].
///
/// Keeps its allocation across poll rounds and remembers the previous
/// response's size, so steady-state fetches read into a right-sized
/// buffer instead of growing a fresh `String` from empty every time
/// (a gmond report's size barely moves between rounds).
#[derive(Debug, Default)]
pub struct FetchBuffer {
    pub(crate) text: String,
    pub(crate) hint: usize,
}

impl FetchBuffer {
    /// An empty buffer with no size hint yet.
    pub fn new() -> FetchBuffer {
        FetchBuffer::default()
    }

    /// The most recent response (valid after a successful
    /// [`Transport::fetch_into`]).
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Length in bytes of the held response.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the buffer holds no response.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The capacity hint learned from the previous response.
    pub fn hint(&self) -> usize {
        self.hint
    }

    /// Current allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.text.capacity()
    }

    /// Take the response out, consuming the buffer.
    pub fn into_string(self) -> String {
        self.text
    }

    /// Clear the text and pre-reserve to the learned hint, ready for a
    /// new response.
    pub(crate) fn prepare(&mut self) {
        self.text.clear();
        if self.text.capacity() < self.hint {
            self.text.reserve(self.hint - self.text.capacity());
        }
    }

    /// Record a completed response of `len` bytes.
    pub(crate) fn learn(&mut self, len: usize) {
        self.hint = len;
    }
}

/// A bidirectional request/response transport.
pub trait Transport: Send + Sync {
    /// Bind `handler` at `addr`. The endpoint lives until the returned
    /// guard is dropped.
    fn serve(
        &self,
        addr: &Addr,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<Box<dyn ServerGuard>, NetError>;

    /// Perform one exchange: send `request` to `addr`, await the full
    /// response.
    fn fetch(&self, addr: &Addr, request: &str, timeout: Duration) -> Result<String, NetError>;

    /// Like [`Transport::fetch`], but reading into a caller-owned
    /// reusable buffer. Returns the bytes read. On error the buffer's
    /// contents are unspecified (the next call clears it).
    ///
    /// The default delegates to [`Transport::fetch`]; transports that
    /// stream (like TCP) override it to reuse `buf`'s allocation and its
    /// size hint from the previous response.
    fn fetch_into(
        &self,
        addr: &Addr,
        request: &str,
        timeout: Duration,
        buf: &mut FetchBuffer,
    ) -> Result<usize, NetError> {
        buf.text = self.fetch(addr, request, timeout)?;
        buf.learn(buf.text.len());
        Ok(buf.text.len())
    }
}
