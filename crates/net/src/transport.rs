//! The transport abstraction: serve and fetch.

use std::sync::Arc;
use std::time::Duration;

use crate::addr::Addr;
use crate::error::NetError;

/// Serves requests at one endpoint.
///
/// The request is the gmetad wire protocol's single query line: empty (or
/// `/`) for a full dump, or a path query like `/meteor/compute-0-0`. The
/// response is a complete Ganglia XML document.
pub trait RequestHandler: Send + Sync {
    /// Produce the response for one request.
    fn handle(&self, request: &str) -> String;
}

/// Closures are handlers.
impl<F> RequestHandler for F
where
    F: Fn(&str) -> String + Send + Sync,
{
    fn handle(&self, request: &str) -> String {
        self(request)
    }
}

/// Keeps a served endpoint alive; dropping it unbinds the address.
pub trait ServerGuard: Send {
    /// The bound address (useful when binding to an ephemeral port).
    fn addr(&self) -> Addr;
}

/// A reusable response buffer for [`Transport::fetch_into`].
///
/// Keeps its allocation across poll rounds and remembers the previous
/// response's size, so steady-state fetches read into a right-sized
/// buffer instead of growing a fresh `String` from empty every time
/// (a gmond report's size barely moves between rounds).
#[derive(Debug, Default)]
pub struct FetchBuffer {
    pub(crate) text: String,
    pub(crate) hint: usize,
}

impl FetchBuffer {
    /// An empty buffer with no size hint yet.
    pub fn new() -> FetchBuffer {
        FetchBuffer::default()
    }

    /// The most recent response (valid after a successful
    /// [`Transport::fetch_into`]).
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Length in bytes of the held response.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the buffer holds no response.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The capacity hint learned from the previous response.
    pub fn hint(&self) -> usize {
        self.hint
    }

    /// Current allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.text.capacity()
    }

    /// Take the response out, consuming the buffer.
    pub fn into_string(self) -> String {
        self.text
    }

    /// Clear the text and right-size the allocation for a new response:
    /// reserve up to the learned hint, and release capacity that a
    /// one-off huge response left behind once the decayed hint shows it
    /// is no longer representative (capacity > 4x hint). Without the
    /// release, one pathological dump would pin its allocation for the
    /// life of the poller.
    pub(crate) fn prepare(&mut self) {
        self.text.clear();
        if self.hint > 0 && self.text.capacity() > self.hint.saturating_mul(4) {
            self.text.shrink_to(self.hint + self.hint / 8);
        }
        if self.text.capacity() < self.hint {
            self.text.reserve(self.hint - self.text.capacity());
        }
    }

    /// Record a completed response of `len` bytes. The hint is a high
    /// watermark with decay: it jumps up to a larger response
    /// immediately, but drifts back down by 1/8 of the gap per round so
    /// a single spike cannot inflate every future reservation.
    pub(crate) fn learn(&mut self, len: usize) {
        if len >= self.hint {
            self.hint = len;
        } else {
            self.hint -= (self.hint - len) / 8;
        }
    }
}

/// A bidirectional request/response transport.
pub trait Transport: Send + Sync {
    /// Bind `handler` at `addr`. The endpoint lives until the returned
    /// guard is dropped.
    fn serve(
        &self,
        addr: &Addr,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<Box<dyn ServerGuard>, NetError>;

    /// Perform one exchange: send `request` to `addr`, await the full
    /// response.
    fn fetch(&self, addr: &Addr, request: &str, timeout: Duration) -> Result<String, NetError>;

    /// Like [`Transport::fetch`], but reading into a caller-owned
    /// reusable buffer. Returns the bytes read. On error the buffer's
    /// contents are unspecified (the next call clears it).
    ///
    /// The default delegates to [`Transport::fetch`]; transports that
    /// stream (like TCP) override it to reuse `buf`'s allocation and its
    /// size hint from the previous response.
    fn fetch_into(
        &self,
        addr: &Addr,
        request: &str,
        timeout: Duration,
        buf: &mut FetchBuffer,
    ) -> Result<usize, NetError> {
        buf.text = self.fetch(addr, request, timeout)?;
        buf.learn(buf.text.len());
        Ok(buf.text.len())
    }
}

#[cfg(test)]
mod tests {
    use super::FetchBuffer;

    #[test]
    fn hint_jumps_up_and_decays_down() {
        let mut buf = FetchBuffer::new();
        buf.learn(10_000);
        assert_eq!(buf.hint(), 10_000);
        // A spike raises the watermark immediately...
        buf.learn(1_000_000);
        assert_eq!(buf.hint(), 1_000_000);
        // ...then steady small responses decay it geometrically.
        let mut last = buf.hint();
        for _ in 0..64 {
            buf.learn(10_000);
            assert!(buf.hint() <= last);
            last = buf.hint();
        }
        assert!(
            buf.hint() < 40_000,
            "watermark should decay near steady-state size, got {}",
            buf.hint()
        );
    }

    #[test]
    fn prepare_releases_capacity_after_spike() {
        let mut buf = FetchBuffer::new();
        // Simulate one huge response pinning a large allocation.
        buf.text = String::with_capacity(1 << 20);
        buf.learn(1 << 20);
        // Steady small responses decay the hint until the capacity is
        // more than 4x the watermark, at which point prepare shrinks.
        for _ in 0..64 {
            buf.learn(8_192);
            buf.prepare();
        }
        assert!(
            buf.capacity() < (1 << 20) / 4,
            "oversized allocation should be released, capacity {}",
            buf.capacity()
        );
        // The buffer still reserves to the hint for the next read.
        assert!(buf.capacity() >= buf.hint());
    }
}
