//! Robustness: gmetad must stay sane when children serve degenerate —
//! but well-formed — reports. Monitoring the monitor's failure handling
//! is the whole point of the wide-area design.

use std::sync::Arc;
use std::time::Duration;

use ganglia_core::{DataSourceCfg, Gmetad, GmetadConfig, SourceData};
use ganglia_metrics::parse_document;
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, SimNet};
use parking_lot::Mutex;

/// Serve a mutable canned body at an address.
fn serve_canned(
    net: &Arc<SimNet>,
    addr: &str,
) -> (Arc<Mutex<String>>, Box<dyn ganglia_net::ServerGuard>) {
    let body = Arc::new(Mutex::new(String::new()));
    let handler_body = Arc::clone(&body);
    let guard = net
        .serve(
            &Addr::new(addr),
            Arc::new(move |_: &str| handler_body.lock().clone()),
        )
        .expect("bind");
    (body, guard)
}

fn daemon(_net: &Arc<SimNet>, addr: &str) -> Arc<Gmetad> {
    Gmetad::new(
        GmetadConfig::new("sdsc")
            .with_source(DataSourceCfg::new("child", vec![Addr::new(addr)]).unwrap()),
    )
}

#[test]
fn empty_report_is_a_valid_empty_source() {
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond"></GANGLIA_XML>"#.into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15)[0]
        .as_ref()
        .expect("empty is legal");
    let state = gmetad.store().get("child").expect("present");
    assert_eq!(state.host_count(), 0);
    assert_eq!(state.summary.hosts_total(), 0);
    // Queries still answer.
    let xml = gmetad.query("/");
    assert!(parse_document(&xml).is_ok());
}

#[test]
fn empty_cluster_is_fine() {
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() =
        r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond"><CLUSTER NAME="ghost-town"/></GANGLIA_XML>"#
            .into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15)[0].as_ref().expect("ok");
    assert_eq!(gmetad.store().get("child").unwrap().host_count(), 0);
    assert!(parse_document(&gmetad.query("/child")).is_ok());
}

#[test]
fn reserved_characters_in_names_survive_the_round_trip() {
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond">
        <CLUSTER NAME="R&amp;D &lt;west&gt;">
          <HOST NAME="node &quot;a&quot;" IP="1.1.1.1" TN="1" TMAX="20">
            <METRIC NAME="weird&apos;metric" VAL="1.5" TYPE="float"/>
          </HOST>
        </CLUSTER></GANGLIA_XML>"#
        .into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15)[0].as_ref().expect("ok");
    let state = gmetad.store().get("child").expect("present");
    let SourceData::Cluster(cluster) = &state.data else {
        panic!()
    };
    assert_eq!(cluster.name, "R&D <west>");
    let host = state.host("node \"a\"").expect("host indexed");
    assert!(host.metric("weird'metric").is_some());
    // The full dump re-escapes correctly and reparses.
    let xml = gmetad.query("/");
    let doc = parse_document(&xml).expect("round-trips");
    assert_eq!(doc.host_count(), 1);
}

#[test]
fn source_changing_shape_between_polls_is_replaced_cleanly() {
    // A child that is a gmond one round and a gmetad the next (daemon
    // swap on the same address) must simply replace the snapshot.
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond">
        <CLUSTER NAME="c"><HOST NAME="h" IP="1.1.1.1" TN="1" TMAX="20">
        <METRIC NAME="load_one" VAL="1.0" TYPE="float"/></HOST></CLUSTER></GANGLIA_XML>"#
        .into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15)[0].as_ref().expect("cluster poll");
    assert!(matches!(
        gmetad.store().get("child").unwrap().data,
        SourceData::Cluster(_)
    ));

    *body.lock() = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmetad">
        <GRID NAME="g" AUTHORITY="http://g/">
          <CLUSTER NAME="c"><HOSTS UP="5" DOWN="0"/>
          <METRICS NAME="load_one" SUM="5" NUM="5" TYPE="float"/></CLUSTER>
        </GRID></GANGLIA_XML>"#
        .into();
    gmetad.poll_all(&net, 30)[0].as_ref().expect("grid poll");
    let state = gmetad.store().get("child").unwrap();
    assert!(matches!(state.data, SourceData::Grid(_)));
    assert_eq!(state.summary.hosts_up, 5);
}

#[test]
fn duplicate_host_names_do_not_break_the_index() {
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond">
        <CLUSTER NAME="c">
          <HOST NAME="dup" IP="1.1.1.1" TN="1" TMAX="20">
            <METRIC NAME="load_one" VAL="1.0" TYPE="float"/></HOST>
          <HOST NAME="dup" IP="1.1.1.2" TN="1" TMAX="20">
            <METRIC NAME="load_one" VAL="2.0" TYPE="float"/></HOST>
        </CLUSTER></GANGLIA_XML>"#
        .into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15)[0].as_ref().expect("ok");
    let state = gmetad.store().get("child").unwrap();
    assert_eq!(state.host_count(), 2, "both rows kept");
    // The index resolves to one of them deterministically (the last).
    let host = state.host("dup").expect("indexed");
    assert_eq!(host.ip, "1.1.1.2");
    // Summaries count both.
    assert_eq!(state.summary.metric("load_one").unwrap().num, 2);
}

#[test]
fn unsolicited_huge_queries_do_not_oom_the_daemon() {
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() =
        r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond"><CLUSTER NAME="c"/></GANGLIA_XML>"#.into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15);
    // A pathological path: thousands of segments.
    let deep = format!("/{}", vec!["x"; 10_000].join("/"));
    let xml = gmetad.query(&deep);
    assert!(parse_document(&xml).is_ok());
    // And a pathological pattern (NFA engine: no blowup).
    let start = std::time::Instant::now();
    let xml = gmetad.query("/~(a*)*b/x");
    assert!(parse_document(&xml).is_ok());
    assert!(start.elapsed() < Duration::from_secs(1));
}

#[test]
fn slow_child_does_not_block_queries() {
    // Queries are served from the last snapshot even while a poll is in
    // flight (two time scales, §3.3.1). Simulate with a handler that
    // parks the polling thread.
    let net = SimNet::new(1);
    let (body, _guard) = serve_canned(&net, "child/n0");
    *body.lock() = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond">
        <CLUSTER NAME="c"><HOST NAME="h" IP="1.1.1.1" TN="1" TMAX="20">
        <METRIC NAME="load_one" VAL="1.0" TYPE="float"/></HOST></CLUSTER></GANGLIA_XML>"#
        .into();
    let gmetad = daemon(&net, "child/n0");
    gmetad.poll_all(&net, 15);

    let slow_net = Arc::clone(&net);
    let slow_gate = Arc::new(std::sync::Barrier::new(2));
    let gate_for_handler = Arc::clone(&slow_gate);
    let _slow_guard = net
        .serve(
            &Addr::new("slow/n0"),
            Arc::new(move |_: &str| {
                gate_for_handler.wait(); // hold the poll until the test is done querying
                r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmond"><CLUSTER NAME="s"/></GANGLIA_XML>"#
                    .to_string()
            }),
        )
        .expect("bind");
    gmetad.add_source(DataSourceCfg::new("slow", vec![Addr::new("slow/n0")]).unwrap());

    let daemon_for_thread = Arc::clone(&gmetad);
    let poller = std::thread::spawn(move || {
        daemon_for_thread.poll_all(&slow_net, 30);
    });
    // While the poll is parked inside the slow handler, queries answer
    // instantly from the last snapshot.
    let xml = gmetad.query("/child/h");
    assert!(xml.contains("load_one"));
    slow_gate.wait();
    poller.join().expect("poll thread finishes");
}
