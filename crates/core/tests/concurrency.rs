//! The two time-scales under real concurrency (§3.3.1): query threads
//! hammer the daemon while the poller continuously replaces snapshots.
//! Every response must be a complete, well-formed document from SOME
//! fully-parsed snapshot — never a torn one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ganglia_core::{DataSourceCfg, Gmetad, GmetadConfig};
use ganglia_gmond::pseudo::ServedPseudoCluster;
use ganglia_gmond::PseudoGmond;
use ganglia_metrics::parse_document;
use ganglia_net::SimNet;

#[test]
fn queries_see_only_complete_snapshots_under_concurrent_polling() {
    let net = SimNet::new(1);
    let served = ServedPseudoCluster::serve(&net, PseudoGmond::new("meteor", 40, 7, 0), 1);
    let gmetad = Gmetad::new(
        GmetadConfig::new("sdsc")
            .with_source(DataSourceCfg::new("meteor", served.addrs().to_vec()).unwrap()),
    );
    gmetad.poll_all(&net, 15);

    let stop = Arc::new(AtomicBool::new(false));
    let queries_answered = Arc::new(AtomicU64::new(0));

    let mut workers = Vec::new();
    for worker in 0..4 {
        let gmetad = Arc::clone(&gmetad);
        let stop = Arc::clone(&stop);
        let counter = Arc::clone(&queries_answered);
        workers.push(std::thread::spawn(move || {
            let queries = [
                "/",
                "/?filter=summary",
                "/meteor",
                "/meteor?filter=summary",
                "/meteor/meteor-0007",
            ];
            let mut i = worker;
            while !stop.load(Ordering::Relaxed) {
                let q = queries[i % queries.len()];
                i += 1;
                let xml = gmetad.query(q);
                let doc =
                    parse_document(&xml).unwrap_or_else(|e| panic!("torn response to {q}: {e}"));
                // A snapshot is either the old or the new poll — both
                // describe all 40 hosts.
                if q.starts_with("/meteor") && !q.contains("0007") {
                    assert_eq!(doc.host_count(), 40);
                }
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Poll continuously on the main thread: 60 rounds of fresh data.
    for round in 2..=60u64 {
        served.advance(round * 15);
        for result in gmetad.poll_all(&net, round * 15) {
            result.expect("poll ok");
        }
    }
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("no query thread panicked");
    }
    assert!(
        queries_answered.load(Ordering::Relaxed) > 100,
        "query threads made real progress concurrently with polling"
    );
}
