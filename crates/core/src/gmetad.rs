//! The assembled gmetad daemon.
//!
//! Two time scales, per §3.3.1: the **summarization time scale** (polling
//! children, parsing, summarizing, archiving — driven by
//! [`Gmetad::poll_all`], either from the background thread or from a
//! deterministic experiment loop) and the **query time scale**
//! ([`Gmetad::query`], always answered from the latest fully-parsed
//! snapshots). The two never block each other beyond pointer swaps.
//!
//! Poll rounds fan out across sources: each source has its own
//! independently-locked poller slot and archive shard, and
//! [`Gmetad::poll_all`] drives them from a scoped worker pool
//! ([`GmetadConfig::poll_concurrency`] workers), so one slow source
//! delays the round by *its* latency, not the sum of everyone's.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use ganglia_metrics::model::{ClusterNode, HostNode, MetricEntry};
use ganglia_metrics::MetricValue;
use ganglia_net::transport::{RequestHandler, ServerGuard, Transport};
use ganglia_net::Addr;
use ganglia_query::gql::{error_xml, render_xml};
use ganglia_query::{Filter, GqlQuery, Query, RootRef, RowSet};
use ganglia_rrd::{ConsolidationFn, MetricKey, Series};
use ganglia_serve::{FrontTier, ServeOptions, SubscriptionRegistry};
use ganglia_telemetry::{LogicalClock, Registry, Snapshot, Tracer};

use crate::archive::{
    archive_source, write_unknowns, ArchiveRecovery, ArchiveShards, CheckpointTotals, ShardJournal,
};
use crate::config::{ArchiveMode, GmetadConfig};
use crate::error::GmetadError;
use crate::health::BreakerState;
use crate::instrument::{WorkCategory, WorkMeter};
use crate::poller::{RoundBudget, SourcePoller};
use crate::query_engine;
use crate::store::{Degradation, SourceState, SourceStatus, Store};

pub use crate::archive::ArchiveSpecFactory;

/// One row of the per-source health/statistics dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollerStats {
    /// Source name.
    pub name: String,
    /// Lifetime successful polls.
    pub polls_ok: u64,
    /// Lifetime fully-failed polls.
    pub polls_failed: u64,
    /// Lifetime backoff rounds (every breaker open, nothing but the
    /// steady-retry probe ran).
    pub polls_backoff: u64,
    /// Lifetime endpoint fail-overs.
    pub failovers: u64,
    /// Consecutive fully-failed rounds (0 when healthy).
    pub consecutive_failures: u32,
    /// Breaker state of the currently preferred endpoint.
    pub breaker: BreakerState,
    /// Staleness phase of the stored snapshot, if one exists.
    pub phase: Option<SourceStatus>,
}

/// The wide-area monitor daemon.
pub struct Gmetad {
    config: GmetadConfig,
    store: Store,
    /// Per-source archive shards, so parallel workers archive without
    /// serializing on one global RRD lock.
    archives: ArchiveShards,
    meter: Arc<WorkMeter>,
    /// One independently-locked slot per source, so a round's workers
    /// poll different sources concurrently. The outer lock only guards
    /// membership (add/remove source).
    pollers: RwLock<Vec<Arc<Mutex<SourcePoller>>>>,
    /// Logical "now" used when serving queries (set by the poll driver).
    clock: AtomicU64,
    /// Self-telemetry: the registry behind `meter`, shared so ad-hoc
    /// instruments and CPU accounting land in one snapshot.
    registry: Arc<Registry>,
    /// Span factory; event timestamps come from the logical clock so
    /// simulated runs produce deterministic event logs.
    tracer: Tracer,
    logical_clock: LogicalClock,
    /// `queries_total` at the end of the previous round, for the
    /// `self.queries_per_round` delta.
    queries_at_last_round: AtomicU64,
    /// Logical time of the last journal group-commit (journal mode).
    last_commit_at: AtomicU64,
    /// Logical time of the last archive checkpoint (journal mode).
    last_checkpoint_at: AtomicU64,
    /// Continuous-query subscriptions, created on first use (the
    /// registry needs an `Arc<Gmetad>` to evaluate against).
    subs: OnceLock<Arc<SubscriptionRegistry>>,
}

/// A poll worker group-commits its shard's journal early once this many
/// bytes are pending, bounding the window one fsync covers; smaller
/// batches wait for the round-end commit.
const INLINE_COMMIT_BYTES: u64 = 1 << 20;

impl Gmetad {
    /// Assemble a daemon from its configuration.
    pub fn new(config: GmetadConfig) -> Arc<Gmetad> {
        Self::with_archive_spec(config, None)
    }

    /// Assemble a daemon with a custom RRD spec factory (experiments use
    /// compact archives; the default is the Ganglia ladder).
    pub fn with_archive_spec(
        config: GmetadConfig,
        spec: Option<ArchiveSpecFactory>,
    ) -> Arc<Gmetad> {
        let persist_dir = match &config.archive {
            ArchiveMode::Directory(dir) => Some(dir.clone()),
            _ => None,
        };
        let pollers = config
            .data_sources
            .iter()
            .cloned()
            .map(|cfg| Arc::new(Mutex::new(SourcePoller::new(cfg))))
            .collect();
        let registry = Arc::new(Registry::new());
        let logical_clock = LogicalClock::new();
        let tracer = Tracer::new(Arc::clone(&registry), logical_clock.clone()).with_event_log(256);
        Arc::new(Gmetad {
            store: Store::with_shards(
                config.resolved_store_shards(),
                config.summary_rebuild_rounds,
            ),
            archives: ArchiveShards::new(spec, persist_dir).with_journal(config.archive_journal),
            meter: Arc::new(WorkMeter::with_registry(Arc::clone(&registry))),
            pollers: RwLock::new(pollers),
            clock: AtomicU64::new(0),
            registry,
            tracer,
            logical_clock,
            queries_at_last_round: AtomicU64::new(0),
            last_commit_at: AtomicU64::new(0),
            last_checkpoint_at: AtomicU64::new(0),
            subs: OnceLock::new(),
            config,
        })
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &GmetadConfig {
        &self.config
    }

    /// The store (read access for tests and tools).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The CPU-accounting meter.
    pub fn meter(&self) -> &Arc<WorkMeter> {
        &self.meter
    }

    /// The telemetry registry (counters, gauges, histograms).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The span tracer (bounded event log included).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Point-in-time copy of every telemetry instrument.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The `TELEMETRY` document served for `/?filter=telemetry`.
    pub fn telemetry_xml(&self) -> String {
        self.telemetry_snapshot()
            .to_xml(&format!("gmetad:{}", self.config.grid_name))
    }

    /// The trace document served for `/?filter=trace`: this daemon's
    /// bounded span-event log as JSON, oldest first, each event carrying
    /// the poll-round id, source, stage, logical open/close stamps,
    /// elapsed microseconds, and outcome. `round` is the id of the
    /// round in progress (or just finished) when the query arrived, so
    /// a client can correlate the answer it got with the round that
    /// produced the data.
    pub fn trace_json(&self) -> String {
        format!(
            "{{\"source\":{},\"round\":{},\"events\":{}}}",
            ganglia_telemetry::json_string(&format!("gmetad:{}", self.config.grid_name)),
            self.tracer.current_round(),
            self.tracer.events_json(),
        )
    }

    /// Set the logical clock (experiment drivers).
    pub fn set_clock(&self, now: u64) {
        self.clock.store(now, Ordering::Relaxed);
        self.logical_clock.set(now);
    }

    /// The logical clock.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Poll every data source once at time `now`, updating the store and
    /// archives. Returns one result per source, in configuration order.
    ///
    /// Sources are polled by [`GmetadConfig::effective_concurrency`]
    /// scoped workers pulling slots off a shared cursor; with one worker
    /// (or one source) the round runs inline, sequentially, exactly as
    /// before. When [`GmetadConfig::round_deadline_secs`] is set, every
    /// attempt's timeout is clamped to the round's remaining budget.
    pub fn poll_all(&self, transport: &dyn Transport, now: u64) -> Vec<Result<(), GmetadError>> {
        self.set_clock(now);
        // Every span opened during this round — the round itself, each
        // source's poll, the query spans racing it — carries this id,
        // so the trace log can be sliced by round.
        self.tracer.begin_round();
        let round = self.tracer.span("round");
        let round_start = Instant::now();
        let deadline = Duration::from_secs(self.config.round_deadline_secs);
        let budget = if deadline.is_zero() {
            RoundBudget::unbounded()
        } else {
            RoundBudget::until(round_start + deadline)
        };
        // Snapshot the membership so a concurrent add/remove can't shift
        // result indices mid-round; each slot stays individually locked.
        let slots: Vec<Arc<Mutex<SourcePoller>>> =
            self.pollers.read().iter().map(Arc::clone).collect();
        let workers = self.config.effective_concurrency(slots.len());
        let results: Vec<Result<(), GmetadError>> = if workers <= 1 || slots.len() <= 1 {
            slots
                .iter()
                .map(|slot| self.poll_slot(slot, transport, now, &budget))
                .collect()
        } else {
            let cells: Vec<OnceLock<Result<(), GmetadError>>> =
                (0..slots.len()).map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(idx) else { break };
                        let result = self.poll_slot(slot, transport, now, &budget);
                        cells[idx].set(result).expect("each slot polled once");
                    });
                }
            });
            cells
                .into_iter()
                .map(|cell| cell.into_inner().expect("every slot polled"))
                .collect()
        };
        if !deadline.is_zero() {
            // How far past its budget the round actually ran: 0 when the
            // deadline held, the overrun when a source blew through it.
            self.registry
                .histogram("round_stall_us")
                .record_duration(round_start.elapsed().saturating_sub(deadline));
        }
        self.registry.gauge("sources").set(slots.len() as u64);
        self.registry.counter("rounds_total").inc();
        self.publish_store_stats();
        self.registry
            .gauge("archives")
            .set(self.archive_count() as u64);
        // Intern-table effectiveness. The table is process-global (atoms
        // are shared across every daemon in this process), so these are
        // gauges mirroring the global counters, not per-daemon deltas.
        let interning = ganglia_metrics::intern_stats();
        self.registry.gauge("ingest.atoms_live").set(interning.live);
        self.registry
            .gauge("ingest.intern_hits")
            .set(interning.hits);
        self.registry
            .gauge("ingest.intern_misses")
            .set(interning.misses);
        if self.archives.journal_enabled() {
            // Group commit: one fsync per shard covers the whole round's
            // updates, on the configured cadence (0 = every round). The
            // checkpoint applies journaled updates to the fixed-size
            // `.rrd` files and truncates the journals; both cadences run
            // on the logical clock so simulated rounds are deterministic.
            let last_commit = self.last_commit_at.load(Ordering::Relaxed);
            if now.saturating_sub(last_commit).saturating_mul(1000) >= self.config.archive_flush_ms
            {
                let _ = self.commit_archive_journal();
                self.last_commit_at.store(now, Ordering::Relaxed);
            }
            let last_checkpoint = self.last_checkpoint_at.load(Ordering::Relaxed);
            if now.saturating_sub(last_checkpoint) >= self.config.archive_checkpoint_secs {
                let _ = self.checkpoint_archives(now);
                self.last_checkpoint_at.store(now, Ordering::Relaxed);
            }
            let totals = self.archives.journal_totals();
            self.registry
                .gauge("archive.journal_bytes")
                .set(totals.durable_bytes);
            self.registry
                .gauge("archive.journal_pending_bytes")
                .set(totals.pending_bytes);
        }
        if self.config.self_telemetry {
            self.publish_self(now);
        }
        // Push continuous-query deltas for whatever this round changed.
        // After the store swaps (and after publish_self, so self.*
        // subscribers see this round's numbers), before the round span
        // closes — a push round-trip is bounded by one poll round.
        if let Some(subs) = self.subs.get() {
            self.meter
                .time(WorkCategory::QueryServe, || subs.run_round());
        }
        drop(round);
        results
    }

    /// Poll one source slot: the slot's own lock covers the fetch/parse,
    /// its archive shard's lock covers the archiving, and neither is
    /// held across the other longer than needed — so workers on other
    /// sources never wait behind this one.
    fn poll_slot(
        &self,
        slot: &Mutex<SourcePoller>,
        transport: &dyn Transport,
        now: u64,
        budget: &RoundBudget,
    ) -> Result<(), GmetadError> {
        let inflight = self.registry.gauge("poll_inflight");
        inflight.add(1);
        let slot_start = Instant::now();
        // Opened before the slot lock so the span times what the old
        // histogram did: lock wait included.
        let mut trace = self.tracer.span("round.poll");
        let mut poller = slot.lock();
        let name = poller.cfg().name.clone();
        trace.set_source(&name);
        let backoff_before = poller.polls_backoff;
        let outcome = poller.poll_bounded(
            transport,
            self.config.tree_mode,
            self.config.fetch_timeout,
            &self.config.retry,
            &self.meter,
            now,
            budget,
        );
        // A backoff round (every breaker open, only the steady-retry
        // probe ran) is near-free; its timing is kept apart so the real
        // per-round quantiles aren't diluted by no-op rounds.
        let idle = poller.polls_backoff != backoff_before;
        drop(poller);
        let result = match outcome {
            Ok(state) => {
                if self.config.archive != ArchiveMode::Off {
                    let shard = self.archives.shard(&name);
                    let mut set = shard.lock();
                    self.meter.time(WorkCategory::Archive, || {
                        archive_source(&mut set, &state, self.config.tree_mode, now)
                    });
                    // A very large source can outgrow the round-end group
                    // commit; fsync its shard early so the pending batch
                    // stays bounded. Other shards are untouched.
                    if set.journal_pending_bytes() >= INLINE_COMMIT_BYTES {
                        let commit_start = Instant::now();
                        match set.commit_journal() {
                            Ok(_) => {
                                self.registry.counter("archive.journal_commits_total").inc();
                                self.registry
                                    .histogram("archive.journal_commit_us")
                                    .record_duration(commit_start.elapsed());
                            }
                            Err(_) => {
                                self.registry.counter("archive.journal_errors_total").inc();
                            }
                        }
                    }
                }
                self.store.replace(state);
                Ok(())
            }
            Err(e) => {
                // Keep the last good snapshot and walk the staleness
                // lifecycle: Stale keeps serving the old data, Down
                // rewrites the summary so hosts_down propagates up the
                // tree, Expired prunes the snapshot entirely. Stale and
                // Down sources also record the downtime in the archives
                // (§3.1's zero records); an Expired source's archives
                // are dropped with its snapshot, so the `archives`
                // gauge tracks live sources instead of drifting.
                match self.store.degrade(&name, now, &self.config.lifecycle) {
                    Degradation::Stale | Degradation::Down
                        if self.config.archive != ArchiveMode::Off =>
                    {
                        if let Some(shard) = self.archives.get(&name) {
                            let mut set = shard.lock();
                            self.meter.time(WorkCategory::Archive, || {
                                write_unknowns(&mut set, &name, now)
                            });
                        }
                    }
                    Degradation::Expired => {
                        self.archives.remove(&name);
                    }
                    _ => {}
                }
                Err(e)
            }
        };
        let elapsed = slot_start.elapsed();
        // A backoff round reclassifies the trace span so its near-free
        // timing records under `round.poll_idle_us` (the span's drop
        // feeds the path-named histogram); real polls land in
        // `round.poll_us` with their outcome stamped for the trace log.
        let per_source = if idle {
            trace.set_path("round.poll_idle");
            trace.set_outcome("backoff");
            "round_idle_us"
        } else {
            if result.is_err() {
                trace.set_outcome("failed");
            }
            "round_us"
        };
        drop(trace);
        self.registry
            .histogram(&format!("source.{name}.{per_source}"))
            .record_duration(elapsed);
        inflight.sub(1);
        result
    }

    /// Mirror the store's operation counters into the registry after
    /// each round: shard layout as a gauge, monotone work counters as
    /// counters (advanced by the delta since the last mirror, so the
    /// registry stays a faithful running total without extra state).
    fn publish_store_stats(&self) {
        let stats = self.store.stats();
        self.registry.gauge("store.shards").set(stats.shards as u64);
        let mirror = |name: &str, total: u64| {
            let counter = self.registry.counter(name);
            counter.add(total.saturating_sub(counter.get()));
        };
        mirror("store.shard_replaces", stats.replaces);
        mirror("store.root_merges", stats.root_merges);
        mirror("store.root_merge_inputs", stats.root_merge_inputs);
        mirror("store.source_touches", stats.source_touches);
        mirror("store.list_rebuilds", stats.list_rebuilds);
        mirror("summary.delta_applied", stats.deltas_applied);
        mirror("summary.rebuilds", stats.summary_rebuilds);
    }

    /// Name of the synthetic cluster this daemon publishes its own
    /// telemetry under when `self_telemetry` is enabled.
    pub fn self_cluster_name(&self) -> String {
        format!("{}-monitor", self.config.grid_name)
    }

    /// Name of the synthetic host carrying the `self.*` metrics.
    pub fn self_host_name(&self) -> String {
        format!("{}-gmeta", self.config.grid_name)
    }

    /// "Monitor the monitor": distil the telemetry registry into
    /// ordinary Ganglia metrics on a synthetic `<grid>-monitor` cluster
    /// with one host, `<grid>-gmeta`, and feed it through the same
    /// store/archive path as any polled source. From there the metrics
    /// are summarized upward, archived to RRD, and answerable via path
    /// queries — the system monitors itself through its own data
    /// language.
    fn publish_self(&self, now: u64) {
        let snap = self.registry.snapshot();
        let queries_total = snap.counter("queries_total").unwrap_or(0);
        let queries_last = self
            .queries_at_last_round
            .swap(queries_total, Ordering::Relaxed);
        let p99_ms = |name: &str| {
            snap.histogram(name)
                .map(|h| h.quantile(0.99) as f64 / 1000.0)
                .unwrap_or(0.0)
        };
        let counter = |name: &str| snap.counter(name).unwrap_or(0) as f64;
        let metric = |name: &str, value: f64, units: &str| {
            let mut entry = MetricEntry::new(name, MetricValue::Double(value));
            entry.units = units.into();
            entry.source = "gmetad".into();
            entry
        };
        let serve_requests = counter("serve.requests_total");
        let serve_hits = counter("serve.cache_hits_total");
        let metrics = vec![
            metric("self.fetch_p99_ms", p99_ms("fetch_us"), "ms"),
            metric("self.parse_p99_ms", p99_ms("parse_us"), "ms"),
            metric("self.summarize_p99_ms", p99_ms("summarize_us"), "ms"),
            metric("self.archive_p99_ms", p99_ms("archive_us"), "ms"),
            metric("self.query_p99_ms", p99_ms("query_us"), "ms"),
            metric(
                "self.cpu_busy_ms",
                self.meter.total_busy().as_secs_f64() * 1e3,
                "ms",
            ),
            metric("self.polls_ok_total", counter("polls_ok_total"), "polls"),
            metric(
                "self.polls_failed_total",
                counter("polls_failed_total"),
                "polls",
            ),
            metric(
                "self.polls_backoff_total",
                counter("polls_backoff_total"),
                "polls",
            ),
            metric(
                "self.breaker_opens_total",
                counter("breaker_opens_total"),
                "transitions",
            ),
            metric("self.bytes_in_total", counter("bytes_in_total"), "bytes"),
            // Delta-aware ingest: how much of each round was served from
            // the fingerprint cache instead of re-parsed.
            metric(
                "self.ingest_hosts_reused_total",
                counter("ingest.hosts_reused"),
                "hosts",
            ),
            metric(
                "self.ingest_hosts_rebuilt_total",
                counter("ingest.hosts_rebuilt"),
                "hosts",
            ),
            metric(
                "self.ingest_docs_reused_total",
                counter("ingest.docs_reused"),
                "rounds",
            ),
            metric(
                "self.intern_atoms_live",
                snap.gauge("ingest.atoms_live").unwrap_or(0) as f64,
                "atoms",
            ),
            // Sharded-store maintenance: incremental summary work vs
            // anti-drift rebuilds.
            metric(
                "self.summary_deltas_total",
                counter("summary.delta_applied"),
                "deltas",
            ),
            metric(
                "self.summary_rebuilds_total",
                counter("summary.rebuilds"),
                "rebuilds",
            ),
            metric("self.queries_total", queries_total as f64, "queries"),
            metric(
                "self.queries_per_round",
                queries_total.saturating_sub(queries_last) as f64,
                "queries",
            ),
            // The GQL query/subscription surface.
            metric(
                "self.gql_queries_total",
                counter("query.gql_total"),
                "queries",
            ),
            metric(
                "self.query_errors_total",
                counter("query.errors_total"),
                "queries",
            ),
            metric(
                "self.subs_active",
                snap.gauge("sub.active").unwrap_or(0) as f64,
                "subscriptions",
            ),
            metric(
                "self.sub_frames_total",
                counter("sub.pushed_frames_total"),
                "frames",
            ),
            metric(
                "self.sub_bytes_total",
                counter("sub.pushed_bytes_total"),
                "bytes",
            ),
            metric(
                "self.sub_evicted_total",
                counter("sub.evicted_total"),
                "subscriptions",
            ),
            metric(
                "self.archive_updates_total",
                self.archive_updates() as f64,
                "updates",
            ),
            metric("self.archives", self.archive_count() as f64, "archives"),
            metric(
                "self.archive_journal_bytes",
                snap.gauge("archive.journal_bytes").unwrap_or(0) as f64,
                "bytes",
            ),
            metric(
                "self.sources",
                snap.gauge("sources").unwrap_or(0) as f64,
                "sources",
            ),
            // The serving front tier (when the daemon's ports run
            // through `query_tier`/`dump_tier`, which share this
            // registry).
            metric("self.serve_requests_total", serve_requests, "requests"),
            metric(
                "self.serve_cache_hit_ratio",
                if serve_requests > 0.0 {
                    serve_hits / serve_requests
                } else {
                    0.0
                },
                "ratio",
            ),
            metric(
                "self.serve_shed_total",
                counter("serve.shed_total"),
                "requests",
            ),
            metric(
                "self.serve_ratelimited_total",
                counter("serve.ratelimited_total"),
                "requests",
            ),
            metric(
                "self.serve_evicted_total",
                counter("serve.evicted_total"),
                "connections",
            ),
            metric(
                "self.serve_latency_p99_ms",
                p99_ms("serve.latency_us"),
                "ms",
            ),
            // Federation-wide freshness: p99 host data age and per-hop
            // grid lag as seen at this level, plus the two edge-policy
            // counters. Republished as self.* so a root query reads the
            // whole tree's lag profile level by level.
            metric(
                "self.freshness_age_p99_s",
                snap.histogram("freshness.age_s")
                    .map(|h| h.quantile(0.99) as f64)
                    .unwrap_or(0.0),
                "s",
            ),
            metric(
                "self.freshness_hop_lag_p99_s",
                snap.histogram("freshness.hop_lag_s")
                    .map(|h| h.quantile(0.99) as f64)
                    .unwrap_or(0.0),
                "s",
            ),
            metric(
                "self.freshness_missing_ts_total",
                counter("freshness.missing_ts"),
                "stamps",
            ),
            metric(
                "self.freshness_skew_total",
                counter("freshness.skew_total"),
                "stamps",
            ),
        ];
        let mut host = HostNode::new(self.self_host_name(), "127.0.0.1");
        host.reported = Some(now);
        host.tn = 0;
        host.metrics = metrics;
        let mut cluster = ClusterNode::with_hosts(self.self_cluster_name(), vec![host]);
        cluster.localtime = Some(now);
        let summary = self
            .meter
            .time(WorkCategory::Summarize, || cluster.summary());
        let state = SourceState::cluster(self.self_cluster_name(), cluster, summary, now);
        if self.config.archive != ArchiveMode::Off {
            let shard = self.archives.shard(&self.self_cluster_name());
            let mut set = shard.lock();
            self.meter.time(WorkCategory::Archive, || {
                archive_source(&mut set, &state, self.config.tree_mode, now)
            });
        }
        self.store.replace(state);
    }

    /// Evaluate a parsed GQL query over this daemon's store, returning
    /// the row set and the store revision it reflects. Down sources
    /// contribute in summary form (their rewritten `hosts_down`
    /// summaries), exactly as path queries serve them; in `summary`
    /// scope the daemon's own grid rollup appears as one more node.
    /// Retries if a poll round swaps the store mid-walk, so the rows
    /// and revision always correspond.
    pub fn gql_rows(&self, query: &GqlQuery) -> (RowSet, u64) {
        loop {
            let revision = self.store.revision();
            let sources = self.store.list();
            let root_summary = self.store.root_summary();
            let mut roots: Vec<RootRef<'_>> = Vec::with_capacity(sources.len() + 1);
            for state in sources.iter() {
                let down = matches!(state.status, crate::store::SourceStatus::Down { .. });
                match (&state.data, down) {
                    (crate::store::SourceData::Cluster(c), false) => {
                        roots.push(RootRef::Cluster(c));
                    }
                    (crate::store::SourceData::Grid(g), false) => {
                        roots.push(RootRef::Grid(g));
                    }
                    (crate::store::SourceData::Cluster(_), true) => {
                        roots.push(RootRef::ClusterSummary {
                            name: &state.name,
                            summary: &state.summary,
                        });
                    }
                    (crate::store::SourceData::Grid(_), true) => {
                        roots.push(RootRef::GridSummary {
                            name: &state.name,
                            summary: &state.summary,
                        });
                    }
                }
            }
            if query.is_summary() {
                roots.push(RootRef::GridSummary {
                    name: &self.config.grid_name,
                    summary: &root_summary,
                });
            }
            let rows = query.evaluate("", &roots);
            if self.store.revision() == revision {
                return (rows, revision);
            }
        }
    }

    /// The continuous-query subscription registry, shared by every tier
    /// built from this daemon. Created on first use; evaluation holds a
    /// weak reference so the registry never keeps the daemon alive.
    pub fn subscription_registry(self: &Arc<Self>) -> Arc<SubscriptionRegistry> {
        let registry = self.subs.get_or_init(|| {
            let daemon = Arc::downgrade(self);
            Arc::new(SubscriptionRegistry::new(
                Box::new(move |query| match daemon.upgrade() {
                    Some(daemon) => daemon.gql_rows(query),
                    None => (Vec::new(), 0),
                }),
                self.config.max_subscriptions,
                self.config.sub_queue_depth,
                &self.registry,
            ))
        });
        Arc::clone(registry)
    }

    /// Answer one query string (the interactive-port protocol). Malformed
    /// queries produce a well-formed `<ERROR>` document whose `OFFSET`
    /// attribute is the byte position of the problem in the request.
    pub fn query(&self, raw: &str) -> String {
        let parsed = Query::parse_located(raw);
        // `?filter=telemetry` asks about the daemon, not the monitored
        // tree: answer with a standalone TELEMETRY document. Served
        // outside the QueryServe timing so reading the meters doesn't
        // perturb them.
        if let Ok(query) = &parsed {
            if query.filter == Some(Filter::Telemetry) {
                self.registry.counter("telemetry_queries_total").inc();
                return self.telemetry_xml();
            }
            // Likewise `?filter=trace`: the structured span-event log,
            // as JSON rather than XML — it's for tooling, not browsers.
            if query.filter == Some(Filter::Trace) {
                self.registry.counter("trace_queries_total").inc();
                return self.trace_json();
            }
        }
        self.registry.counter("queries_total").inc();
        self.meter.time(WorkCategory::QueryServe, || {
            match parsed {
                Ok(query) => {
                    // `?filter=gql:<expr>` evaluates over the whole
                    // tree, whatever the path says (like telemetry and
                    // trace, it is a root-level view).
                    if let Some(Filter::Gql(expr)) = &query.filter {
                        self.registry.counter("query.gql_total").inc();
                        return match GqlQuery::parse(expr) {
                            Ok(compiled) => {
                                let (rows, revision) = self.gql_rows(&compiled);
                                render_xml(&rows, revision)
                            }
                            // Unreachable in practice — the expression
                            // was validated when the query parsed — but
                            // never hang a client over it.
                            Err(e) => error_xml(e.offset, &e.message),
                        };
                    }
                    self.registry
                        .histogram("query.depth")
                        .record(query.depth() as u64);
                    query_engine::answer(&self.store, &self.config, &query, self.clock())
                }
                Err((e, offset)) => {
                    // Never hang a client: a malformed query gets a
                    // complete <ERROR> document pointing at the byte
                    // where parsing failed.
                    self.registry.counter("query.errors_total").inc();
                    error_xml(offset, &e.to_string())
                }
            }
        })
    }

    /// A transport handler serving this daemon's query port.
    pub fn handler(self: &Arc<Self>) -> Arc<dyn RequestHandler> {
        let daemon = Arc::clone(self);
        Arc::new(move |request: &str| daemon.query(request))
    }

    /// A transport handler for the `xml_port` service: the full dump,
    /// whatever the request line says — gmetad 2.5's behaviour, where
    /// connecting to 8651 streams the whole tree.
    pub fn dump_handler(self: &Arc<Self>) -> Arc<dyn RequestHandler> {
        let daemon = Arc::clone(self);
        Arc::new(move |_request: &str| daemon.query("/"))
    }

    /// Wrap the interactive (path-query) service in a serving front
    /// tier: revision-keyed response cache plus admission control,
    /// instrumented into this daemon's registry. The cache key is the
    /// store's mutation counter, so responses stay byte-identical to a
    /// fresh render until the next poll round installs new snapshots.
    pub fn query_tier(self: &Arc<Self>, options: ServeOptions) -> Arc<FrontTier> {
        let store_revision = {
            let daemon = Arc::clone(self);
            move || daemon.store.revision()
        };
        let subs = self
            .config
            .subscriptions
            .then(|| self.subscription_registry());
        FrontTier::new_with_subscriptions(
            self.handler(),
            store_revision,
            options,
            Arc::clone(&self.registry),
            subs,
        )
    }

    /// Wrap the `xml_port` (full dump) service in a serving front tier.
    /// Shares the registry — and therefore the `serve.*` instruments —
    /// with [`Gmetad::query_tier`], matching gmetad where both ports are
    /// one daemon.
    pub fn dump_tier(self: &Arc<Self>, options: ServeOptions) -> Arc<FrontTier> {
        let store_revision = {
            let daemon = Arc::clone(self);
            move || daemon.store.revision()
        };
        FrontTier::new(
            self.dump_handler(),
            store_revision,
            options,
            Arc::clone(&self.registry),
        )
    }

    /// Bind this daemon's query port at `addr`.
    pub fn serve_on(
        self: &Arc<Self>,
        transport: &dyn Transport,
        addr: &Addr,
    ) -> Result<Box<dyn ServerGuard>, ganglia_net::NetError> {
        transport.serve(addr, self.handler())
    }

    /// Fetch archived history for one metric (forensics, alarms, the web
    /// frontend's graphs).
    pub fn fetch_history(
        &self,
        key: &MetricKey,
        cf: ConsolidationFn,
        start: u64,
        end: u64,
    ) -> Option<Series> {
        self.archives.fetch(key, cf, start, end)
    }

    /// Number of metric archives this daemon maintains.
    pub fn archive_count(&self) -> usize {
        self.archives.archive_count()
    }

    /// Total RRD updates this daemon has performed.
    pub fn archive_updates(&self) -> u64 {
        self.archives.update_count()
    }

    /// Flush archives to disk if a persistence directory is configured.
    pub fn flush_archives(&self) -> Result<usize, ganglia_rrd::RrdError> {
        self.archives.flush()
    }

    /// Whether the archive tier journals updates (requires both
    /// `archive_journal on` and a persistence directory).
    pub fn archive_journal_enabled(&self) -> bool {
        self.archives.journal_enabled()
    }

    /// Rebuild archive state from disk after a restart: load every
    /// checkpointed `.rrd` file, drop any torn journal tail at the first
    /// bad CRC, and replay surviving journal records idempotently.
    pub fn recover_archives(&self) -> Result<ArchiveRecovery, ganglia_rrd::RrdError> {
        let report = self.archives.recover()?;
        self.registry
            .counter("archive.replayed_total")
            .add(report.replayed);
        self.registry
            .counter("archive.torn_tails_total")
            .add(report.torn_tails);
        Ok(report)
    }

    /// Group-commit every shard's pending journal records (one fsync per
    /// shard). Returns the bytes made durable.
    pub fn commit_archive_journal(&self) -> Result<u64, ganglia_rrd::RrdError> {
        let commit_start = Instant::now();
        match self.archives.commit_journals() {
            Ok(bytes) => {
                self.registry.counter("archive.journal_commits_total").inc();
                self.registry
                    .histogram("archive.journal_commit_us")
                    .record_duration(commit_start.elapsed());
                Ok(bytes)
            }
            Err(e) => {
                self.registry.counter("archive.journal_errors_total").inc();
                Err(e)
            }
        }
    }

    /// Checkpoint every shard: atomically rewrite all dirty `.rrd` files
    /// and truncate the journals. Returns the files written.
    pub fn checkpoint_archives(&self, now: u64) -> Result<usize, ganglia_rrd::RrdError> {
        let checkpoint_start = Instant::now();
        let files = self.archives.checkpoint(now)?;
        self.registry.counter("archive.checkpoints_total").inc();
        self.registry
            .counter("archive.checkpoint_files_total")
            .add(files as u64);
        self.registry
            .histogram("archive.checkpoint_us")
            .record_duration(checkpoint_start.elapsed());
        Ok(files)
    }

    /// Checkpoint at most `max_files` dirty databases (incremental I/O
    /// bound; a shard's journal is truncated only once it fully drains).
    pub fn checkpoint_archives_partial(
        &self,
        now: u64,
        max_files: usize,
    ) -> Result<CheckpointTotals, ganglia_rrd::RrdError> {
        self.archives.checkpoint_partial(now, max_files)
    }

    /// Every archived metric key, sorted (crash-consistency audits).
    pub fn archive_keys(&self) -> Vec<MetricKey> {
        self.archives.keys()
    }

    /// Journal/durability status of one source's shard.
    pub fn archive_journal_stats(&self, source: &str) -> Option<ShardJournal> {
        self.archives.shard_journal(source)
    }

    /// Aggregate journal accounting across every shard.
    pub fn archive_journal_totals(&self) -> ganglia_rrd::JournalStats {
        self.archives.journal_totals()
    }

    /// Per-source poller statistics and health.
    pub fn poller_stats(&self) -> Vec<PollerStats> {
        self.pollers
            .read()
            .iter()
            .map(|slot| {
                let p = slot.lock();
                let name = p.cfg().name.clone();
                let phase = self.store.get(&name).map(|s| s.status);
                PollerStats {
                    name,
                    polls_ok: p.polls_ok,
                    polls_failed: p.polls_failed,
                    polls_backoff: p.polls_backoff,
                    failovers: p.failovers,
                    consecutive_failures: p.consecutive_failures,
                    breaker: p.current_breaker(),
                    phase,
                }
            })
            .collect()
    }

    /// Add a data source at runtime (used by the self-organizing join
    /// extension). Returns false if a source with that name exists.
    pub fn add_source(&self, cfg: crate::config::DataSourceCfg) -> bool {
        let mut pollers = self.pollers.write();
        if pollers
            .iter()
            .any(|slot| slot.lock().cfg().name == cfg.name)
        {
            return false;
        }
        pollers.push(Arc::new(Mutex::new(SourcePoller::new(cfg))));
        true
    }

    /// Remove a data source (and its stored snapshot and archives) at
    /// runtime.
    pub fn remove_source(&self, name: &str) -> bool {
        let mut pollers = self.pollers.write();
        let before = pollers.len();
        pollers.retain(|slot| slot.lock().cfg().name != name);
        let removed = pollers.len() != before;
        if removed {
            self.store.remove(name);
            self.archives.remove(name);
        }
        removed
    }

    /// Names of currently configured sources.
    pub fn source_names(&self) -> Vec<String> {
        self.pollers
            .read()
            .iter()
            .map(|slot| slot.lock().cfg().name.clone())
            .collect()
    }

    /// Run the daemon on real wall-clock time in a background thread:
    /// poll every `poll_interval` seconds until `stop` is set.
    pub fn run_background(
        self: Arc<Self>,
        transport: Arc<dyn Transport>,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let interval = Duration::from_secs(self.config.poll_interval.max(1));
            let epoch = std::time::SystemTime::UNIX_EPOCH;
            while !stop.load(Ordering::SeqCst) {
                let now = std::time::SystemTime::now()
                    .duration_since(epoch)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                let _ = self.poll_all(transport.as_ref(), now);
                // Sleep in small slices so stop is prompt.
                let mut slept = Duration::ZERO;
                while slept < interval && !stop.load(Ordering::SeqCst) {
                    let slice = Duration::from_millis(50).min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DataSourceCfg, TreeMode};
    use crate::store::SourceStatus;
    use ganglia_gmond::pseudo::ServedPseudoCluster;
    use ganglia_gmond::PseudoGmond;
    use ganglia_metrics::parse_document;
    use ganglia_net::SimNet;

    fn deploy(mode: TreeMode) -> (Arc<SimNet>, ServedPseudoCluster, Arc<Gmetad>) {
        let net = SimNet::new(1);
        let served = ServedPseudoCluster::serve(&net, PseudoGmond::new("meteor", 8, 42, 0), 2);
        let config = GmetadConfig::new("sdsc")
            .with_mode(mode)
            .with_source(DataSourceCfg::new("meteor", served.addrs().to_vec()).unwrap());
        let gmetad = Gmetad::new(config);
        (net, served, gmetad)
    }

    #[test]
    fn polls_populate_store_and_archives() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        let results = gmetad.poll_all(&net, 15);
        assert!(results[0].is_ok());
        let state = gmetad.store().get("meteor").unwrap();
        assert_eq!(state.host_count(), 8);
        assert_eq!(state.status, SourceStatus::Fresh);
        // 8 hosts × 29 numeric metrics + 29 summary metrics (5 of the
        // 34 built-ins are strings and have no history).
        assert_eq!(gmetad.archive_count(), 8 * 29 + 29);
        assert!(gmetad.meter().total_busy() > Duration::ZERO);
    }

    #[test]
    fn query_port_serves_selected_subtrees() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        let guard = gmetad.serve_on(&net, &Addr::new("sdsc-gmeta")).unwrap();
        let full = net
            .fetch(&guard.addr(), "/", Duration::from_secs(1))
            .unwrap();
        let host = net
            .fetch(&guard.addr(), "/meteor/meteor-0003", Duration::from_secs(1))
            .unwrap();
        assert!(host.len() < full.len() / 4);
        let doc = parse_document(&host).unwrap();
        assert_eq!(doc.host_count(), 1);
    }

    #[test]
    fn failure_marks_stale_and_records_unknowns() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        let updates_before = gmetad.archive_updates();
        net.partition_prefix("meteor", true);
        let results = gmetad.poll_all(&net, 30);
        assert!(results[0].is_err());
        let state = gmetad.store().get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Stale { since: 30 });
        assert_eq!(state.host_count(), 8, "last good snapshot retained");
        assert!(
            gmetad.archive_updates() > updates_before,
            "zero records written during downtime"
        );
        let stats = gmetad.poller_stats();
        assert_eq!(stats[0].polls_ok, 1);
        assert_eq!(stats[0].polls_failed, 1);
        assert_eq!(stats[0].consecutive_failures, 1);
        assert_eq!(stats[0].phase, Some(SourceStatus::Stale { since: 30 }));
    }

    #[test]
    fn sustained_failure_walks_down_and_rewrites_summary() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        net.partition_prefix("meteor", true);
        // Default lifecycle: Down after TN > 60s from the last good poll.
        gmetad.poll_all(&net, 30);
        gmetad.poll_all(&net, 90);
        let state = gmetad.store().get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Down { since: 90 });
        assert_eq!(state.summary.hosts_up, 0);
        assert_eq!(state.summary.hosts_down, 8);
        assert!(state.summary.metrics.is_empty());
        let root = gmetad.store().root_summary();
        assert_eq!(root.hosts_up, 0);
        assert_eq!(root.hosts_down, 8);
        // The query port reports the outage.
        let xml = gmetad.query("/");
        assert!(xml.contains("UP=\"0\""), "{xml}");
        assert!(xml.contains("DOWN=\"8\""), "{xml}");
        // Healing restores a fresh snapshot and full summary.
        net.partition_prefix("meteor", false);
        gmetad.poll_all(&net, 105);
        let state = gmetad.store().get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Fresh);
        assert_eq!(state.summary.hosts_up, 8);
    }

    #[test]
    fn breaker_opens_after_threshold_and_stats_report_it() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        net.partition_prefix("meteor", true);
        // Default threshold is 3 consecutive failures per endpoint; after
        // enough rounds every endpoint's breaker is open.
        for round in 1..=4 {
            gmetad.poll_all(&net, 15 + round * 15);
        }
        let stats = gmetad.poller_stats();
        assert_eq!(stats[0].consecutive_failures, 4);
        assert!(
            matches!(stats[0].breaker, BreakerState::Open { .. }),
            "expected open breaker, got {}",
            stats[0].breaker
        );
    }

    #[test]
    fn bad_query_yields_error_document_with_byte_offset() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        // "/a//b" — the empty segment is detected at byte 3.
        let response = gmetad.query("/a//b?frob=1");
        assert!(
            response.starts_with("<?xml version=\"1.0\"?>"),
            "{response}"
        );
        assert!(response.contains("<ERROR SOURCE=\"gmetad\" OFFSET=\"3\">"));
        assert!(response.contains("empty segment"));
        // A malformed GQL expression is located within the whole input.
        let input = "/?filter=gql:metric =";
        let response = gmetad.query(input);
        assert!(
            response.contains("OFFSET=\"20\""),
            "expected the lone '=' at byte 20: {response}"
        );
        assert_eq!(
            gmetad.telemetry_snapshot().counter("query.errors_total"),
            Some(2)
        );
    }

    #[test]
    fn gql_filter_queries_the_tree() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        let response = gmetad.query("/?filter=gql:metric == load_one | count");
        assert!(response.contains("<GQL REVISION="), "{response}");
        // 8 hosts, one load_one each, folded into one count row.
        assert!(response.contains("VAL=\"8\""), "{response}");
        assert!(response.contains("N=\"8\""), "{response}");
        // Summary scope sees the cluster roll-up and the root grid.
        let response = gmetad.query("/?filter=gql:summary | metric == #hosts_up");
        assert!(response.contains("CLUSTER=\"meteor\""), "{response}");
        assert!(response.contains("CLUSTER=\"sdsc\""), "{response}");
        assert_eq!(
            gmetad.telemetry_snapshot().counter("query.gql_total"),
            Some(2)
        );
    }

    #[test]
    fn subscriptions_push_deltas_after_poll_rounds() {
        use ganglia_query::{Delta, Mirror};
        let (net, served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        let subs = gmetad.subscription_registry();
        let handle = subs
            .subscribe("viewer", "metric == load_one | avg by cluster")
            .unwrap();
        let mut mirror = Mirror::new();
        mirror.apply(&Delta::parse(&handle.initial).unwrap());
        assert_eq!(mirror.len(), 1, "one cluster average");
        // A round that changes readings pushes a delta...
        served.advance(30);
        gmetad.poll_all(&net, 30);
        let frame = handle.next(Duration::from_secs(2)).unwrap();
        mirror.apply(&Delta::parse(&frame).unwrap());
        // ...and the replayed mirror matches a fresh one-shot query.
        let compiled = GqlQuery::parse("metric == load_one | avg by cluster").unwrap();
        let (rows, revision) = gmetad.gql_rows(&compiled);
        assert_eq!(mirror.render(), render_xml(&rows, revision));
    }

    #[test]
    fn dynamic_source_management() {
        let (_net, _served, gmetad) = deploy(TreeMode::NLevel);
        assert!(DataSourceCfg::new("ghost", vec![]).is_err());
        assert!(
            !gmetad.add_source(DataSourceCfg::new("meteor", vec![Addr::new("meteor/n0")]).unwrap())
        );
        assert!(
            gmetad.add_source(DataSourceCfg::new("nashi", vec![Addr::new("nashi/n0")]).unwrap())
        );
        assert_eq!(gmetad.source_names(), vec!["meteor", "nashi"]);
        assert!(gmetad.remove_source("nashi"));
        assert!(!gmetad.remove_source("nashi"));
        assert_eq!(gmetad.source_names(), vec!["meteor"]);
    }

    #[test]
    fn background_thread_polls_and_stops() {
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        let stop = Arc::new(AtomicBool::new(false));
        let transport: Arc<dyn Transport> = Arc::new(Arc::clone(&net));
        let handle = Arc::clone(&gmetad).run_background(transport, Arc::clone(&stop));
        // Wait for at least one poll.
        for _ in 0..100 {
            if !gmetad.store().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(gmetad.store().len(), 1);
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn two_level_tree_summarizes_at_the_parent() {
        // meteor -> sdsc gmetad -> root gmetad, N-level.
        let (net, _served, sdsc) = deploy(TreeMode::NLevel);
        sdsc.poll_all(&net, 15);
        let _guard = sdsc.serve_on(&net, &Addr::new("sdsc-gmeta")).unwrap();
        let root_cfg = GmetadConfig::new("root")
            .with_source(DataSourceCfg::new("sdsc", vec![Addr::new("sdsc-gmeta")]).unwrap());
        let root = Gmetad::new(root_cfg);
        root.poll_all(&net, 16);
        let state = root.store().get("sdsc").unwrap();
        assert_eq!(state.summary.hosts_up, 8);
        // Root archives ONLY summaries for the remote grid.
        assert_eq!(root.archive_count(), 29);
        // And its own report presents sdsc as a summary grid with the
        // authority pointer.
        let xml = root.query("/");
        assert!(xml.contains("AUTHORITY=\"http://sdsc/ganglia/\""));
        assert!(xml.contains("<HOSTS UP=\"8\""));
    }

    #[test]
    fn polls_feed_freshness_histograms() {
        let (net, served, gmetad) = deploy(TreeMode::NLevel);
        // The pseudo cluster last rendered at t=0; polling at t=15 sees
        // 15-second-old host reports and a 15-second hop lag.
        gmetad.poll_all(&net, 15);
        let snap = gmetad.telemetry_snapshot();
        let ages = snap.histogram("freshness.source.meteor.age_s").unwrap();
        assert_eq!(ages.count, 8);
        assert_eq!(ages.max, 15);
        assert_eq!(snap.histogram("freshness.hop_lag_s").unwrap().max, 15);
        assert_eq!(snap.counter("freshness.missing_ts"), None);
        // A re-render at poll time drives the ages to zero.
        served.advance(30);
        gmetad.poll_all(&net, 30);
        let snap = gmetad.telemetry_snapshot();
        assert_eq!(
            snap.histogram("freshness.source.meteor.age_s").unwrap().min,
            0
        );
    }

    #[test]
    fn trace_filter_serves_round_correlated_json() {
        use ganglia_telemetry::json;
        let (net, _served, gmetad) = deploy(TreeMode::NLevel);
        gmetad.poll_all(&net, 15);
        gmetad.poll_all(&net, 30);
        let raw = gmetad.query("/?filter=trace");
        let doc = json::parse(&raw).expect("trace output is valid JSON");
        assert_eq!(
            doc.get("source").and_then(|v| v.as_str()),
            Some("gmetad:sdsc")
        );
        assert_eq!(doc.get("round").and_then(|v| v.as_u64()), Some(2));
        let events = doc.get("events").expect("events array");
        let mut polls = 0;
        let mut last_poll_round = 0;
        let mut i = 0;
        while let Some(event) = events.index(i) {
            i += 1;
            let round = event.get("round").and_then(|v| v.as_u64()).unwrap();
            assert!((1..=2).contains(&round), "round {round} out of range");
            if event.get("stage").and_then(|v| v.as_str()) == Some("poll") {
                polls += 1;
                assert_eq!(event.get("source").and_then(|v| v.as_str()), Some("meteor"));
                assert_eq!(event.get("outcome").and_then(|v| v.as_str()), Some("ok"));
                assert!(round >= last_poll_round, "poll rounds must be monotone");
                last_poll_round = round;
            }
        }
        assert_eq!(polls, 2, "one poll event per round");
        // Failures stamp their outcome into the trace.
        net.partition_prefix("meteor", true);
        gmetad.poll_all(&net, 45);
        let raw = gmetad.query("/?filter=trace");
        assert!(
            raw.contains("\"outcome\":\"failed\""),
            "failed poll missing from trace: {raw}"
        );
    }
}
