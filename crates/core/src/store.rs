//! The in-memory monitoring-data store.
//!
//! "By organizing the parsed monitoring data in a series of hash tables,
//! we can support very low-latency queries. Our approach approximates a
//! DOM design where each XML tag name keys into a hash table... A node
//! must search at most three hash table levels to find the desired
//! subtree: data sources, summaries and cluster nodes, and node metrics."
//! (paper §3.3.2)
//!
//! Concretely: level one is the sharded source map below; level two is a
//! cluster's host index (or a grid's stored summary); level three is a
//! host's metric list. Each source's state is an immutable snapshot
//! behind an `Arc`: the poller builds a fresh snapshot off to the side
//! and swaps the pointer, so "if a query arrives during parsing, the
//! previous summary will be returned" (§3.3.1) — queries always see the
//! latest *fully-parsed* data, never a half-built one.
//!
//! # Sharding and incremental summaries
//!
//! At federation scale (hundreds of grids, ~100k hosts) the original
//! single `RwLock<HashMap>` made every poll worker contend on one write
//! lock, and `root_summary()` re-merged **every** source's summary on
//! every revision bump — O(sources × metrics) per poll round even when
//! one host changed. The store is therefore split into `N` shards keyed
//! by an FNV-1a hash of the source name, so concurrent writers land on
//! disjoint locks, and each shard maintains a merged [`SummaryBody`] of
//! its own sources *incrementally*: a mutation applies the
//! [`SummaryDelta`] between the source's old and new contribution
//! instead of re-merging the shard. The root summary is then a merge of
//! ≤N shard summaries — O(shards), not O(sources).
//!
//! Because `sum − old + new` can drift from a from-scratch merge by
//! float rounding, every shard re-merges itself from scratch once per
//! `rebuild_rounds` mutations (the anti-drift rebuild); see DESIGN.md
//! §18 for the invariants.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use ganglia_metrics::delta::SummaryDelta;
use ganglia_metrics::model::{ClusterBody, ClusterNode, GridNode, HostNode, SummaryBody};
use ganglia_metrics::Atom;

use crate::health::LifecyclePolicy;

/// Freshness of a source's snapshot: the staleness lifecycle
/// `Fresh → Stale → Down` (and finally expiry, which removes the
/// snapshot from the store altogether).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// The last poll succeeded.
    Fresh,
    /// Polls have been failing since the given time; the snapshot is the
    /// last good one ("metric histories that aid in forensic analysis",
    /// paper §1).
    Stale { since: u64 },
    /// No good poll for longer than the lifecycle's down threshold (the
    /// wide-area DMAX): the source's hosts are reported as down up the
    /// tree. `since` is when the down transition happened.
    Down { since: u64 },
}

impl fmt::Display for SourceStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceStatus::Fresh => write!(f, "fresh"),
            SourceStatus::Stale { since } => write!(f, "stale(since={since})"),
            SourceStatus::Down { since } => write!(f, "down(since={since})"),
        }
    }
}

/// What [`Store::degrade`] did to a failing source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Recent failure: snapshot kept and served, flagged stale.
    Stale,
    /// Past the down threshold: summary rewritten so every host counts
    /// as `hosts_down`, which propagates up the tree additively.
    Down,
    /// Past the expiry threshold: snapshot pruned from the store.
    Expired,
    /// The source had no snapshot to degrade (never polled, or already
    /// expired).
    Unknown,
}

/// Parsed payload of one data source.
#[derive(Debug, Clone)]
pub enum SourceData {
    /// A directly-attached cluster (this gmetad is its authority).
    Cluster(ClusterNode),
    /// A remote grid: summary-form under the N-level design, fully
    /// expanded under the 1-level design.
    Grid(GridNode),
}

/// An immutable snapshot of one source.
#[derive(Debug, Clone)]
pub struct SourceState {
    /// Configured source name (level-one hash key).
    pub name: String,
    pub data: SourceData,
    /// Precomputed rollup (computed on the summarization time-scale, not
    /// at query time — §3.3.1). Behind an `Arc` so the delta-aware ingest
    /// path can install a reused summary without copying it.
    pub summary: Arc<SummaryBody>,
    /// Level-two hash index: host name → index into the cluster's host
    /// vector. Empty for grid sources.
    pub host_index: HashMap<Atom, usize>,
    /// When this snapshot was parsed.
    pub updated_at: u64,
    pub status: SourceStatus,
}

impl SourceState {
    /// Build a snapshot for a cluster source, constructing the host index.
    /// `summary` must be the cluster's precomputed rollup.
    pub fn cluster(
        name: impl Into<String>,
        cluster: ClusterNode,
        summary: impl Into<Arc<SummaryBody>>,
        now: u64,
    ) -> SourceState {
        let host_index = match &cluster.body {
            ClusterBody::Hosts(hosts) => hosts
                .iter()
                .enumerate()
                .map(|(i, h)| (h.name.clone(), i))
                .collect(),
            ClusterBody::Summary(_) => HashMap::new(),
        };
        SourceState {
            name: name.into(),
            data: SourceData::Cluster(cluster),
            summary: summary.into(),
            host_index,
            updated_at: now,
            status: SourceStatus::Fresh,
        }
    }

    /// Build a snapshot for a grid source.
    pub fn grid(
        name: impl Into<String>,
        grid: GridNode,
        summary: impl Into<Arc<SummaryBody>>,
        now: u64,
    ) -> SourceState {
        SourceState {
            name: name.into(),
            data: SourceData::Grid(grid),
            summary: summary.into(),
            host_index: HashMap::new(),
            updated_at: now,
            status: SourceStatus::Fresh,
        }
    }

    /// O(1) host lookup (level-two hash, paper fig 4).
    pub fn host(&self, name: &str) -> Option<&HostNode> {
        let SourceData::Cluster(cluster) = &self.data else {
            return None;
        };
        let ClusterBody::Hosts(hosts) = &cluster.body else {
            return None;
        };
        self.host_index.get(name).map(|&i| hosts[i].as_ref())
    }

    /// Number of hosts described by this source.
    pub fn host_count(&self) -> usize {
        match &self.data {
            SourceData::Cluster(c) => c.host_count(),
            SourceData::Grid(g) => g.host_count(),
        }
    }
}

/// A sorted, shared snapshot of every source (what [`Store::list`]
/// returns — cached per revision, so repeated queries share one vector).
pub type SourceListing = Arc<Vec<Arc<SourceState>>>;

/// Default shard count for stores built outside a gmetad config (tests,
/// ad-hoc tools). `GmetadConfig::resolved_store_shards` aligns the real
/// daemon's count with its poll concurrency instead.
pub const DEFAULT_STORE_SHARDS: usize = 8;

/// Default anti-drift cadence: a shard re-merges itself from scratch
/// after this many applied deltas (0 = never rebuild).
pub const DEFAULT_REBUILD_ROUNDS: u64 = 64;

/// Upper bound on the shard count: past this, per-shard merge overhead
/// in `root_summary()` outweighs any lock-spreading benefit.
pub const MAX_STORE_SHARDS: usize = 256;

/// One shard's mutable state: its slice of the level-one hash table
/// plus the incrementally-maintained merge of its sources' summaries.
#[derive(Debug, Default)]
struct ShardState {
    sources: HashMap<String, Arc<SourceState>>,
    /// Merge of every source summary in this shard, maintained by
    /// [`SummaryDelta`] application on each mutation.
    summary: SummaryBody,
    /// Deltas applied since the last from-scratch rebuild.
    deltas_since_rebuild: u64,
    /// Global revision at this shard's last mutation (per-shard stamp:
    /// disjoint writers move disjoint stamps).
    revision: u64,
}

#[derive(Debug, Default)]
struct Shard {
    state: RwLock<ShardState>,
}

/// Monotonic operation counters, mirrored into gmetad telemetry as
/// `store.*` / `summary.*` after each poll round.
#[derive(Debug, Default)]
struct Counters {
    replaces: AtomicU64,
    deltas_applied: AtomicU64,
    summary_rebuilds: AtomicU64,
    root_merges: AtomicU64,
    root_merge_inputs: AtomicU64,
    source_touches: AtomicU64,
    list_rebuilds: AtomicU64,
}

/// A point-in-time snapshot of the store's operation counters.
///
/// `root_merge_inputs / root_merges` is the number of summaries touched
/// per uncached root merge — exactly the shard count, which is how the
/// federation bench asserts the root path is O(shards), not O(sources).
/// `source_touches` counts per-source summary merges (anti-drift
/// rebuilds and [`Store::root_summary_full`] calls), the cost the
/// incremental path avoids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    pub shards: usize,
    pub replaces: u64,
    pub deltas_applied: u64,
    pub summary_rebuilds: u64,
    pub root_merges: u64,
    pub root_merge_inputs: u64,
    pub source_touches: u64,
    pub list_rebuilds: u64,
}

type SummaryCache = RwLock<Option<(u64, Arc<SummaryBody>)>>;
type ListCache = RwLock<Option<(u64, SourceListing)>>;

/// The level-one hash table: data sources by name, sharded by FNV-1a of
/// the name so concurrent poll workers write disjoint locks.
#[derive(Debug)]
pub struct Store {
    shards: Box<[Shard]>,
    /// How many deltas a shard absorbs before re-merging from scratch
    /// (anti-drift; 0 = never rebuild).
    rebuild_rounds: u64,
    /// Bumped on every mutation; keys both caches below.
    revision: AtomicU64,
    /// Cached merge of the shard summaries, keyed by revision. A
    /// `RwLock` (not `Mutex`): cache hits are the hot read path and must
    /// share the lock instead of serializing on it.
    root_cache: SummaryCache,
    /// Cached sorted listing, keyed by the same revision.
    list_cache: ListCache,
    stats: Counters,
}

impl Default for Store {
    fn default() -> Store {
        Store::new()
    }
}

impl Store {
    /// An empty store with default sharding ([`DEFAULT_STORE_SHARDS`],
    /// [`DEFAULT_REBUILD_ROUNDS`]).
    pub fn new() -> Store {
        Store::with_shards(DEFAULT_STORE_SHARDS, DEFAULT_REBUILD_ROUNDS)
    }

    /// An empty store with an explicit shard count (clamped to
    /// `1..=`[`MAX_STORE_SHARDS`]) and anti-drift rebuild cadence.
    ///
    /// `rebuild_rounds = 1` degenerates to the unsharded seed behavior
    /// per shard — every mutation re-merges the shard from scratch —
    /// which is what the federation bench uses as its reference path;
    /// `0` disables rebuilds entirely (pure incremental maintenance).
    pub fn with_shards(shards: usize, rebuild_rounds: u64) -> Store {
        let count = shards.clamp(1, MAX_STORE_SHARDS);
        Store {
            shards: (0..count).map(|_| Shard::default()).collect(),
            rebuild_rounds,
            revision: AtomicU64::new(0),
            root_cache: RwLock::new(None),
            list_cache: RwLock::new(None),
            stats: Counters::default(),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a source name lands in.
    pub fn shard_index(&self, name: &str) -> usize {
        (fnv1a(name) % self.shards.len() as u64) as usize
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[self.shard_index(name)]
    }

    /// Per-shard revision stamps: the global revision at each shard's
    /// last mutation. Writers to different sources move disjoint stamps.
    pub fn shard_revisions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|shard| shard.state.read().revision)
            .collect()
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            shards: self.shards.len(),
            replaces: self.stats.replaces.load(Ordering::Relaxed),
            deltas_applied: self.stats.deltas_applied.load(Ordering::Relaxed),
            summary_rebuilds: self.stats.summary_rebuilds.load(Ordering::Relaxed),
            root_merges: self.stats.root_merges.load(Ordering::Relaxed),
            root_merge_inputs: self.stats.root_merge_inputs.load(Ordering::Relaxed),
            source_touches: self.stats.source_touches.load(Ordering::Relaxed),
            list_rebuilds: self.stats.list_rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Bump the global revision and stamp the shard, both *inside* the
    /// shard's write lock: bumping after the guard dropped opened a
    /// window where [`Store::root_summary`] could merge the new state
    /// under the old revision — or, worse, stamp an old merge with the
    /// new revision and pin it in the cache.
    fn bump(&self, shard: &mut ShardState) {
        let revision = self.revision.fetch_add(1, Ordering::Release) + 1;
        shard.revision = revision;
    }

    /// Fold one source's contribution change into the shard summary:
    /// apply the delta, or — once per `rebuild_rounds` mutations —
    /// re-merge the shard from scratch to re-ground float drift.
    fn absorb(&self, shard: &mut ShardState, delta: SummaryDelta) {
        if delta.is_empty() {
            return;
        }
        if self.rebuild_rounds > 0 && shard.deltas_since_rebuild + 1 >= self.rebuild_rounds {
            self.rebuild_shard(shard);
            return;
        }
        delta.apply(&mut shard.summary);
        shard.deltas_since_rebuild += 1;
        self.stats.deltas_applied.fetch_add(1, Ordering::Relaxed);
        #[cfg(debug_assertions)]
        debug_check_shard_drift(shard);
    }

    /// Re-merge a shard's summary from its sources (the anti-drift
    /// rebuild — the only O(shard-size) step on the write path).
    fn rebuild_shard(&self, shard: &mut ShardState) {
        let mut merged = SummaryBody::default();
        for source in shard.sources.values() {
            merged.merge(&source.summary);
        }
        shard.summary = merged;
        shard.deltas_since_rebuild = 0;
        self.stats
            .source_touches
            .fetch_add(shard.sources.len() as u64, Ordering::Relaxed);
        self.stats.summary_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Install a fresh snapshot for a source (pointer swap on one shard).
    pub fn replace(&self, state: SourceState) {
        let shard = self.shard(&state.name);
        let incoming = Arc::new(state);
        let mut guard = shard.state.write();
        let previous = guard
            .sources
            .insert(incoming.name.clone(), Arc::clone(&incoming));
        let delta = match &previous {
            // The delta-aware ingest reinstalls the same summary `Arc`
            // when nothing changed: skip even computing the diff.
            Some(prev) if Arc::ptr_eq(&prev.summary, &incoming.summary) => SummaryDelta::default(),
            Some(prev) => SummaryDelta::diff(&prev.summary, &incoming.summary),
            None => SummaryDelta::addition(&incoming.summary),
        };
        self.absorb(&mut guard, delta);
        self.stats.replaces.fetch_add(1, Ordering::Relaxed);
        self.bump(&mut guard);
    }

    /// Mark a source stale as of `now` (its last good snapshot stays
    /// queryable). No-op for unknown sources; keeps an existing stale
    /// timestamp and never un-downs a down source.
    pub fn mark_stale(&self, name: &str, now: u64) {
        let mut guard = self.shard(name).state.write();
        let Some(existing) = guard.sources.get_mut(name) else {
            return;
        };
        if !matches!(existing.status, SourceStatus::Fresh) {
            return;
        }
        // In-place when no query holds the snapshot; copy-on-write (of
        // the `SourceState` struct, not the `Arc`'d subtrees) otherwise.
        Arc::make_mut(existing).status = SourceStatus::Stale { since: now };
        self.bump(&mut guard);
    }

    /// Advance a failing source along the staleness lifecycle, based on
    /// `TN = now - updated_at` (time since the last good poll):
    ///
    /// * `TN ≤ down_after` — flag [`SourceStatus::Stale`]; the last good
    ///   snapshot keeps being served (§3.3.1: "the previous summary will
    ///   be returned").
    /// * `TN > down_after` — flag [`SourceStatus::Down`] and rewrite the
    ///   stored summary to `hosts_up = 0, hosts_down = total` with no
    ///   metric rows, so parents polling this daemon aggregate the
    ///   outage instead of stale readings.
    /// * `TN > expire_after` — prune the snapshot entirely: a source
    ///   dead this long no longer contributes to any view.
    pub fn degrade(&self, name: &str, now: u64, lifecycle: &LifecyclePolicy) -> Degradation {
        let mut guard = self.shard(name).state.write();
        let Some(existing) = guard.sources.get(name) else {
            return Degradation::Unknown;
        };
        let tn = now.saturating_sub(existing.updated_at);
        if tn > lifecycle.expire_after_secs {
            let removed = guard.sources.remove(name).expect("present: checked above");
            self.absorb(&mut guard, SummaryDelta::retraction(&removed.summary));
            self.bump(&mut guard);
            return Degradation::Expired;
        }
        if tn > lifecycle.down_after_secs {
            if matches!(existing.status, SourceStatus::Down { .. }) {
                return Degradation::Down;
            }
            let entry = guard.sources.get_mut(name).expect("present: checked above");
            let old_summary = Arc::clone(&entry.summary);
            let snapshot = Arc::make_mut(entry);
            snapshot.status = SourceStatus::Down { since: now };
            snapshot.summary = Arc::new(SummaryBody {
                hosts_up: 0,
                hosts_down: old_summary.hosts_total(),
                metrics: Vec::new(),
            });
            let delta = SummaryDelta::diff(&old_summary, &snapshot.summary);
            self.absorb(&mut guard, delta);
            self.bump(&mut guard);
            return Degradation::Down;
        }
        if matches!(existing.status, SourceStatus::Fresh) {
            let entry = guard.sources.get_mut(name).expect("present: checked above");
            Arc::make_mut(entry).status = SourceStatus::Stale { since: now };
            self.bump(&mut guard);
        }
        Degradation::Stale
    }

    /// Snapshot of one source.
    pub fn get(&self, name: &str) -> Option<Arc<SourceState>> {
        self.shard(name).state.read().sources.get(name).cloned()
    }

    /// All sources, sorted by name (deterministic output order). Cached
    /// per revision: the render/query hot path calls this on every
    /// request, and re-collecting + re-sorting hundreds of sources per
    /// query dwarfed the lookup it feeds.
    pub fn list(&self) -> SourceListing {
        let revision = self.revision.load(Ordering::Acquire);
        {
            let cache = self.list_cache.read();
            if let Some((cached_rev, listing)) = cache.as_ref() {
                if *cached_rev == revision {
                    return Arc::clone(listing);
                }
            }
        }
        // Hold every shard read lock at once so the collected snapshot
        // and the revision stamped on it are mutually consistent (any
        // writer bumps the revision inside a shard write lock, which
        // cannot be mid-flight while we hold all the read locks).
        let guards: Vec<_> = self.shards.iter().map(|s| s.state.read()).collect();
        let revision = self.revision.load(Ordering::Acquire);
        let mut out: Vec<Arc<SourceState>> = guards
            .iter()
            .flat_map(|g| g.sources.values().cloned())
            .collect();
        drop(guards);
        out.sort_by(|a, b| a.name.cmp(&b.name));
        let listing: SourceListing = Arc::new(out);
        self.stats.list_rebuilds.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.list_cache.write();
        match cache.as_ref() {
            // A concurrent caller already cached a newer listing.
            Some((cached_rev, _)) if *cached_rev > revision => {}
            _ => *cache = Some((revision, Arc::clone(&listing))),
        }
        listing
    }

    /// Number of sources present.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.read().sources.len())
            .sum()
    }

    /// Whether the store has no sources yet.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.state.read().sources.is_empty())
    }

    /// Remove a source entirely (dynamic-membership pruning).
    pub fn remove(&self, name: &str) -> bool {
        let mut guard = self.shard(name).state.write();
        let Some(removed) = guard.sources.remove(name) else {
            return false;
        };
        self.absorb(&mut guard, SummaryDelta::retraction(&removed.summary));
        self.bump(&mut guard);
        true
    }

    /// The merged summary of every source — the whole grid in one
    /// reduction. O(shards), not O(sources): each shard already holds
    /// the incrementally-maintained merge of its own sources, so an
    /// uncached call merges ≤N shard summaries. Cached per store
    /// revision so repeated meta-view queries cost O(1) after the first.
    ///
    /// The revision is read *while holding every shard's read lock*, so
    /// the (revision, merge) pair is always consistent: every writer
    /// bumps the revision while still holding its shard's write lock,
    /// so no mutation can slip between the two reads and pin a stale
    /// merge under a new revision. The cache is only ever advanced,
    /// never regressed.
    pub fn root_summary(&self) -> Arc<SummaryBody> {
        {
            let cache = self.root_cache.read();
            if let Some((cached_rev, summary)) = cache.as_ref() {
                if *cached_rev == self.revision.load(Ordering::Acquire) {
                    return Arc::clone(summary);
                }
            }
        }
        let guards: Vec<_> = self.shards.iter().map(|s| s.state.read()).collect();
        let revision = self.revision.load(Ordering::Acquire);
        let mut merged = SummaryBody::default();
        for guard in &guards {
            merged.merge(&guard.summary);
        }
        drop(guards);
        self.stats.root_merges.fetch_add(1, Ordering::Relaxed);
        self.stats
            .root_merge_inputs
            .fetch_add(self.shards.len() as u64, Ordering::Relaxed);
        let merged = Arc::new(merged);
        let mut cache = self.root_cache.write();
        match cache.as_ref() {
            // A concurrent caller already cached a newer merge: keep it.
            Some((cached_rev, _)) if *cached_rev > revision => {}
            _ => *cache = Some((revision, Arc::clone(&merged))),
        }
        merged
    }

    /// The root summary re-merged from every *source* (not the shard
    /// summaries), with the revision it corresponds to — the
    /// O(sources × metrics) reference path the incremental maintenance
    /// replaced. Kept for verification: tests and the federation bench
    /// assert [`Store::root_summary`] never drifts from this.
    pub fn root_summary_full(&self) -> (u64, SummaryBody) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.state.read()).collect();
        let revision = self.revision.load(Ordering::Acquire);
        let mut entries: Vec<&Arc<SourceState>> =
            guards.iter().flat_map(|g| g.sources.values()).collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let mut merged = SummaryBody::default();
        for source in &entries {
            merged.merge(&source.summary);
        }
        self.stats
            .source_touches
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        (revision, merged)
    }

    /// Current revision (bumps on every mutation).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }
}

/// FNV-1a over the source name: cheap, stable across runs (no
/// per-process hasher seed), and well-mixed for short strings.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Debug-build guard: after each delta application, require the shard
/// summary to still match a from-scratch re-merge (exact integer
/// counts; sums within float-drift tolerance). Skipped for big shards
/// (the check is O(shard-size)) and for non-finite sums (NaN/inf are
/// not comparable and are re-grounded by the periodic rebuild anyway).
#[cfg(debug_assertions)]
fn debug_check_shard_drift(shard: &ShardState) {
    if shard.sources.len() > 64 {
        return;
    }
    let mut expected = SummaryBody::default();
    for source in shard.sources.values() {
        expected.merge(&source.summary);
    }
    let incremental = &shard.summary;
    debug_assert_eq!(incremental.hosts_up, expected.hosts_up);
    debug_assert_eq!(incremental.hosts_down, expected.hosts_down);
    debug_assert_eq!(incremental.metrics.len(), expected.metrics.len());
    for metric in &expected.metrics {
        let Some(ours) = incremental.metric(metric.name.as_str()) else {
            panic!("incremental summary lost metric {}", metric.name);
        };
        debug_assert_eq!(ours.num, metric.num, "NUM drift on {}", metric.name);
        if !ours.sum.is_finite() || !metric.sum.is_finite() {
            continue;
        }
        let tolerance = 1e-6 * metric.sum.abs().max(1.0);
        debug_assert!(
            (ours.sum - metric.sum).abs() <= tolerance,
            "SUM drift on {}: incremental {} vs full {}",
            metric.name,
            ours.sum,
            metric.sum
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::model::{MetricEntry, SummaryBody};
    use ganglia_metrics::MetricValue;

    fn cluster_state(name: &str, hosts: usize, load: f64, now: u64) -> SourceState {
        let hosts: Vec<HostNode> = (0..hosts)
            .map(|i| {
                let mut h = HostNode::new(format!("{name}-{i}"), "10.0.0.1");
                h.metrics
                    .push(MetricEntry::new("load_one", MetricValue::Double(load)));
                h
            })
            .collect();
        let cluster = ClusterNode::with_hosts(name, hosts);
        let summary = cluster.summary();
        SourceState::cluster(name, cluster, summary, now)
    }

    /// Order-insensitive exact equality: metric order in a merged
    /// summary is a merge-history artifact, not part of its value.
    fn same_value(a: &SummaryBody, b: &SummaryBody) -> bool {
        a.hosts_up == b.hosts_up
            && a.hosts_down == b.hosts_down
            && a.metrics.len() == b.metrics.len()
            && a.metrics.iter().all(|m| {
                b.metric(m.name.as_str())
                    .is_some_and(|o| o.sum.to_bits() == m.sum.to_bits() && o.num == m.num)
            })
    }

    #[test]
    fn replace_and_lookup() {
        let store = Store::new();
        store.replace(cluster_state("meteor", 3, 1.0, 10));
        assert_eq!(store.len(), 1);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.host_count(), 3);
        assert!(state.host("meteor-1").is_some());
        assert!(state.host("nope").is_none());
        assert_eq!(state.status, SourceStatus::Fresh);
    }

    #[test]
    fn snapshots_are_immutable_across_replace() {
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        let old = store.get("meteor").unwrap();
        store.replace(cluster_state("meteor", 5, 2.0, 25));
        // The old snapshot a concurrent query holds is untouched.
        assert_eq!(old.host_count(), 2);
        assert_eq!(store.get("meteor").unwrap().host_count(), 5);
    }

    #[test]
    fn snapshots_held_by_queries_survive_lifecycle_mutation() {
        // `mark_stale`/`degrade` mutate via `Arc::make_mut`, which must
        // copy-on-write when a query still holds the snapshot.
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        let held = store.get("meteor").unwrap();
        store.mark_stale("meteor", 40);
        assert_eq!(held.status, SourceStatus::Fresh, "held snapshot mutated");
        assert_eq!(
            store.get("meteor").unwrap().status,
            SourceStatus::Stale { since: 40 }
        );
    }

    #[test]
    fn mark_stale_keeps_last_good_data() {
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        store.mark_stale("meteor", 40);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Stale { since: 40 });
        assert_eq!(state.host_count(), 2, "data survives for forensics");
        // A second failure does not move the original stale time.
        store.mark_stale("meteor", 100);
        assert_eq!(
            store.get("meteor").unwrap().status,
            SourceStatus::Stale { since: 40 }
        );
        // Unknown sources are ignored.
        store.mark_stale("ghost", 50);
        assert!(store.get("ghost").is_none());
    }

    #[test]
    fn degrade_walks_the_lifecycle_and_rewrites_summaries() {
        let lifecycle = LifecyclePolicy {
            down_after_secs: 60,
            expire_after_secs: 600,
        };
        let store = Store::new();
        store.replace(cluster_state("meteor", 4, 1.0, 100));
        // Within the down window: stale, summary untouched.
        assert_eq!(store.degrade("meteor", 130, &lifecycle), Degradation::Stale);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Stale { since: 130 });
        assert_eq!(state.summary.hosts_up, 4);
        // A later failure keeps the original stale timestamp.
        assert_eq!(store.degrade("meteor", 145, &lifecycle), Degradation::Stale);
        assert_eq!(
            store.get("meteor").unwrap().status,
            SourceStatus::Stale { since: 130 }
        );
        // Past the down threshold: hosts flip to down, metrics drop out
        // of the rollup, data stays for forensics.
        assert_eq!(store.degrade("meteor", 175, &lifecycle), Degradation::Down);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Down { since: 175 });
        assert_eq!(state.summary.hosts_up, 0);
        assert_eq!(state.summary.hosts_down, 4);
        assert!(state.summary.metrics.is_empty());
        assert_eq!(state.host_count(), 4, "full data kept for drill-down");
        assert_eq!(store.root_summary().hosts_down, 4);
        // Repeated failures while down change nothing.
        let revision = store.revision();
        assert_eq!(store.degrade("meteor", 300, &lifecycle), Degradation::Down);
        assert_eq!(store.revision(), revision);
        // Past expiry: pruned.
        assert_eq!(
            store.degrade("meteor", 701, &lifecycle),
            Degradation::Expired
        );
        assert!(store.get("meteor").is_none());
        assert_eq!(store.root_summary().hosts_total(), 0);
        // And a dead source stays unknown.
        assert_eq!(
            store.degrade("meteor", 716, &lifecycle),
            Degradation::Unknown
        );
    }

    #[test]
    fn heal_after_down_restores_fresh_state() {
        let lifecycle = LifecyclePolicy::default();
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        store.degrade("meteor", 100, &lifecycle);
        assert!(matches!(
            store.get("meteor").unwrap().status,
            SourceStatus::Down { .. }
        ));
        // A successful poll replaces the whole snapshot.
        store.replace(cluster_state("meteor", 2, 1.5, 130));
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Fresh);
        assert_eq!(state.summary.hosts_up, 2);
        assert_eq!(state.summary.hosts_down, 0);
    }

    #[test]
    fn list_is_sorted() {
        let store = Store::new();
        store.replace(cluster_state("zebra", 1, 1.0, 0));
        store.replace(cluster_state("alpha", 1, 1.0, 0));
        let names: Vec<String> = store.list().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }

    #[test]
    fn list_is_cached_per_revision() {
        let store = Store::new();
        store.replace(cluster_state("alpha", 1, 1.0, 0));
        store.replace(cluster_state("zebra", 1, 1.0, 0));
        let first = store.list();
        let second = store.list();
        assert!(
            Arc::ptr_eq(&first, &second),
            "same revision shares one sort"
        );
        store.replace(cluster_state("mid", 1, 1.0, 0));
        let third = store.list();
        assert!(!Arc::ptr_eq(&first, &third));
        let names: Vec<&str> = third.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
        // Lifecycle mutations invalidate the listing too.
        store.mark_stale("mid", 9);
        let fourth = store.list();
        assert!(!Arc::ptr_eq(&third, &fourth));
        assert!(matches!(
            fourth.iter().find(|s| s.name == "mid").unwrap().status,
            SourceStatus::Stale { .. }
        ));
    }

    #[test]
    fn root_summary_merges_and_caches() {
        let store = Store::new();
        store.replace(cluster_state("a", 2, 1.0, 0));
        store.replace(cluster_state("b", 3, 2.0, 0));
        let summary = store.root_summary();
        assert_eq!(summary.hosts_up, 5);
        let load = summary.metric("load_one").unwrap();
        assert!((load.sum - (2.0 + 6.0)).abs() < 1e-9);
        // Cached: same Arc until a mutation.
        let again = store.root_summary();
        assert!(Arc::ptr_eq(&summary, &again));
        store.replace(cluster_state("c", 1, 0.0, 0));
        let fresh = store.root_summary();
        assert!(!Arc::ptr_eq(&summary, &fresh));
        assert_eq!(fresh.hosts_up, 6);
    }

    #[test]
    fn replaces_to_distinct_sources_move_disjoint_shard_stamps() {
        let store = Store::with_shards(8, DEFAULT_REBUILD_ROUNDS);
        // Find two names that land in different shards.
        let names: Vec<String> = (0..64).map(|i| format!("grid{i:02}")).collect();
        let a = &names[0];
        let b = names
            .iter()
            .find(|n| store.shard_index(n) != store.shard_index(a))
            .expect("64 names cover more than one of 8 shards");
        let before = store.shard_revisions();
        store.replace(cluster_state(a, 1, 1.0, 0));
        let after_a = store.shard_revisions();
        store.replace(cluster_state(b, 1, 1.0, 0));
        let after_b = store.shard_revisions();
        let touched = |x: &[u64], y: &[u64]| -> Vec<usize> {
            x.iter()
                .zip(y)
                .enumerate()
                .filter(|(_, (m, n))| m != n)
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(touched(&before, &after_a), vec![store.shard_index(a)]);
        assert_eq!(touched(&after_a, &after_b), vec![store.shard_index(b)]);
    }

    #[test]
    fn incremental_summary_matches_full_remerge_through_lifecycle() {
        // Small rebuild cadence so the scripted walk crosses several
        // anti-drift rebuilds; dyadic loads keep float math exact.
        let lifecycle = LifecyclePolicy {
            down_after_secs: 60,
            expire_after_secs: 600,
        };
        let store = Store::with_shards(3, 4);
        let check = |step: &str| {
            let (_, full) = store.root_summary_full();
            let incremental = store.root_summary();
            assert!(
                same_value(&incremental, &full),
                "{step}: incremental {incremental:?} != full {full:?}"
            );
        };
        for i in 0..12 {
            store.replace(cluster_state(&format!("g{i}"), i + 1, 0.25 * i as f64, 100));
            check("seed replace");
        }
        for i in 0..12 {
            store.replace(cluster_state(&format!("g{i}"), i + 2, 0.5 * i as f64, 110));
            check("re-replace");
        }
        store.degrade("g3", 170, &lifecycle); // stale
        check("stale");
        store.degrade("g4", 250, &lifecycle); // down: summary rewritten
        check("down");
        store.degrade("g5", 800, &lifecycle); // expired: retracted
        check("expired");
        assert!(store.remove("g6"));
        check("removed");
        store.replace(cluster_state("g4", 9, 1.75, 900)); // heal
        check("healed");
        assert!(store.get("g5").is_none());
        let stats = store.stats();
        assert!(stats.deltas_applied > 0, "delta path never exercised");
        assert!(stats.summary_rebuilds > 0, "rebuild path never exercised");
    }

    #[test]
    fn root_summary_never_pins_a_stale_merge_under_a_new_revision() {
        // Regression: replace() used to bump the revision after dropping
        // the write lock, so a summarizer interleaved between the insert
        // and the bump could stamp an old merge with the new revision
        // and pin it in the cache until the next write. Hammer
        // replace/root_summary from several threads and require the
        // final answer to reflect the final replace.
        //
        // Extended for the sharded store: writers spread over many
        // sources (hence shards and locks), each source keeps a constant
        // host count so every consistent snapshot has the same total,
        // and readers cross-check the incremental merge against the
        // from-scratch path whenever the revision is stable around it.
        use std::sync::atomic::AtomicBool;
        let store = Store::with_shards(8, 4);
        const SOURCES: usize = 16;
        const HOSTS_PER_SOURCE: usize = 3;
        for i in 0..SOURCES {
            store.replace(cluster_state(&format!("s{i}"), HOSTS_PER_SOURCE, 1.0, 0));
        }
        let expected_total = (SOURCES * HOSTS_PER_SOURCE) as u32;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let before = store.revision();
                        let summary = store.root_summary();
                        // Constant per-source host counts: every
                        // consistent snapshot has the same total.
                        assert_eq!(summary.hosts_total(), expected_total);
                        let (full_rev, full) = store.root_summary_full();
                        if before == full_rev && store.revision() == full_rev {
                            // No mutation in the window: the incremental
                            // merge must equal the from-scratch one.
                            assert!(
                                same_value(&summary, &full),
                                "drift at revision {full_rev}: {summary:?} vs {full:?}"
                            );
                        }
                    }
                });
            }
            let writers: Vec<_> = (0..4)
                .map(|writer| {
                    let store = &store;
                    scope.spawn(move || {
                        for round in 1..=64u64 {
                            for i in (writer..SOURCES).step_by(4) {
                                let load = 0.25 * (round as f64) + i as f64;
                                store.replace(cluster_state(
                                    &format!("s{i}"),
                                    HOSTS_PER_SOURCE,
                                    load,
                                    round,
                                ));
                            }
                        }
                    })
                })
                .collect();
            for handle in writers {
                handle.join().expect("writer thread panicked");
            }
            stop.store(true, Ordering::Relaxed);
        });
        let (_, full) = store.root_summary_full();
        let summary = store.root_summary();
        assert_eq!(
            summary.hosts_total(),
            expected_total,
            "cache pinned a stale merge under the latest revision"
        );
        assert!(same_value(&summary, &full), "final state drifted");
        // And once consistent, repeated reads hit the cache.
        let a = store.root_summary();
        let b = store.root_summary();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn remove_deletes_source() {
        let store = Store::new();
        store.replace(cluster_state("a", 1, 1.0, 0));
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(store.is_empty());
        assert_eq!(store.root_summary().hosts_total(), 0);
    }

    #[test]
    fn root_merges_touch_shards_not_sources() {
        let store = Store::with_shards(4, 0); // pure incremental
        for i in 0..32 {
            store.replace(cluster_state(&format!("g{i}"), 2, 0.5, 0));
        }
        let before = store.stats();
        let _ = store.root_summary();
        let after = store.stats();
        assert_eq!(after.root_merges - before.root_merges, 1);
        assert_eq!(
            after.root_merge_inputs - before.root_merge_inputs,
            4,
            "uncached root merge must touch one summary per shard"
        );
        assert_eq!(
            after.source_touches, before.source_touches,
            "incremental root path must not touch per-source summaries"
        );
    }

    #[test]
    fn grid_source_state() {
        use ganglia_metrics::model::{GridBody, GridNode};
        let summary = SummaryBody {
            hosts_up: 10,
            hosts_down: 1,
            metrics: vec![],
        };
        let grid = GridNode {
            name: "attic".into(),
            authority: "http://attic/".into(),
            localtime: None,
            body: GridBody::Summary(summary.clone()),
        };
        let state = SourceState::grid("attic", grid, summary, 5);
        assert_eq!(state.host_count(), 11);
        assert!(state.host("x").is_none());
        assert!(state.host_index.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            /// Replace source `idx` with `hosts` hosts at a dyadic load.
            Replace {
                idx: usize,
                hosts: usize,
                eighths: i32,
            },
            /// Fail source `idx` with the given poll-gap in seconds.
            Degrade {
                idx: usize,
                gap: u64,
            },
            MarkStale {
                idx: usize,
            },
            Remove {
                idx: usize,
            },
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                4 => (0usize..12, 1usize..6, -64i32..64)
                    .prop_map(|(idx, hosts, eighths)| Op::Replace { idx, hosts, eighths }),
                2 => (0usize..12, prop_oneof![Just(30u64), Just(120), Just(700)])
                    .prop_map(|(idx, gap)| Op::Degrade { idx, gap }),
                1 => (0usize..12).prop_map(|idx| Op::MarkStale { idx }),
                1 => (0usize..12).prop_map(|idx| Op::Remove { idx }),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Any interleaving of replace/degrade/stale/remove across
            /// shards keeps the incremental root summary bit-identical
            /// (dyadic loads) to a from-scratch merge of the sources.
            #[test]
            fn incremental_root_summary_never_drifts(ops in proptest::collection::vec(arb_op(), 1..48)) {
                let lifecycle = LifecyclePolicy {
                    down_after_secs: 60,
                    expire_after_secs: 600,
                };
                // Odd shard count + tiny rebuild cadence: exercise both
                // the delta and the rebuild path.
                let store = Store::with_shards(5, 3);
                let mut clock = 100u64;
                for op in &ops {
                    clock += 1;
                    match *op {
                        Op::Replace { idx, hosts, eighths } => {
                            let load = f64::from(eighths) / 8.0;
                            store.replace(cluster_state(&format!("src{idx}"), hosts, load, clock));
                        }
                        Op::Degrade { idx, gap } => {
                            store.degrade(&format!("src{idx}"), clock.saturating_add(gap), &lifecycle);
                        }
                        Op::MarkStale { idx } => store.mark_stale(&format!("src{idx}"), clock),
                        Op::Remove { idx } => {
                            store.remove(&format!("src{idx}"));
                        }
                    }
                    let (full_rev, full) = store.root_summary_full();
                    let incremental = store.root_summary();
                    prop_assert_eq!(full_rev, store.revision());
                    prop_assert!(
                        same_value(&incremental, &full),
                        "after {:?}: incremental {:?} != full {:?}",
                        op, incremental, full
                    );
                }
            }
        }
    }
}
