//! The in-memory monitoring-data store.
//!
//! "By organizing the parsed monitoring data in a series of hash tables,
//! we can support very low-latency queries. Our approach approximates a
//! DOM design where each XML tag name keys into a hash table... A node
//! must search at most three hash table levels to find the desired
//! subtree: data sources, summaries and cluster nodes, and node metrics."
//! (paper §3.3.2)
//!
//! Concretely: level one is the source map below; level two is a
//! cluster's host index (or a grid's stored summary); level three is a
//! host's metric list. Each source's state is an immutable snapshot
//! behind an `Arc`: the poller builds a fresh snapshot off to the side
//! and swaps the pointer, so "if a query arrives during parsing, the
//! previous summary will be returned" (§3.3.1) — queries always see the
//! latest *fully-parsed* data, never a half-built one.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use ganglia_metrics::model::{ClusterBody, ClusterNode, GridNode, HostNode, SummaryBody};
use ganglia_metrics::Atom;

use crate::health::LifecyclePolicy;

/// Freshness of a source's snapshot: the staleness lifecycle
/// `Fresh → Stale → Down` (and finally expiry, which removes the
/// snapshot from the store altogether).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// The last poll succeeded.
    Fresh,
    /// Polls have been failing since the given time; the snapshot is the
    /// last good one ("metric histories that aid in forensic analysis",
    /// paper §1).
    Stale { since: u64 },
    /// No good poll for longer than the lifecycle's down threshold (the
    /// wide-area DMAX): the source's hosts are reported as down up the
    /// tree. `since` is when the down transition happened.
    Down { since: u64 },
}

impl fmt::Display for SourceStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceStatus::Fresh => write!(f, "fresh"),
            SourceStatus::Stale { since } => write!(f, "stale(since={since})"),
            SourceStatus::Down { since } => write!(f, "down(since={since})"),
        }
    }
}

/// What [`Store::degrade`] did to a failing source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Recent failure: snapshot kept and served, flagged stale.
    Stale,
    /// Past the down threshold: summary rewritten so every host counts
    /// as `hosts_down`, which propagates up the tree additively.
    Down,
    /// Past the expiry threshold: snapshot pruned from the store.
    Expired,
    /// The source had no snapshot to degrade (never polled, or already
    /// expired).
    Unknown,
}

/// Parsed payload of one data source.
#[derive(Debug, Clone)]
pub enum SourceData {
    /// A directly-attached cluster (this gmetad is its authority).
    Cluster(ClusterNode),
    /// A remote grid: summary-form under the N-level design, fully
    /// expanded under the 1-level design.
    Grid(GridNode),
}

/// An immutable snapshot of one source.
#[derive(Debug, Clone)]
pub struct SourceState {
    /// Configured source name (level-one hash key).
    pub name: String,
    pub data: SourceData,
    /// Precomputed rollup (computed on the summarization time-scale, not
    /// at query time — §3.3.1). Behind an `Arc` so the delta-aware ingest
    /// path can install a reused summary without copying it.
    pub summary: Arc<SummaryBody>,
    /// Level-two hash index: host name → index into the cluster's host
    /// vector. Empty for grid sources.
    pub host_index: HashMap<Atom, usize>,
    /// When this snapshot was parsed.
    pub updated_at: u64,
    pub status: SourceStatus,
}

impl SourceState {
    /// Build a snapshot for a cluster source, constructing the host index.
    /// `summary` must be the cluster's precomputed rollup.
    pub fn cluster(
        name: impl Into<String>,
        cluster: ClusterNode,
        summary: impl Into<Arc<SummaryBody>>,
        now: u64,
    ) -> SourceState {
        let host_index = match &cluster.body {
            ClusterBody::Hosts(hosts) => hosts
                .iter()
                .enumerate()
                .map(|(i, h)| (h.name.clone(), i))
                .collect(),
            ClusterBody::Summary(_) => HashMap::new(),
        };
        SourceState {
            name: name.into(),
            data: SourceData::Cluster(cluster),
            summary: summary.into(),
            host_index,
            updated_at: now,
            status: SourceStatus::Fresh,
        }
    }

    /// Build a snapshot for a grid source.
    pub fn grid(
        name: impl Into<String>,
        grid: GridNode,
        summary: impl Into<Arc<SummaryBody>>,
        now: u64,
    ) -> SourceState {
        SourceState {
            name: name.into(),
            data: SourceData::Grid(grid),
            summary: summary.into(),
            host_index: HashMap::new(),
            updated_at: now,
            status: SourceStatus::Fresh,
        }
    }

    /// O(1) host lookup (level-two hash, paper fig 4).
    pub fn host(&self, name: &str) -> Option<&HostNode> {
        let SourceData::Cluster(cluster) = &self.data else {
            return None;
        };
        let ClusterBody::Hosts(hosts) = &cluster.body else {
            return None;
        };
        self.host_index.get(name).map(|&i| hosts[i].as_ref())
    }

    /// Number of hosts described by this source.
    pub fn host_count(&self) -> usize {
        match &self.data {
            SourceData::Cluster(c) => c.host_count(),
            SourceData::Grid(g) => g.host_count(),
        }
    }
}

/// The level-one hash table: data sources by name.
#[derive(Debug, Default)]
pub struct Store {
    sources: RwLock<HashMap<String, Arc<SourceState>>>,
    /// Bumped on every replace; invalidates the root-summary cache.
    revision: AtomicU64,
    /// Cached merge of all source summaries, keyed by revision.
    root_cache: Mutex<Option<(u64, Arc<SummaryBody>)>>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Install a fresh snapshot for a source (pointer swap).
    ///
    /// The revision bump happens *inside* the write lock: bumping after
    /// the guard dropped opened a window where [`Store::root_summary`]
    /// could merge the new sources under the old revision — or, worse,
    /// stamp an old merge with the new revision and pin it in the cache.
    pub fn replace(&self, state: SourceState) {
        let name = state.name.clone();
        let mut sources = self.sources.write();
        sources.insert(name, Arc::new(state));
        self.revision.fetch_add(1, Ordering::Release);
    }

    /// Mark a source stale as of `now` (its last good snapshot stays
    /// queryable). No-op for unknown sources; keeps an existing stale
    /// timestamp and never un-downs a down source.
    pub fn mark_stale(&self, name: &str, now: u64) {
        let mut sources = self.sources.write();
        if let Some(existing) = sources.get(name) {
            if !matches!(existing.status, SourceStatus::Fresh) {
                return;
            }
            let mut updated = (**existing).clone();
            updated.status = SourceStatus::Stale { since: now };
            sources.insert(name.to_string(), Arc::new(updated));
            self.revision.fetch_add(1, Ordering::Release);
        }
    }

    /// Advance a failing source along the staleness lifecycle, based on
    /// `TN = now - updated_at` (time since the last good poll):
    ///
    /// * `TN ≤ down_after` — flag [`SourceStatus::Stale`]; the last good
    ///   snapshot keeps being served (§3.3.1: "the previous summary will
    ///   be returned").
    /// * `TN > down_after` — flag [`SourceStatus::Down`] and rewrite the
    ///   stored summary to `hosts_up = 0, hosts_down = total` with no
    ///   metric rows, so parents polling this daemon aggregate the
    ///   outage instead of stale readings.
    /// * `TN > expire_after` — prune the snapshot entirely: a source
    ///   dead this long no longer contributes to any view.
    pub fn degrade(&self, name: &str, now: u64, lifecycle: &LifecyclePolicy) -> Degradation {
        let mut sources = self.sources.write();
        let Some(existing) = sources.get(name) else {
            return Degradation::Unknown;
        };
        let tn = now.saturating_sub(existing.updated_at);
        if tn > lifecycle.expire_after_secs {
            sources.remove(name);
            self.revision.fetch_add(1, Ordering::Release);
            return Degradation::Expired;
        }
        if tn > lifecycle.down_after_secs {
            if matches!(existing.status, SourceStatus::Down { .. }) {
                return Degradation::Down;
            }
            let mut updated = (**existing).clone();
            updated.status = SourceStatus::Down { since: now };
            updated.summary = Arc::new(SummaryBody {
                hosts_up: 0,
                hosts_down: existing.summary.hosts_total(),
                metrics: Vec::new(),
            });
            sources.insert(name.to_string(), Arc::new(updated));
            self.revision.fetch_add(1, Ordering::Release);
            return Degradation::Down;
        }
        if matches!(existing.status, SourceStatus::Fresh) {
            let mut updated = (**existing).clone();
            updated.status = SourceStatus::Stale { since: now };
            sources.insert(name.to_string(), Arc::new(updated));
            self.revision.fetch_add(1, Ordering::Release);
        }
        Degradation::Stale
    }

    /// Snapshot of one source.
    pub fn get(&self, name: &str) -> Option<Arc<SourceState>> {
        self.sources.read().get(name).cloned()
    }

    /// All sources, sorted by name (deterministic output order).
    pub fn list(&self) -> Vec<Arc<SourceState>> {
        let mut out: Vec<Arc<SourceState>> = self.sources.read().values().cloned().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of sources present.
    pub fn len(&self) -> usize {
        self.sources.read().len()
    }

    /// Whether the store has no sources yet.
    pub fn is_empty(&self) -> bool {
        self.sources.read().is_empty()
    }

    /// Remove a source entirely (dynamic-membership pruning).
    pub fn remove(&self, name: &str) -> bool {
        let mut sources = self.sources.write();
        let removed = sources.remove(name).is_some();
        if removed {
            // Bumped under the write lock; see `replace`.
            self.revision.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// The merged summary of every source — the whole grid in one
    /// reduction. Cached per store revision so repeated meta-view queries
    /// cost O(1) after the first.
    ///
    /// The revision is read *under the sources read-lock*, so the
    /// (revision, merge) pair is always consistent: every writer bumps
    /// the revision while still holding the write lock, so no `replace`
    /// can slip between the two reads and pin a stale merge under a new
    /// revision. The cache is only ever advanced, never regressed.
    pub fn root_summary(&self) -> Arc<SummaryBody> {
        {
            let cache = self.root_cache.lock();
            if let Some((cached_rev, summary)) = cache.as_ref() {
                if *cached_rev == self.revision.load(Ordering::Acquire) {
                    return Arc::clone(summary);
                }
            }
        }
        let (revision, merged) = {
            let sources = self.sources.read();
            let revision = self.revision.load(Ordering::Acquire);
            let mut merged = SummaryBody::default();
            for state in sources.values() {
                merged.merge(&state.summary);
            }
            (revision, Arc::new(merged))
        };
        let mut cache = self.root_cache.lock();
        match cache.as_ref() {
            // A concurrent caller already cached a newer merge: keep it.
            Some((cached_rev, _)) if *cached_rev > revision => {}
            _ => *cache = Some((revision, Arc::clone(&merged))),
        }
        merged
    }

    /// Current revision (bumps on every mutation).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::model::{MetricEntry, SummaryBody};
    use ganglia_metrics::MetricValue;

    fn cluster_state(name: &str, hosts: usize, load: f64, now: u64) -> SourceState {
        let hosts: Vec<HostNode> = (0..hosts)
            .map(|i| {
                let mut h = HostNode::new(format!("{name}-{i}"), "10.0.0.1");
                h.metrics
                    .push(MetricEntry::new("load_one", MetricValue::Double(load)));
                h
            })
            .collect();
        let cluster = ClusterNode::with_hosts(name, hosts);
        let summary = cluster.summary();
        SourceState::cluster(name, cluster, summary, now)
    }

    #[test]
    fn replace_and_lookup() {
        let store = Store::new();
        store.replace(cluster_state("meteor", 3, 1.0, 10));
        assert_eq!(store.len(), 1);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.host_count(), 3);
        assert!(state.host("meteor-1").is_some());
        assert!(state.host("nope").is_none());
        assert_eq!(state.status, SourceStatus::Fresh);
    }

    #[test]
    fn snapshots_are_immutable_across_replace() {
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        let old = store.get("meteor").unwrap();
        store.replace(cluster_state("meteor", 5, 2.0, 25));
        // The old snapshot a concurrent query holds is untouched.
        assert_eq!(old.host_count(), 2);
        assert_eq!(store.get("meteor").unwrap().host_count(), 5);
    }

    #[test]
    fn mark_stale_keeps_last_good_data() {
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        store.mark_stale("meteor", 40);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Stale { since: 40 });
        assert_eq!(state.host_count(), 2, "data survives for forensics");
        // A second failure does not move the original stale time.
        store.mark_stale("meteor", 100);
        assert_eq!(
            store.get("meteor").unwrap().status,
            SourceStatus::Stale { since: 40 }
        );
        // Unknown sources are ignored.
        store.mark_stale("ghost", 50);
        assert!(store.get("ghost").is_none());
    }

    #[test]
    fn degrade_walks_the_lifecycle_and_rewrites_summaries() {
        let lifecycle = LifecyclePolicy {
            down_after_secs: 60,
            expire_after_secs: 600,
        };
        let store = Store::new();
        store.replace(cluster_state("meteor", 4, 1.0, 100));
        // Within the down window: stale, summary untouched.
        assert_eq!(store.degrade("meteor", 130, &lifecycle), Degradation::Stale);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Stale { since: 130 });
        assert_eq!(state.summary.hosts_up, 4);
        // A later failure keeps the original stale timestamp.
        assert_eq!(store.degrade("meteor", 145, &lifecycle), Degradation::Stale);
        assert_eq!(
            store.get("meteor").unwrap().status,
            SourceStatus::Stale { since: 130 }
        );
        // Past the down threshold: hosts flip to down, metrics drop out
        // of the rollup, data stays for forensics.
        assert_eq!(store.degrade("meteor", 175, &lifecycle), Degradation::Down);
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Down { since: 175 });
        assert_eq!(state.summary.hosts_up, 0);
        assert_eq!(state.summary.hosts_down, 4);
        assert!(state.summary.metrics.is_empty());
        assert_eq!(state.host_count(), 4, "full data kept for drill-down");
        assert_eq!(store.root_summary().hosts_down, 4);
        // Repeated failures while down change nothing.
        let revision = store.revision();
        assert_eq!(store.degrade("meteor", 300, &lifecycle), Degradation::Down);
        assert_eq!(store.revision(), revision);
        // Past expiry: pruned.
        assert_eq!(
            store.degrade("meteor", 701, &lifecycle),
            Degradation::Expired
        );
        assert!(store.get("meteor").is_none());
        assert_eq!(store.root_summary().hosts_total(), 0);
        // And a dead source stays unknown.
        assert_eq!(
            store.degrade("meteor", 716, &lifecycle),
            Degradation::Unknown
        );
    }

    #[test]
    fn heal_after_down_restores_fresh_state() {
        let lifecycle = LifecyclePolicy::default();
        let store = Store::new();
        store.replace(cluster_state("meteor", 2, 1.0, 10));
        store.degrade("meteor", 100, &lifecycle);
        assert!(matches!(
            store.get("meteor").unwrap().status,
            SourceStatus::Down { .. }
        ));
        // A successful poll replaces the whole snapshot.
        store.replace(cluster_state("meteor", 2, 1.5, 130));
        let state = store.get("meteor").unwrap();
        assert_eq!(state.status, SourceStatus::Fresh);
        assert_eq!(state.summary.hosts_up, 2);
        assert_eq!(state.summary.hosts_down, 0);
    }

    #[test]
    fn list_is_sorted() {
        let store = Store::new();
        store.replace(cluster_state("zebra", 1, 1.0, 0));
        store.replace(cluster_state("alpha", 1, 1.0, 0));
        let names: Vec<String> = store.list().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }

    #[test]
    fn root_summary_merges_and_caches() {
        let store = Store::new();
        store.replace(cluster_state("a", 2, 1.0, 0));
        store.replace(cluster_state("b", 3, 2.0, 0));
        let summary = store.root_summary();
        assert_eq!(summary.hosts_up, 5);
        let load = summary.metric("load_one").unwrap();
        assert!((load.sum - (2.0 + 6.0)).abs() < 1e-9);
        // Cached: same Arc until a mutation.
        let again = store.root_summary();
        assert!(Arc::ptr_eq(&summary, &again));
        store.replace(cluster_state("c", 1, 0.0, 0));
        let fresh = store.root_summary();
        assert!(!Arc::ptr_eq(&summary, &fresh));
        assert_eq!(fresh.hosts_up, 6);
    }

    #[test]
    fn root_summary_never_pins_a_stale_merge_under_a_new_revision() {
        // Regression: replace() used to bump the revision after dropping
        // the write lock, so a summarizer interleaved between the insert
        // and the bump could stamp an old merge with the new revision
        // and pin it in the cache until the next write. Hammer
        // replace/root_summary from several threads and require the
        // final answer to reflect the final replace.
        use std::sync::atomic::AtomicBool;
        let store = Store::new();
        store.replace(cluster_state("s", 1, 1.0, 0));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let summary = store.root_summary();
                        assert!(summary.hosts_total() >= 1);
                    }
                });
            }
            for hosts in 2..=64usize {
                store.replace(cluster_state("s", hosts, 1.0, hosts as u64));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            store.root_summary().hosts_total(),
            64,
            "cache pinned a stale merge under the latest revision"
        );
        // And once consistent, repeated reads hit the cache.
        let a = store.root_summary();
        let b = store.root_summary();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn remove_deletes_source() {
        let store = Store::new();
        store.replace(cluster_state("a", 1, 1.0, 0));
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(store.is_empty());
        assert_eq!(store.root_summary().hosts_total(), 0);
    }

    #[test]
    fn grid_source_state() {
        use ganglia_metrics::model::{GridBody, GridNode};
        let summary = SummaryBody {
            hosts_up: 10,
            hosts_down: 1,
            metrics: vec![],
        };
        let grid = GridNode {
            name: "attic".into(),
            authority: "http://attic/".into(),
            localtime: None,
            body: GridBody::Summary(summary.clone()),
        };
        let state = SourceState::grid("attic", grid, summary, 5);
        assert_eq!(state.host_count(), 11);
        assert!(state.host("x").is_none());
        assert!(state.host_index.is_empty());
    }
}
