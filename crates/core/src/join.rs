//! Self-organizing tree membership (paper §5, future work).
//!
//! "We would like to incorporate a wide-area trust model similar to MDS,
//! where parents have no explicit knowledge of their children. Children
//! in an MDS tree periodically send join messages to their parents, who
//! verify trust via a cryptographic certificate sent with the message.
//! Nodes are automatically pruned from the tree if their join messages
//! cease." (paper §5)
//!
//! The implementation here is exactly that: a child periodically sends a
//! signed join message naming itself and its redundant endpoints; the
//! parent verifies an HMAC-SHA256 certificate over the message under a
//! shared deployment secret, registers the child as a data source, and
//! prunes children whose joins stop — the same soft-state discipline
//! gmond applies to hosts.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use ganglia_net::Addr;

use crate::config::DataSourceCfg;
use crate::gmetad::Gmetad;
use crate::sha256::{digest_eq, from_hex, hmac_sha256, to_hex};

/// Why a join message was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// Not a JOIN message or wrong field count.
    Malformed,
    /// The certificate did not verify under the deployment secret.
    BadCertificate,
    /// The timestamp was outside the acceptance window (replay defense).
    StaleTimestamp { sent: u64, now: u64 },
    /// The child listed no endpoints.
    NoEndpoints,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Malformed => write!(f, "malformed join message"),
            JoinError::BadCertificate => write!(f, "certificate verification failed"),
            JoinError::StaleTimestamp { sent, now } => {
                write!(f, "stale join timestamp (sent {sent}, now {now})")
            }
            JoinError::NoEndpoints => write!(f, "join lists no endpoints"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Render a child's join message.
///
/// Format: `JOIN <name> <addr,addr,...> <timestamp> <hmac-hex>`, with
/// the certificate over `name|addrs|timestamp`.
pub fn join_message(name: &str, addrs: &[Addr], now: u64, secret: &[u8]) -> String {
    let addr_list = addrs.iter().map(Addr::as_str).collect::<Vec<_>>().join(",");
    let payload = format!("{name}|{addr_list}|{now}");
    let cert = to_hex(&hmac_sha256(secret, payload.as_bytes()));
    format!("JOIN {name} {addr_list} {now} {cert}")
}

/// Parent-side membership manager.
pub struct JoinManager {
    gmetad: Arc<Gmetad>,
    secret: Vec<u8>,
    /// Seconds a member survives without a fresh join.
    join_timeout: u64,
    /// Seconds of clock skew tolerated on join timestamps.
    acceptance_window: u64,
    members: Mutex<HashMap<String, u64>>,
}

impl JoinManager {
    /// A manager pruning members after `join_timeout` seconds of silence.
    pub fn new(gmetad: Arc<Gmetad>, secret: impl Into<Vec<u8>>, join_timeout: u64) -> Self {
        JoinManager {
            gmetad,
            secret: secret.into(),
            join_timeout,
            acceptance_window: 300,
            members: Mutex::new(HashMap::new()),
        }
    }

    /// Handle one join message at time `now`. On success the child is a
    /// (possibly new) data source of the parent gmetad.
    pub fn handle(&self, message: &str, now: u64) -> Result<(), JoinError> {
        let mut parts = message.split_whitespace();
        if parts.next() != Some("JOIN") {
            return Err(JoinError::Malformed);
        }
        let (Some(name), Some(addr_list), Some(ts_raw), Some(cert_hex), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(JoinError::Malformed);
        };
        let sent: u64 = ts_raw.parse().map_err(|_| JoinError::Malformed)?;
        let cert = from_hex(cert_hex).ok_or(JoinError::Malformed)?;
        let payload = format!("{name}|{addr_list}|{sent}");
        let expected = hmac_sha256(&self.secret, payload.as_bytes());
        if !digest_eq(&cert, &expected) {
            return Err(JoinError::BadCertificate);
        }
        if now.abs_diff(sent) > self.acceptance_window {
            return Err(JoinError::StaleTimestamp { sent, now });
        }
        let addrs: Vec<Addr> = addr_list
            .split(',')
            .filter(|a| !a.is_empty())
            .map(Addr::new)
            .collect();
        if addrs.is_empty() {
            return Err(JoinError::NoEndpoints);
        }
        self.members.lock().insert(name.to_string(), now);
        // add_source is a no-op (false) for an existing member refresh.
        let cfg = DataSourceCfg::new(name, addrs)
            .expect("join messages with no endpoints are rejected above");
        self.gmetad.add_source(cfg);
        Ok(())
    }

    /// Prune members whose joins have ceased. Returns the pruned names.
    pub fn prune(&self, now: u64) -> Vec<String> {
        let mut members = self.members.lock();
        let timeout = self.join_timeout;
        let expired: Vec<String> = members
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) > timeout)
            .map(|(name, _)| name.clone())
            .collect();
        for name in &expired {
            members.remove(name);
            self.gmetad.remove_source(name);
        }
        expired
    }

    /// Current members and their last join times.
    pub fn members(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .members
            .lock()
            .iter()
            .map(|(n, &t)| (n.clone(), t))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmetadConfig;

    const SECRET: &[u8] = b"deployment-secret";

    fn manager() -> (Arc<Gmetad>, JoinManager) {
        let gmetad = Gmetad::new(GmetadConfig::new("root"));
        let manager = JoinManager::new(Arc::clone(&gmetad), SECRET, 60);
        (gmetad, manager)
    }

    #[test]
    fn valid_join_registers_a_source() {
        let (gmetad, manager) = manager();
        let msg = join_message(
            "sdsc",
            &[Addr::new("sdsc-gmeta"), Addr::new("sdsc-gmeta-2")],
            100,
            SECRET,
        );
        manager.handle(&msg, 110).unwrap();
        assert_eq!(gmetad.source_names(), vec!["sdsc"]);
        assert_eq!(manager.members().len(), 1);
    }

    #[test]
    fn wrong_secret_is_rejected() {
        let (gmetad, manager) = manager();
        let msg = join_message("evil", &[Addr::new("evil")], 100, b"wrong-secret");
        assert_eq!(manager.handle(&msg, 100), Err(JoinError::BadCertificate));
        assert!(gmetad.source_names().is_empty());
    }

    #[test]
    fn tampered_message_is_rejected() {
        let (_gmetad, manager) = manager();
        let msg = join_message("sdsc", &[Addr::new("a")], 100, SECRET);
        let tampered = msg.replace("sdsc", "mars");
        assert_eq!(
            manager.handle(&tampered, 100),
            Err(JoinError::BadCertificate)
        );
    }

    #[test]
    fn stale_timestamp_is_rejected() {
        let (_gmetad, manager) = manager();
        let msg = join_message("sdsc", &[Addr::new("a")], 100, SECRET);
        assert_eq!(
            manager.handle(&msg, 1000),
            Err(JoinError::StaleTimestamp {
                sent: 100,
                now: 1000
            })
        );
    }

    #[test]
    fn malformed_messages_are_rejected() {
        let (_gmetad, manager) = manager();
        for msg in [
            "",
            "HELLO",
            "JOIN onlyname",
            "JOIN a b c d e",
            "JOIN name addr notanumber cert",
            "JOIN name addr 100 nothex",
        ] {
            assert!(manager.handle(msg, 100).is_err(), "{msg:?}");
        }
    }

    #[test]
    fn refresh_extends_membership_and_prune_expires_it() {
        let (gmetad, manager) = manager();
        let join = |t: u64| join_message("sdsc", &[Addr::new("a")], t, SECRET);
        manager.handle(&join(100), 100).unwrap();
        manager.handle(&join(150), 150).unwrap();
        assert!(
            manager.prune(200).is_empty(),
            "refreshed at 150, timeout 60"
        );
        let pruned = manager.prune(211);
        assert_eq!(pruned, vec!["sdsc"]);
        assert!(gmetad.source_names().is_empty());
        assert!(manager.members().is_empty());
    }

    #[test]
    fn empty_endpoint_list_is_rejected() {
        let (_gmetad, manager) = manager();
        // Build a message with an empty addr list but a valid cert.
        let payload = "x||100";
        let cert = to_hex(&hmac_sha256(SECRET, payload.as_bytes()));
        let msg = format!("JOIN x  100 {cert}");
        // split_whitespace collapses the empty field, so this parses as
        // 4 fields with addr_list="100"... construct explicitly instead:
        let msg2 = format!("JOIN x , 100 {cert}");
        assert!(manager.handle(&msg, 100).is_err());
        let payload2 = "x|,|100";
        let cert2 = to_hex(&hmac_sha256(SECRET, payload2.as_bytes()));
        let msg2b = format!("JOIN x , 100 {cert2}");
        let _ = msg2;
        assert_eq!(manager.handle(&msg2b, 100), Err(JoinError::NoEndpoints));
    }
}
