//! Gmetad configuration.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use ganglia_net::Addr;

use crate::health::{LifecyclePolicy, RetryPolicy};

/// Which monitoring-tree design the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMode {
    /// Monitor-core 2.5.1 behaviour (paper §2.1): report the union of
    /// the subtree, keep full archives for every descendant host.
    OneLevel,
    /// Monitor-core 2.5.4 behaviour (paper §2.2–2.3): summarize remote
    /// grids, archive only their summaries, serve path queries.
    NLevel,
}

/// Where metric archives live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveMode {
    /// No archiving (viewer-only deployments).
    Off,
    /// In-memory round-robin databases (the paper ran its archives on a
    /// RAM-backed tmpfs for the same effect, §4.1).
    InMemory,
    /// Persist archives under a directory tree.
    Directory(PathBuf),
}

/// One monitored data source: a cluster (gmond) or a remote grid
/// (another gmetad), with an ordered list of redundant addresses.
///
/// "All Gmon agents have redundant global knowledge of the cluster, so
/// that any node can supply a complete report... The wide-area Gmeta uses
/// this ability to automatically fail-over when a cluster node
/// malfunctions." (paper §1, fig 1)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSourceCfg {
    /// Name the source is filed under (usually the cluster/grid name).
    pub name: String,
    /// Redundant endpoints, tried in order.
    pub addrs: Vec<Addr>,
}

/// A data source definition that cannot be polled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidDataSource {
    /// The address list is empty: there is nothing to fail over *to*,
    /// and the poller's cursor would have no endpoint to point at.
    NoAddrs { name: String },
}

impl fmt::Display for InvalidDataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidDataSource::NoAddrs { name } => {
                write!(f, "data source {name:?} lists no addresses")
            }
        }
    }
}

impl std::error::Error for InvalidDataSource {}

impl DataSourceCfg {
    /// A validated data source from a name and address list. Rejects an
    /// empty address list up front rather than deferring the failure to
    /// the poller's first address lookup.
    pub fn new(name: impl Into<String>, addrs: Vec<Addr>) -> Result<Self, InvalidDataSource> {
        let name = name.into();
        if addrs.is_empty() {
            return Err(InvalidDataSource::NoAddrs { name });
        }
        Ok(DataSourceCfg { name, addrs })
    }
}

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct GmetadConfig {
    /// Name of the grid this gmetad is the authority for.
    pub grid_name: String,
    /// URL at which this gmetad can be queried — propagated upstream as
    /// the `AUTHORITY` pointer (paper §3.2).
    pub authority_url: String,
    /// Tree design under test.
    pub tree_mode: TreeMode,
    /// Seconds between polls of each data source ("generally every 15
    /// seconds", paper §3.3.1).
    pub poll_interval: u64,
    /// Per-exchange timeout for child polls.
    pub fetch_timeout: Duration,
    /// The monitored children.
    pub data_sources: Vec<DataSourceCfg>,
    /// Metric archive backing.
    pub archive: ArchiveMode,
    /// Per-endpoint backoff and circuit-breaker knobs.
    pub retry: RetryPolicy,
    /// Staleness-lifecycle thresholds (Stale → Down → Expired).
    pub lifecycle: LifecyclePolicy,
    /// Publish this daemon's own telemetry as a synthetic
    /// `<grid>-monitor` cluster after each poll round, so the monitor
    /// is monitored through its own data language (archived to RRD,
    /// summarized up the tree, path-queryable). Off by default: the
    /// extra cluster changes store/archive cardinalities.
    pub self_telemetry: bool,
    /// Worker threads fanning out one poll round across sources.
    /// `0` (the default) means automatic: `min(sources, 8)`. `1` forces
    /// the old sequential round.
    pub poll_concurrency: usize,
    /// Wall-clock budget for one whole poll round, in seconds. Each
    /// endpoint attempt's timeout is clamped to the remaining budget, so
    /// a hung source degrades to a breaker-counted timeout at the
    /// deadline instead of stalling the round. `0` (the default)
    /// disables the budget.
    pub round_deadline_secs: u64,
    /// Crash-safe archive persistence: append updates to a per-shard
    /// write-ahead journal (group-committed) and rewrite the fixed-size
    /// `.rrd` files only at checkpoints, instead of rewriting every
    /// file on every flush. Requires `ArchiveMode::Directory`; off by
    /// default (legacy rewrite-per-flush behaviour).
    pub archive_journal: bool,
    /// Group-commit cadence for the archive journal, in milliseconds:
    /// pending journal records are fsynced once at the end of any poll
    /// round at least this long after the previous commit. `0` commits
    /// every round. Ignored unless `archive_journal` is on.
    pub archive_flush_ms: u64,
    /// Seconds between archive checkpoints (atomic `.rrd` rewrites plus
    /// journal truncation). `0` checkpoints every round. Ignored unless
    /// `archive_journal` is on.
    pub archive_checkpoint_secs: u64,
    /// Whether the interactive port accepts `#subscribe <gql expr>`
    /// continuous queries (delta frames pushed after each poll round).
    pub subscriptions: bool,
    /// Concurrent subscriptions admitted before `#subscribe` is refused.
    pub max_subscriptions: usize,
    /// Unread delta frames a subscriber may accumulate before its
    /// subscription is evicted (each frame covers one poll round).
    pub sub_queue_depth: usize,
    /// Store shard count: concurrent poll workers writing different
    /// sources land on disjoint locks, and the root summary merges one
    /// incrementally-maintained summary per shard instead of every
    /// source. `0` (the default) aligns the count with the poll worker
    /// pool; see [`GmetadConfig::resolved_store_shards`].
    pub store_shards: usize,
    /// Anti-drift cadence for the incremental shard summaries: each
    /// shard re-merges itself from scratch after this many applied
    /// deltas, bounding float rounding drift. `0` disables rebuilds
    /// (pure incremental); `1` re-merges on every mutation (the old
    /// full-re-merge behaviour, kept as the bench reference path).
    pub summary_rebuild_rounds: u64,
}

impl GmetadConfig {
    /// A sensible N-level configuration with no sources yet.
    pub fn new(grid_name: impl Into<String>) -> Self {
        let grid_name = grid_name.into();
        GmetadConfig {
            authority_url: format!("http://{grid_name}/ganglia/"),
            grid_name,
            tree_mode: TreeMode::NLevel,
            poll_interval: 15,
            fetch_timeout: Duration::from_secs(10),
            data_sources: Vec::new(),
            archive: ArchiveMode::InMemory,
            retry: RetryPolicy::default(),
            lifecycle: LifecyclePolicy::default(),
            self_telemetry: false,
            poll_concurrency: 0,
            round_deadline_secs: 0,
            archive_journal: false,
            archive_flush_ms: 1000,
            archive_checkpoint_secs: 300,
            subscriptions: true,
            max_subscriptions: 64,
            sub_queue_depth: 8,
            store_shards: 0,
            summary_rebuild_rounds: crate::store::DEFAULT_REBUILD_ROUNDS,
        }
    }

    /// The worker count one round actually uses for `sources` pollers:
    /// the configured `poll_concurrency` (or `min(sources, 8)` when
    /// automatic), never more than one worker per source, never zero.
    pub fn effective_concurrency(&self, sources: usize) -> usize {
        let configured = if self.poll_concurrency == 0 {
            8
        } else {
            self.poll_concurrency
        };
        configured.min(sources).max(1)
    }

    /// The store shard count this configuration resolves to: the
    /// explicit `store_shards` (clamped to the store's supported
    /// range), or — when automatic — a count aligned with the poll
    /// worker pool, so a full-width round of concurrent replaces meets
    /// as little lock contention as the pool allows.
    pub fn resolved_store_shards(&self) -> usize {
        let aligned = if self.store_shards != 0 {
            self.store_shards
        } else if self.poll_concurrency == 0 {
            crate::store::DEFAULT_STORE_SHARDS
        } else {
            self.poll_concurrency
        };
        aligned.clamp(1, crate::store::MAX_STORE_SHARDS)
    }

    /// Builder-style: set the tree mode.
    pub fn with_mode(mut self, mode: TreeMode) -> Self {
        self.tree_mode = mode;
        self
    }

    /// Builder-style: add a data source.
    pub fn with_source(mut self, source: DataSourceCfg) -> Self {
        self.data_sources.push(source);
        self
    }

    /// Builder-style: set the archive mode.
    pub fn with_archive(mut self, archive: ArchiveMode) -> Self {
        self.archive = archive;
        self
    }

    /// Builder-style: set the backoff/breaker policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style: set the staleness-lifecycle thresholds.
    pub fn with_lifecycle(mut self, lifecycle: LifecyclePolicy) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// Builder-style: enable or disable self-telemetry publication.
    pub fn with_self_telemetry(mut self, enabled: bool) -> Self {
        self.self_telemetry = enabled;
        self
    }

    /// Builder-style: set the poll worker count (`0` = automatic).
    pub fn with_poll_concurrency(mut self, workers: usize) -> Self {
        self.poll_concurrency = workers;
        self
    }

    /// Builder-style: set the per-round wall-clock budget (`0` = off).
    pub fn with_round_deadline_secs(mut self, secs: u64) -> Self {
        self.round_deadline_secs = secs;
        self
    }

    /// Builder-style: enable or disable the archive write-ahead journal.
    pub fn with_archive_journal(mut self, enabled: bool) -> Self {
        self.archive_journal = enabled;
        self
    }

    /// Builder-style: set the journal group-commit cadence in
    /// milliseconds (`0` = commit every round).
    pub fn with_archive_flush_ms(mut self, ms: u64) -> Self {
        self.archive_flush_ms = ms;
        self
    }

    /// Builder-style: set the checkpoint cadence in seconds (`0` =
    /// checkpoint every round).
    pub fn with_archive_checkpoint_secs(mut self, secs: u64) -> Self {
        self.archive_checkpoint_secs = secs;
        self
    }

    /// Builder-style: enable or disable continuous-query subscriptions.
    pub fn with_subscriptions(mut self, enabled: bool) -> Self {
        self.subscriptions = enabled;
        self
    }

    /// Builder-style: set the subscription capacity (at least 1).
    pub fn with_max_subscriptions(mut self, max: usize) -> Self {
        self.max_subscriptions = max.max(1);
        self
    }

    /// Builder-style: set the per-subscriber frame queue depth (at
    /// least 1).
    pub fn with_sub_queue_depth(mut self, depth: usize) -> Self {
        self.sub_queue_depth = depth.max(1);
        self
    }

    /// Builder-style: set the store shard count (`0` = align with the
    /// poll worker pool).
    pub fn with_store_shards(mut self, shards: usize) -> Self {
        self.store_shards = shards;
        self
    }

    /// Builder-style: set the anti-drift rebuild cadence (`0` = never
    /// rebuild, `1` = re-merge every mutation).
    pub fn with_summary_rebuild_rounds(mut self, rounds: u64) -> Self {
        self.summary_rebuild_rounds = rounds;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_config() {
        let config = GmetadConfig::new("sdsc")
            .with_mode(TreeMode::OneLevel)
            .with_source(
                DataSourceCfg::new(
                    "meteor",
                    vec![Addr::new("meteor/n0"), Addr::new("meteor/n1")],
                )
                .unwrap(),
            )
            .with_archive(ArchiveMode::Off);
        assert_eq!(config.grid_name, "sdsc");
        assert_eq!(config.tree_mode, TreeMode::OneLevel);
        assert_eq!(config.data_sources.len(), 1);
        assert_eq!(config.data_sources[0].addrs.len(), 2);
        assert_eq!(config.archive, ArchiveMode::Off);
        assert_eq!(config.poll_interval, 15);
        assert!(config.authority_url.contains("sdsc"));
        assert_eq!(config.retry, RetryPolicy::default());
        assert_eq!(config.lifecycle, LifecyclePolicy::default());
    }

    #[test]
    fn effective_concurrency_clamps_to_sources_and_never_zero() {
        let auto = GmetadConfig::new("g");
        assert_eq!(auto.effective_concurrency(3), 3);
        assert_eq!(auto.effective_concurrency(20), 8, "auto caps at 8");
        assert_eq!(auto.effective_concurrency(0), 1, "never zero workers");
        let pinned = GmetadConfig::new("g").with_poll_concurrency(4);
        assert_eq!(pinned.effective_concurrency(2), 2);
        assert_eq!(pinned.effective_concurrency(100), 4);
        let sequential = GmetadConfig::new("g").with_poll_concurrency(1);
        assert_eq!(sequential.effective_concurrency(100), 1);
    }

    #[test]
    fn empty_address_list_is_rejected_at_construction() {
        let err = DataSourceCfg::new("ghost", vec![]).unwrap_err();
        assert_eq!(
            err,
            InvalidDataSource::NoAddrs {
                name: "ghost".into()
            }
        );
        assert!(err.to_string().contains("ghost"));
    }
}
