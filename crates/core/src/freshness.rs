//! Data-age accounting: how stale is the data by the time it gets here?
//!
//! The paper's wide-area claim lives or dies on end-to-end freshness —
//! a root gmetad serving a 3-level tree answers queries from data that
//! crossed every level on its own polling cadence. This module rides
//! the ingest path: each time a source's report is parsed, it walks the
//! typed document once and records, per tree depth,
//!
//! * **host data age** — poll wall-clock minus the host's `REPORTED`
//!   stamp (`freshness.age_s`, `freshness.depth<d>.age_s`,
//!   `freshness.source.<name>.age_s`), and
//! * **per-hop lag** — poll wall-clock minus the child grid/cluster's
//!   `LOCALTIME` (`freshness.hop_lag_s` and friends) — "how far behind
//!   its child's render clock is this monitor".
//!
//! Two explicit edge policies (the satellite fixes of this layer):
//!
//! * A missing `REPORTED`/`LOCALTIME` (they are `#IMPLIED` in the DTD)
//!   is *skipped* — counted in `freshness.missing_ts`, never recorded
//!   as an age. The old `parse_num(..., 0)` default would have read as
//!   epoch 1970, ~56 years of lag.
//! * A timestamp ahead of the local clock (child clock skew) clamps to
//!   age 0 and increments `freshness.skew_total` instead of
//!   underflowing `u64` subtraction.
//!
//! The histograms flow through the ordinary telemetry channel, so
//! `gstat --telemetry` on the root shows the whole tree's lag profile
//! and `publish_self` re-publishes the p99s as `self.*` metrics.

use ganglia_metrics::model::{ClusterNode, GangliaDoc, GridBody, GridItem, GridNode};
use ganglia_telemetry::Registry;

/// Depth labels are capped so a pathological or adversarial tree can't
/// mint unbounded histogram names; everything at or below this depth
/// shares the final bucket.
const MAX_DEPTH_LABEL: usize = 8;

/// Walk one ingested report and feed the `freshness.*` instruments.
/// `now` is the poll wall-clock (the logical clock under the sim);
/// depth 0 is the report's top-level item.
pub fn record_freshness(registry: &Registry, source: &str, doc: &GangliaDoc, now: u64) {
    let recorder = Recorder {
        registry,
        source,
        now,
    };
    for item in &doc.items {
        recorder.item(item, 0);
    }
}

struct Recorder<'a> {
    registry: &'a Registry,
    source: &'a str,
    now: u64,
}

impl Recorder<'_> {
    /// Age of a timestamp under the missing/skew policy: `None` when
    /// the attribute was absent (counted, skipped), clamped to 0 when
    /// the child's clock is ahead of ours (counted, clamped).
    fn age_of(&self, stamp: Option<u64>) -> Option<u64> {
        match stamp {
            None => {
                self.registry.counter("freshness.missing_ts").inc();
                None
            }
            Some(t) if t > self.now => {
                self.registry.counter("freshness.skew_total").inc();
                Some(0)
            }
            Some(t) => Some(self.now - t),
        }
    }

    fn depth_label(depth: usize) -> usize {
        depth.min(MAX_DEPTH_LABEL)
    }

    fn item(&self, item: &GridItem, depth: usize) {
        match item {
            GridItem::Cluster(c) => self.cluster(c, depth),
            GridItem::Grid(g) => self.grid(g, depth),
        }
    }

    fn grid(&self, grid: &GridNode, depth: usize) {
        self.record_hop(grid.localtime, depth);
        if let GridBody::Items(items) = &grid.body {
            for item in items {
                self.item(item, depth + 1);
            }
        }
    }

    fn cluster(&self, cluster: &ClusterNode, depth: usize) {
        self.record_hop(cluster.localtime, depth);
        if let ganglia_metrics::model::ClusterBody::Hosts(hosts) = &cluster.body {
            for host in hosts {
                if let Some(age) = self.age_of(host.reported) {
                    let d = Self::depth_label(depth);
                    self.registry.histogram("freshness.age_s").record(age);
                    self.registry
                        .histogram(&format!("freshness.depth{d}.age_s"))
                        .record(age);
                    self.registry
                        .histogram(&format!("freshness.source.{}.age_s", self.source))
                        .record(age);
                }
            }
        }
    }

    fn record_hop(&self, localtime: Option<u64>, depth: usize) {
        if let Some(lag) = self.age_of(localtime) {
            let d = Self::depth_label(depth);
            self.registry.histogram("freshness.hop_lag_s").record(lag);
            self.registry
                .histogram(&format!("freshness.depth{d}.hop_lag_s"))
                .record(lag);
            self.registry
                .histogram(&format!("freshness.source.{}.hop_lag_s", self.source))
                .record(lag);
        }
    }
}

/// Per-source p99 data age in seconds, for the `gmetad --once` AGE
/// column: host ages when the source delivers full detail, falling
/// back to the hop lag when it is summary-only (N-level remote grids
/// carry no `REPORTED` stamps to the parent).
pub fn source_age_p99(snapshot: &ganglia_telemetry::Snapshot, source: &str) -> Option<u64> {
    let of = |name: String| {
        snapshot
            .histogram(&name)
            .filter(|h| h.count > 0)
            .map(|h| h.quantile(0.99))
    };
    of(format!("freshness.source.{source}.age_s"))
        .or_else(|| of(format!("freshness.source.{source}.hop_lag_s")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganglia_metrics::model::{ClusterNode, GridNode, HostNode};

    fn host(name: &str, reported: Option<u64>) -> HostNode {
        let mut h = HostNode::new(name, "10.0.0.1");
        h.reported = reported;
        h
    }

    #[test]
    fn ages_land_in_global_depth_and_source_histograms() {
        let registry = Registry::new();
        let mut cluster =
            ClusterNode::with_hosts("meteor", vec![host("a", Some(70)), host("b", Some(90))]);
        cluster.localtime = Some(95);
        let doc = GangliaDoc::gmond(cluster);
        record_freshness(&registry, "meteor", &doc, 100);
        let snap = registry.snapshot();
        let ages = snap.histogram("freshness.age_s").unwrap();
        assert_eq!(ages.count, 2);
        assert_eq!(ages.min, 10);
        assert_eq!(ages.max, 30);
        assert_eq!(snap.histogram("freshness.depth0.age_s").unwrap().count, 2);
        assert_eq!(
            snap.histogram("freshness.source.meteor.age_s")
                .unwrap()
                .count,
            2
        );
        let hop = snap.histogram("freshness.hop_lag_s").unwrap();
        assert_eq!(hop.count, 1);
        assert_eq!(hop.max, 5);
        assert_eq!(snap.counter("freshness.missing_ts"), None);
        assert_eq!(snap.counter("freshness.skew_total"), None);
    }

    #[test]
    fn nested_grids_record_per_depth() {
        let registry = Registry::new();
        let mut inner_cluster = ClusterNode::with_hosts("c", vec![host("h", Some(80))]);
        inner_cluster.localtime = Some(85);
        let mut inner = GridNode::with_items("inner", vec![GridItem::Cluster(inner_cluster)]);
        inner.localtime = Some(90);
        let mut outer = GridNode::with_items("outer", vec![GridItem::Grid(inner)]);
        outer.localtime = Some(95);
        let doc = GangliaDoc {
            version: "2.5.4".into(),
            source: "gmetad".into(),
            items: vec![GridItem::Grid(outer)],
        };
        record_freshness(&registry, "outer", &doc, 100);
        let snap = registry.snapshot();
        // Hop lags: outer grid at depth 0 (5s), inner grid depth 1
        // (10s), cluster depth 2 (15s); host age 20s at depth 2.
        assert_eq!(snap.histogram("freshness.depth0.hop_lag_s").unwrap().max, 5);
        assert_eq!(
            snap.histogram("freshness.depth1.hop_lag_s").unwrap().max,
            10
        );
        assert_eq!(
            snap.histogram("freshness.depth2.hop_lag_s").unwrap().max,
            15
        );
        assert_eq!(snap.histogram("freshness.depth2.age_s").unwrap().max, 20);
        assert_eq!(snap.histogram("freshness.hop_lag_s").unwrap().count, 3);
    }

    #[test]
    fn missing_timestamps_are_counted_not_aged() {
        let registry = Registry::new();
        // No LOCALTIME on the cluster, no REPORTED on either host.
        let cluster = ClusterNode::with_hosts("c", vec![host("a", None), host("b", None)]);
        let doc = GangliaDoc::gmond(cluster);
        record_freshness(&registry, "c", &doc, 100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("freshness.missing_ts"), Some(3));
        assert!(snap.histogram("freshness.age_s").is_none());
        assert!(snap.histogram("freshness.hop_lag_s").is_none());
    }

    #[test]
    fn clock_skew_clamps_to_zero_and_counts() {
        let registry = Registry::new();
        // Child clock 50s ahead of the poller's.
        let mut cluster = ClusterNode::with_hosts("c", vec![host("a", Some(150))]);
        cluster.localtime = Some(150);
        let doc = GangliaDoc::gmond(cluster);
        record_freshness(&registry, "c", &doc, 100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("freshness.skew_total"), Some(2));
        let ages = snap.histogram("freshness.age_s").unwrap();
        assert_eq!(ages.count, 1);
        assert_eq!(ages.max, 0, "skewed age clamps to 0, never underflows");
    }

    #[test]
    fn depth_labels_are_capped() {
        let registry = Registry::new();
        // A 12-deep grid chain; depths 8.. share the depth8 label.
        let mut item = GridItem::Cluster({
            let mut c = ClusterNode::with_hosts("leaf", vec![]);
            c.localtime = Some(99);
            c
        });
        for level in 0..12 {
            let mut grid = GridNode::with_items(format!("g{level}"), vec![item]);
            grid.localtime = Some(99);
            item = GridItem::Grid(grid);
        }
        let doc = GangliaDoc {
            version: "2.5.4".into(),
            source: "gmetad".into(),
            items: vec![item],
        };
        record_freshness(&registry, "deep", &doc, 100);
        let snap = registry.snapshot();
        assert_eq!(
            snap.histogram("freshness.depth8.hop_lag_s").unwrap().count,
            5
        );
        assert!(snap.histogram("freshness.depth9.hop_lag_s").is_none());
    }

    #[test]
    fn source_age_p99_prefers_host_ages_then_hop_lag() {
        let registry = Registry::new();
        let mut detail = ClusterNode::with_hosts("detail", vec![host("a", Some(40))]);
        detail.localtime = Some(90);
        record_freshness(&registry, "detail", &GangliaDoc::gmond(detail), 100);
        // Summary-only grid source: hop lag is all the parent can see.
        let grid = GridNode {
            name: "remote".into(),
            authority: "http://remote/".into(),
            localtime: Some(70),
            body: GridBody::Summary(Default::default()),
        };
        let doc = GangliaDoc {
            version: "2.5.4".into(),
            source: "gmetad".into(),
            items: vec![GridItem::Grid(grid)],
        };
        record_freshness(&registry, "remote", &doc, 100);
        let snap = registry.snapshot();
        assert_eq!(source_age_p99(&snap, "detail"), Some(60));
        assert_eq!(source_age_p99(&snap, "remote"), Some(30));
        assert_eq!(source_age_p99(&snap, "absent"), None);
    }
}
