//! `gmetad.conf` parsing.
//!
//! The on-disk configuration format follows gmetad 2.5's, one directive
//! per line:
//!
//! ```text
//! # The grid this daemon is the authority for.
//! gridname "SDSC"
//! authority "http://sdsc/ganglia/"
//!
//! # data_source "<name>" [poll_interval] <host> [<host> ...]
//! data_source "meteor" 15 meteor-n0:8649 meteor-n1:8649
//! data_source "attic"  attic-gmeta:8651
//!
//! interactive_port 8652
//! rrd_rootdir "/var/lib/ganglia/rrds"
//!
//! # Extension: run the legacy design for comparisons.
//! tree_mode "n-level"    # or "1-level"
//! ```
//!
//! Unknown directives are errors (typos in monitoring configs should
//! not be silent). `#` starts a comment anywhere outside quotes.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use ganglia_net::Addr;
use ganglia_serve::ServeOptions;

use crate::config::{ArchiveMode, DataSourceCfg, GmetadConfig, TreeMode};

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for ConfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gmetad.conf line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ConfError {}

/// Result of parsing: the daemon config plus serving options that live
/// outside [`GmetadConfig`].
#[derive(Debug, Clone)]
pub struct ParsedConf {
    pub config: GmetadConfig,
    /// TCP port for the full XML dump (`xml_port`, default 8651).
    pub xml_port: u16,
    /// TCP port for the query engine (`interactive_port`, default 8652).
    pub interactive_port: u16,
    /// Address to bind (default `0.0.0.0`).
    pub bind: String,
    /// Front-tier serving options (`server_threads`,
    /// `server_max_inflight`, `server_cache`), applied to both ports.
    pub serve: ServeOptions,
}

/// Parse a complete `gmetad.conf` document.
pub fn parse_conf(input: &str) -> Result<ParsedConf, ConfError> {
    let mut config = GmetadConfig::new("unspecified");
    let mut xml_port = 8651u16;
    let mut interactive_port = 8652u16;
    let mut bind = "0.0.0.0".to_string();
    let mut serve = ServeOptions::default();
    let mut saw_gridname = false;

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let err = |reason: String| ConfError {
            line: line_no,
            reason,
        };
        let tokens = tokenize(raw_line).map_err(&err)?;
        let Some((directive, args)) = tokens.split_first() else {
            continue; // blank or comment-only line
        };
        match directive.as_str() {
            "gridname" => {
                let [name] = args else {
                    return Err(err("gridname takes exactly one value".into()));
                };
                config.grid_name = name.clone();
                saw_gridname = true;
            }
            "authority" => {
                let [url] = args else {
                    return Err(err("authority takes exactly one value".into()));
                };
                config.authority_url = url.clone();
            }
            "data_source" => {
                let Some((name, rest)) = args.split_first() else {
                    return Err(err("data_source needs a name".into()));
                };
                // Optional leading poll interval (a bare integer), like
                // gmetad's per-source polling interval.
                let (interval, hosts) = match rest.split_first() {
                    Some((first, more)) if first.chars().all(|c| c.is_ascii_digit()) => {
                        let interval: u64 = first
                            .parse()
                            .map_err(|_| err(format!("bad interval {first:?}")))?;
                        (Some(interval), more)
                    }
                    _ => (None, rest),
                };
                if let Some(interval) = interval {
                    if interval == 0 {
                        return Err(err("poll interval must be positive".into()));
                    }
                    // gmetad has one global poll loop; honour the
                    // smallest requested interval.
                    config.poll_interval = config.poll_interval.min(interval);
                }
                if config.data_sources.iter().any(|s| &s.name == name) {
                    return Err(err(format!("duplicate data_source {name:?}")));
                }
                // The validated constructor rejects an empty host list.
                let source = DataSourceCfg::new(name, hosts.iter().map(Addr::new).collect())
                    .map_err(|e| err(e.to_string()))?;
                config.data_sources.push(source);
            }
            "interactive_port" => {
                let [port] = args else {
                    return Err(err("interactive_port takes one value".into()));
                };
                interactive_port = port
                    .parse()
                    .map_err(|_| err(format!("bad port {port:?}")))?;
            }
            "xml_port" => {
                let [port] = args else {
                    return Err(err("xml_port takes one value".into()));
                };
                xml_port = port
                    .parse()
                    .map_err(|_| err(format!("bad port {port:?}")))?;
            }
            "server_threads" => {
                let value = parse_u64_arg(directive, args, &err)?;
                if value == 0 {
                    return Err(err("server_threads must be positive".into()));
                }
                serve.workers = usize::try_from(value)
                    .map_err(|_| err(format!("server_threads {value} is too large")))?;
            }
            "server_max_inflight" => {
                let value = parse_u64_arg(directive, args, &err)?;
                if value == 0 {
                    return Err(err("server_max_inflight must be positive".into()));
                }
                let max = usize::try_from(value)
                    .map_err(|_| err(format!("server_max_inflight {value} is too large")))?;
                serve = serve.with_max_inflight(max);
            }
            "server_cache" => {
                let [value] = args else {
                    return Err(err("server_cache takes one value (on/off)".into()));
                };
                serve.cache = match value.as_str() {
                    "on" | "yes" | "true" | "1" => true,
                    "off" | "no" | "false" | "0" => false,
                    other => {
                        return Err(err(format!(
                            "bad server_cache value {other:?} (use \"on\" or \"off\")"
                        )))
                    }
                };
            }
            "bind" => {
                let [addr] = args else {
                    return Err(err("bind takes one value".into()));
                };
                bind = addr.clone();
            }
            "rrd_rootdir" => {
                let [dir] = args else {
                    return Err(err("rrd_rootdir takes one value".into()));
                };
                config.archive = ArchiveMode::Directory(PathBuf::from(dir));
            }
            "no_archives" => {
                if !args.is_empty() {
                    return Err(err("no_archives takes no values".into()));
                }
                config.archive = ArchiveMode::Off;
            }
            "tree_mode" => {
                let [mode] = args else {
                    return Err(err("tree_mode takes one value".into()));
                };
                config.tree_mode = match mode.as_str() {
                    "n-level" | "nlevel" => TreeMode::NLevel,
                    "1-level" | "one-level" | "onelevel" => TreeMode::OneLevel,
                    other => {
                        return Err(err(format!(
                            "unknown tree_mode {other:?} (use \"n-level\" or \"1-level\")"
                        )))
                    }
                };
            }
            "fetch_timeout_secs" => {
                let [secs] = args else {
                    return Err(err("fetch_timeout_secs takes one value".into()));
                };
                let secs: u64 = secs
                    .parse()
                    .map_err(|_| err(format!("bad timeout {secs:?}")))?;
                config.fetch_timeout = Duration::from_secs(secs);
            }
            "retry_backoff_base_secs" => {
                config.retry.backoff_base_secs = parse_u64_arg(directive, args, &err)?;
            }
            "retry_backoff_max_secs" => {
                config.retry.backoff_max_secs = parse_u64_arg(directive, args, &err)?;
            }
            "breaker_threshold" => {
                let value = parse_u64_arg(directive, args, &err)?;
                config.retry.breaker_threshold = u32::try_from(value)
                    .map_err(|_| err(format!("breaker_threshold {value} is too large")))?;
            }
            "source_down_secs" => {
                config.lifecycle.down_after_secs = parse_u64_arg(directive, args, &err)?;
            }
            "source_expire_secs" => {
                config.lifecycle.expire_after_secs = parse_u64_arg(directive, args, &err)?;
            }
            "poll_concurrency" => {
                let value = parse_u64_arg(directive, args, &err)?;
                config.poll_concurrency = usize::try_from(value)
                    .map_err(|_| err(format!("poll_concurrency {value} is too large")))?;
            }
            "round_deadline_secs" => {
                config.round_deadline_secs = parse_u64_arg(directive, args, &err)?;
            }
            "store_shards" => {
                let value = parse_u64_arg(directive, args, &err)?;
                config.store_shards = usize::try_from(value)
                    .map_err(|_| err(format!("store_shards {value} is too large")))?;
            }
            "summary_rebuild_rounds" => {
                config.summary_rebuild_rounds = parse_u64_arg(directive, args, &err)?;
            }
            "self_telemetry" => {
                let [value] = args else {
                    return Err(err("self_telemetry takes one value (on/off)".into()));
                };
                config.self_telemetry = match value.as_str() {
                    "on" | "yes" | "true" | "1" => true,
                    "off" | "no" | "false" | "0" => false,
                    other => {
                        return Err(err(format!(
                            "bad self_telemetry value {other:?} (use \"on\" or \"off\")"
                        )))
                    }
                };
            }
            "archive_journal" => {
                let [value] = args else {
                    return Err(err("archive_journal takes one value (on/off)".into()));
                };
                config.archive_journal = match value.as_str() {
                    "on" | "yes" | "true" | "1" => true,
                    "off" | "no" | "false" | "0" => false,
                    other => {
                        return Err(err(format!(
                            "bad archive_journal value {other:?} (use \"on\" or \"off\")"
                        )))
                    }
                };
            }
            "archive_flush_ms" => {
                config.archive_flush_ms = parse_u64_arg(directive, args, &err)?;
            }
            "archive_checkpoint_secs" => {
                config.archive_checkpoint_secs = parse_u64_arg(directive, args, &err)?;
            }
            "subscriptions" => {
                let [value] = args else {
                    return Err(err("subscriptions takes one value (on/off)".into()));
                };
                config.subscriptions = match value.as_str() {
                    "on" | "yes" | "true" | "1" => true,
                    "off" | "no" | "false" | "0" => false,
                    other => {
                        return Err(err(format!(
                            "bad subscriptions value {other:?} (use \"on\" or \"off\")"
                        )))
                    }
                };
            }
            "max_subscriptions" => {
                let value = parse_u64_arg(directive, args, &err)?;
                if value == 0 {
                    return Err(err("max_subscriptions must be positive".into()));
                }
                config.max_subscriptions = usize::try_from(value)
                    .map_err(|_| err(format!("max_subscriptions {value} is too large")))?;
            }
            "sub_queue_depth" => {
                let value = parse_u64_arg(directive, args, &err)?;
                if value == 0 {
                    return Err(err("sub_queue_depth must be positive".into()));
                }
                config.sub_queue_depth = usize::try_from(value)
                    .map_err(|_| err(format!("sub_queue_depth {value} is too large")))?;
            }
            other => {
                return Err(err(format!("unknown directive {other:?}")));
            }
        }
    }
    if !saw_gridname {
        return Err(ConfError {
            line: 0,
            reason: "missing required directive: gridname".into(),
        });
    }
    // Cross-field validation (the individual directives may arrive in
    // any order, so these checks run over the assembled config).
    config
        .retry
        .validate()
        .map_err(|reason| ConfError { line: 0, reason })?;
    config
        .lifecycle
        .validate()
        .map_err(|reason| ConfError { line: 0, reason })?;
    if config.authority_url.contains("unspecified") {
        config.authority_url = format!("http://{}/ganglia/", config.grid_name);
    }
    // The two TCP services must not collide; the directives may arrive
    // in either order, so this is a cross-field check.
    if xml_port == interactive_port {
        return Err(ConfError {
            line: 0,
            reason: format!("xml_port and interactive_port are both {xml_port}; they must differ"),
        });
    }
    Ok(ParsedConf {
        config,
        xml_port,
        interactive_port,
        bind,
        serve,
    })
}

/// Parse a directive's single unsigned-integer argument.
fn parse_u64_arg(
    directive: &str,
    args: &[String],
    err: &impl Fn(String) -> ConfError,
) -> Result<u64, ConfError> {
    let [value] = args else {
        return Err(err(format!("{directive} takes one value")));
    };
    value
        .parse()
        .map_err(|_| err(format!("bad {directive} value {value:?}")))
}

/// Split one line into tokens: whitespace-separated words and
/// double-quoted strings; `#` begins a comment.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None | Some('#') => break,
            Some('"') => {
                chars.next();
                let mut token = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated quoted string".into()),
                        Some('"') => break,
                        Some(c) => token.push(c),
                    }
                }
                tokens.push(token);
            }
            Some(_) => {
                let mut token = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '#' {
                        break;
                    }
                    token.push(c);
                    chars.next();
                }
                tokens.push(token);
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Example gmetad configuration.
gridname "SDSC"
authority "http://sdsc/ganglia/"

data_source "meteor" 15 meteor-n0:8649 meteor-n1:8649  # redundant gmonds
data_source "attic" attic-gmeta:8651

interactive_port 8652
rrd_rootdir "/var/lib/ganglia/rrds"
tree_mode "n-level"
fetch_timeout_secs 5
"#;

    #[test]
    fn parses_the_sample() {
        let parsed = parse_conf(SAMPLE).unwrap();
        let config = &parsed.config;
        assert_eq!(config.grid_name, "SDSC");
        assert_eq!(config.authority_url, "http://sdsc/ganglia/");
        assert_eq!(config.data_sources.len(), 2);
        assert_eq!(config.data_sources[0].name, "meteor");
        assert_eq!(config.data_sources[0].addrs.len(), 2);
        assert_eq!(
            config.data_sources[1].addrs[0],
            Addr::new("attic-gmeta:8651")
        );
        assert_eq!(config.poll_interval, 15);
        assert_eq!(config.tree_mode, TreeMode::NLevel);
        assert_eq!(config.fetch_timeout, Duration::from_secs(5));
        assert_eq!(
            config.archive,
            ArchiveMode::Directory(PathBuf::from("/var/lib/ganglia/rrds"))
        );
        assert_eq!(parsed.interactive_port, 8652);
        assert_eq!(parsed.bind, "0.0.0.0");
    }

    #[test]
    fn defaults_when_optional_directives_missing() {
        let parsed = parse_conf("gridname \"X\"\ndata_source \"c\" h:1\n").unwrap();
        assert_eq!(parsed.interactive_port, 8652);
        assert_eq!(parsed.config.tree_mode, TreeMode::NLevel);
        assert_eq!(parsed.config.authority_url, "http://X/ganglia/");
    }

    #[test]
    fn gridname_is_required() {
        let err = parse_conf("data_source \"c\" h:1\n").unwrap_err();
        assert!(err.reason.contains("gridname"));
    }

    #[test]
    fn one_level_mode() {
        let parsed = parse_conf("gridname \"X\"\ntree_mode \"1-level\"\n").unwrap();
        assert_eq!(parsed.config.tree_mode, TreeMode::OneLevel);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_conf("gridname \"X\"\nfrobnicate 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("frobnicate"));
        let err = parse_conf("gridname \"X\"\ndata_source \"c\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_conf("gridname\n").is_err());
        assert!(parse_conf("gridname \"X\"\ninteractive_port zap\n").is_err());
        assert!(parse_conf("gridname \"X\"\ndata_source \"c\" 0 h:1\n").is_err());
        assert!(parse_conf("gridname \"X\"\ntree_mode \"2-level\"\n").is_err());
        assert!(
            parse_conf("gridname \"X\"\ndata_source \"c\" h:1\ndata_source \"c\" h:2\n").is_err()
        );
        assert!(parse_conf("gridname \"unterminated\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let parsed =
            parse_conf("# leading comment\n\n   \ngridname \"X\" # trailing comment\n").unwrap();
        assert_eq!(parsed.config.grid_name, "X");
    }

    #[test]
    fn no_archives_directive() {
        let parsed = parse_conf("gridname \"X\"\nno_archives\n").unwrap();
        assert_eq!(parsed.config.archive, ArchiveMode::Off);
    }

    #[test]
    fn self_telemetry_directive() {
        assert!(
            !parse_conf("gridname \"X\"\n")
                .unwrap()
                .config
                .self_telemetry
        );
        for on in ["on", "yes", "true", "1"] {
            let parsed = parse_conf(&format!("gridname \"X\"\nself_telemetry {on}\n")).unwrap();
            assert!(parsed.config.self_telemetry, "{on}");
        }
        for off in ["off", "no", "false", "0"] {
            let parsed = parse_conf(&format!("gridname \"X\"\nself_telemetry {off}\n")).unwrap();
            assert!(!parsed.config.self_telemetry, "{off}");
        }
        assert!(parse_conf("gridname \"X\"\nself_telemetry maybe\n").is_err());
        assert!(parse_conf("gridname \"X\"\nself_telemetry\n").is_err());
    }

    #[test]
    fn retry_and_lifecycle_knobs_parse() {
        let parsed = parse_conf(
            "gridname \"X\"\n\
             retry_backoff_base_secs 5\n\
             retry_backoff_max_secs 120\n\
             breaker_threshold 4\n\
             source_down_secs 45\n\
             source_expire_secs 900\n",
        )
        .unwrap();
        assert_eq!(parsed.config.retry.backoff_base_secs, 5);
        assert_eq!(parsed.config.retry.backoff_max_secs, 120);
        assert_eq!(parsed.config.retry.breaker_threshold, 4);
        assert_eq!(parsed.config.lifecycle.down_after_secs, 45);
        assert_eq!(parsed.config.lifecycle.expire_after_secs, 900);
    }

    #[test]
    fn concurrency_knobs_parse_and_default_to_auto() {
        let defaults = parse_conf("gridname \"X\"\n").unwrap().config;
        assert_eq!(defaults.poll_concurrency, 0, "0 = automatic");
        assert_eq!(defaults.round_deadline_secs, 0, "0 = no deadline");
        let parsed = parse_conf(
            "gridname \"X\"\n\
             poll_concurrency 4\n\
             round_deadline_secs 12\n",
        )
        .unwrap();
        assert_eq!(parsed.config.poll_concurrency, 4);
        assert_eq!(parsed.config.round_deadline_secs, 12);
        assert!(parse_conf("gridname \"X\"\npoll_concurrency zap\n").is_err());
        assert!(parse_conf("gridname \"X\"\npoll_concurrency\n").is_err());
        assert!(parse_conf("gridname \"X\"\nround_deadline_secs -3\n").is_err());
    }

    #[test]
    fn store_sharding_knobs_parse_and_default_to_auto() {
        let defaults = parse_conf("gridname \"X\"\n").unwrap().config;
        assert_eq!(defaults.store_shards, 0, "0 = align with poll workers");
        assert_eq!(
            defaults.summary_rebuild_rounds,
            crate::store::DEFAULT_REBUILD_ROUNDS
        );
        let parsed = parse_conf(
            "gridname \"X\"\n\
             store_shards 32\n\
             summary_rebuild_rounds 16\n",
        )
        .unwrap();
        assert_eq!(parsed.config.store_shards, 32);
        assert_eq!(parsed.config.summary_rebuild_rounds, 16);
        // The resolved count follows poll concurrency when automatic.
        let auto = parse_conf("gridname \"X\"\npoll_concurrency 12\n")
            .unwrap()
            .config;
        assert_eq!(auto.resolved_store_shards(), 12);
        assert!(parse_conf("gridname \"X\"\nstore_shards many\n").is_err());
        assert!(parse_conf("gridname \"X\"\nsummary_rebuild_rounds -1\n").is_err());
    }

    #[test]
    fn archive_journal_knobs_parse_and_default_off() {
        let defaults = parse_conf("gridname \"X\"\n").unwrap().config;
        assert!(!defaults.archive_journal, "journal is opt-in");
        assert_eq!(defaults.archive_flush_ms, 1000);
        assert_eq!(defaults.archive_checkpoint_secs, 300);
        let parsed = parse_conf(
            "gridname \"X\"\n\
             archive_journal on\n\
             archive_flush_ms 0\n\
             archive_checkpoint_secs 60\n",
        )
        .unwrap();
        assert!(parsed.config.archive_journal);
        assert_eq!(parsed.config.archive_flush_ms, 0);
        assert_eq!(parsed.config.archive_checkpoint_secs, 60);
        let off = parse_conf("gridname \"X\"\narchive_journal no\n").unwrap();
        assert!(!off.config.archive_journal);
        assert!(parse_conf("gridname \"X\"\narchive_journal maybe\n").is_err());
        assert!(parse_conf("gridname \"X\"\narchive_journal\n").is_err());
        assert!(parse_conf("gridname \"X\"\narchive_flush_ms fast\n").is_err());
        assert!(parse_conf("gridname \"X\"\narchive_checkpoint_secs -1\n").is_err());
    }

    #[test]
    fn subscription_knobs_parse_and_default_on() {
        let defaults = parse_conf("gridname \"X\"\n").unwrap().config;
        assert!(defaults.subscriptions, "subscriptions default on");
        assert_eq!(defaults.max_subscriptions, 64);
        assert_eq!(defaults.sub_queue_depth, 8);
        let parsed = parse_conf(
            "gridname \"X\"\n\
             subscriptions off\n\
             max_subscriptions 16\n\
             sub_queue_depth 2\n",
        )
        .unwrap();
        assert!(!parsed.config.subscriptions);
        assert_eq!(parsed.config.max_subscriptions, 16);
        assert_eq!(parsed.config.sub_queue_depth, 2);
        let on = parse_conf("gridname \"X\"\nsubscriptions yes\n").unwrap();
        assert!(on.config.subscriptions);
        assert!(parse_conf("gridname \"X\"\nsubscriptions maybe\n").is_err());
        assert!(parse_conf("gridname \"X\"\nsubscriptions\n").is_err());
        assert!(parse_conf("gridname \"X\"\nmax_subscriptions 0\n").is_err());
        assert!(parse_conf("gridname \"X\"\nmax_subscriptions lots\n").is_err());
        assert!(parse_conf("gridname \"X\"\nsub_queue_depth 0\n").is_err());
    }

    #[test]
    fn retry_and_lifecycle_knobs_are_validated() {
        // Base above max is rejected even though each line parses.
        let err =
            parse_conf("gridname \"X\"\nretry_backoff_base_secs 300\nretry_backoff_max_secs 60\n")
                .unwrap_err();
        assert!(err.reason.contains("retry_backoff_max_secs"));
        assert!(parse_conf("gridname \"X\"\nbreaker_threshold 0\n").is_err());
        assert!(parse_conf("gridname \"X\"\nretry_backoff_base_secs 0\n").is_err());
        assert!(parse_conf("gridname \"X\"\nbreaker_threshold zap\n").is_err());
        // Expiry must come after the down threshold.
        assert!(
            parse_conf("gridname \"X\"\nsource_down_secs 600\nsource_expire_secs 600\n").is_err()
        );
        assert!(parse_conf("gridname \"X\"\nsource_down_secs 0\n").is_err());
    }

    #[test]
    fn xml_port_parses_and_defaults() {
        let parsed = parse_conf("gridname \"X\"\n").unwrap();
        assert_eq!(parsed.xml_port, 8651);
        assert_eq!(parsed.interactive_port, 8652);
        let parsed = parse_conf("gridname \"X\"\nxml_port 9651\n").unwrap();
        assert_eq!(parsed.xml_port, 9651);
        assert!(parse_conf("gridname \"X\"\nxml_port zap\n").is_err());
        assert!(parse_conf("gridname \"X\"\nxml_port 70000\n").is_err());
        assert!(parse_conf("gridname \"X\"\nxml_port\n").is_err());
        assert!(parse_conf("gridname \"X\"\nxml_port 1 2\n").is_err());
    }

    #[test]
    fn colliding_ports_are_rejected_in_either_order() {
        let err = parse_conf("gridname \"X\"\nxml_port 8652\n").unwrap_err();
        assert!(err.reason.contains("must differ"), "{}", err.reason);
        let err = parse_conf("gridname \"X\"\ninteractive_port 8651\n").unwrap_err();
        assert!(err.reason.contains("must differ"), "{}", err.reason);
        let err = parse_conf("gridname \"X\"\ninteractive_port 9000\nxml_port 9000\n").unwrap_err();
        assert!(err.reason.contains("9000"), "{}", err.reason);
        // Swapping the defaults is legal as long as they stay distinct.
        let parsed = parse_conf("gridname \"X\"\nxml_port 8652\ninteractive_port 8651\n").unwrap();
        assert_eq!(parsed.xml_port, 8652);
        assert_eq!(parsed.interactive_port, 8651);
    }

    #[test]
    fn server_knobs_parse_into_serve_options() {
        let parsed = parse_conf("gridname \"X\"\n").unwrap();
        assert_eq!(parsed.serve, ServeOptions::default());
        let parsed = parse_conf(
            "gridname \"X\"\n\
             server_threads 8\n\
             server_max_inflight 256\n\
             server_cache off\n",
        )
        .unwrap();
        assert_eq!(parsed.serve.workers, 8);
        assert_eq!(parsed.serve.max_inflight, 256);
        assert!(!parsed.serve.cache);
        assert!(parse_conf("gridname \"X\"\nserver_threads 0\n").is_err());
        assert!(parse_conf("gridname \"X\"\nserver_max_inflight 0\n").is_err());
        assert!(parse_conf("gridname \"X\"\nserver_cache maybe\n").is_err());
        assert!(parse_conf("gridname \"X\"\nserver_cache\n").is_err());
    }

    #[test]
    fn tokenizer_handles_mixed_quoting() {
        assert_eq!(
            tokenize(r#"data_source "my cluster" h1:8649 # c"#).unwrap(),
            vec!["data_source", "my cluster", "h1:8649"]
        );
        assert!(tokenize(r#"x "open"#).is_err());
        assert_eq!(tokenize("   # only comment").unwrap(), Vec::<String>::new());
    }
}
