//! Per-category CPU accounting, backed by the telemetry registry.
//!
//! The paper's experiments measure "the percentage of wall-clock CPU time
//! used by the gmeta daemons over a one-hour period" (§4.2). Our
//! deployments run in-process, so instead of `ps` we wrap every unit of
//! monitor work in a timed section attributed to one [`WorkCategory`].
//! CPU% is then `busy_time / window` for a virtual measurement window.
//!
//! Since the telemetry subsystem landed, the meter is a thin façade over
//! a [`Registry`]: each category keeps a saturating `cpu.<label>_ns`
//! counter (total busy time — the Fig. 5/6 input) and a `<label>_us`
//! latency histogram (per-operation distribution — the quantile input),
//! so there is exactly one source of truth and anything else recorded
//! into the same registry shows up alongside the CPU numbers in
//! snapshots. Accumulation saturates at `u64::MAX` instead of wrapping:
//! at nanosecond resolution a wrap takes ~584 years of busy time, but a
//! stuck clock or fault-injected huge duration must clamp, not corrupt
//! every later reading.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ganglia_telemetry::{Counter, HistogramHandle, Registry};

/// What kind of work a gmetad spent time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkCategory {
    /// Downloading XML from a child (the child's serving cost is
    /// attributed to the child's own meter, not here).
    Fetch,
    /// SAX-parsing child XML into the store.
    Parse,
    /// Computing additive-reduction summaries.
    Summarize,
    /// Updating metric archives (RRDs).
    Archive,
    /// Serving queries (rendering XML for parents and viewers).
    QueryServe,
}

impl WorkCategory {
    /// All categories, in display order.
    pub const ALL: [WorkCategory; 5] = [
        WorkCategory::Fetch,
        WorkCategory::Parse,
        WorkCategory::Summarize,
        WorkCategory::Archive,
        WorkCategory::QueryServe,
    ];

    fn index(self) -> usize {
        match self {
            WorkCategory::Fetch => 0,
            WorkCategory::Parse => 1,
            WorkCategory::Summarize => 2,
            WorkCategory::Archive => 3,
            WorkCategory::QueryServe => 4,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkCategory::Fetch => "fetch",
            WorkCategory::Parse => "parse",
            WorkCategory::Summarize => "summarize",
            WorkCategory::Archive => "archive",
            WorkCategory::QueryServe => "query",
        }
    }

    /// Registry counter holding this category's total busy nanoseconds.
    pub fn counter_name(self) -> &'static str {
        match self {
            WorkCategory::Fetch => "cpu.fetch_ns",
            WorkCategory::Parse => "cpu.parse_ns",
            WorkCategory::Summarize => "cpu.summarize_ns",
            WorkCategory::Archive => "cpu.archive_ns",
            WorkCategory::QueryServe => "cpu.query_ns",
        }
    }

    /// Registry histogram holding this category's per-operation
    /// latencies in microseconds.
    pub fn histogram_name(self) -> &'static str {
        match self {
            WorkCategory::Fetch => "fetch_us",
            WorkCategory::Parse => "parse_us",
            WorkCategory::Summarize => "summarize_us",
            WorkCategory::Archive => "archive_us",
            WorkCategory::QueryServe => "query_us",
        }
    }
}

/// Accumulated busy time, by category. Cheap to share and record into
/// from any thread. Handles are pre-interned so the hot path never
/// touches the registry lock.
#[derive(Debug)]
pub struct WorkMeter {
    registry: Arc<Registry>,
    nanos: [Counter; 5],
    latencies: [HistogramHandle; 5],
}

impl Default for WorkMeter {
    fn default() -> Self {
        WorkMeter::with_registry(Arc::new(Registry::new()))
    }
}

impl WorkMeter {
    /// A zeroed meter with its own private registry.
    pub fn new() -> Self {
        WorkMeter::default()
    }

    /// A meter recording into an existing registry, so CPU accounting
    /// and ad-hoc telemetry share one snapshot.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let nanos = WorkCategory::ALL.map(|c| registry.counter(c.counter_name()));
        let latencies = WorkCategory::ALL.map(|c| registry.histogram(c.histogram_name()));
        WorkMeter {
            registry,
            nanos,
            latencies,
        }
    }

    /// The registry this meter records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record `elapsed` against `category`: busy-time counter plus
    /// latency histogram. Saturates instead of wrapping.
    pub fn record(&self, category: WorkCategory, elapsed: Duration) {
        let index = category.index();
        self.nanos[index].add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        self.latencies[index].record_duration(elapsed);
    }

    /// Record `elapsed` against `category`'s busy-time counter only,
    /// skipping the latency histogram. Used for work that is real CPU
    /// time but not a representative operation — e.g. a breaker-idle
    /// probe, whose near-zero "fetch" would skew the fetch quantiles.
    pub fn record_busy_only(&self, category: WorkCategory, elapsed: Duration) {
        self.nanos[category.index()].add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time a closure and record it.
    pub fn time<T>(&self, category: WorkCategory, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(category, start.elapsed());
        out
    }

    /// Busy time in one category.
    pub fn busy(&self, category: WorkCategory) -> Duration {
        Duration::from_nanos(self.nanos[category.index()].get())
    }

    /// Total busy time across categories.
    pub fn total_busy(&self) -> Duration {
        WorkCategory::ALL.iter().map(|&c| self.busy(c)).sum()
    }

    /// CPU utilization over a window: `total_busy / window`, as a
    /// percentage.
    pub fn cpu_percent(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        100.0 * self.total_busy().as_secs_f64() / window.as_secs_f64()
    }

    /// Zero every instrument in the backing registry (start of a
    /// measurement window). Resets the whole registry, not just the CPU
    /// counters, so measurement windows see a consistent zero point.
    pub fn reset(&self) {
        self.registry.reset();
    }

    /// Snapshot of every category's busy time.
    pub fn breakdown(&self) -> Vec<(WorkCategory, Duration)> {
        WorkCategory::ALL
            .iter()
            .map(|&c| (c, self.busy(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let meter = WorkMeter::new();
        meter.record(WorkCategory::Parse, Duration::from_millis(5));
        meter.record(WorkCategory::Parse, Duration::from_millis(7));
        meter.record(WorkCategory::Archive, Duration::from_millis(3));
        assert_eq!(meter.busy(WorkCategory::Parse), Duration::from_millis(12));
        assert_eq!(meter.busy(WorkCategory::Archive), Duration::from_millis(3));
        assert_eq!(meter.busy(WorkCategory::Fetch), Duration::ZERO);
        assert_eq!(meter.total_busy(), Duration::from_millis(15));
    }

    #[test]
    fn cpu_percent_is_ratio() {
        let meter = WorkMeter::new();
        meter.record(WorkCategory::Summarize, Duration::from_secs(9));
        let pct = meter.cpu_percent(Duration::from_secs(60));
        assert!((pct - 15.0).abs() < 1e-9);
        assert_eq!(meter.cpu_percent(Duration::ZERO), 0.0);
    }

    #[test]
    fn timed_closure_records_something() {
        let meter = WorkMeter::new();
        let out = meter.time(WorkCategory::QueryServe, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(meter.busy(WorkCategory::QueryServe) >= Duration::from_millis(2));
    }

    #[test]
    fn busy_only_recording_skips_the_histogram() {
        let registry = Arc::new(Registry::new());
        let meter = WorkMeter::with_registry(Arc::clone(&registry));
        meter.record_busy_only(WorkCategory::Fetch, Duration::from_micros(400));
        assert_eq!(meter.busy(WorkCategory::Fetch), Duration::from_micros(400));
        let snap = registry.snapshot();
        assert!(
            snap.histogram("fetch_us").is_none_or(|h| h.count == 0),
            "no histogram sample"
        );
    }

    #[test]
    fn reset_zeroes() {
        let meter = WorkMeter::new();
        meter.record(WorkCategory::Fetch, Duration::from_secs(1));
        meter.reset();
        assert_eq!(meter.total_busy(), Duration::ZERO);
    }

    #[test]
    fn breakdown_covers_all_categories() {
        let meter = WorkMeter::new();
        assert_eq!(meter.breakdown().len(), 5);
        let labels: Vec<&str> = WorkCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["fetch", "parse", "summarize", "archive", "query"]
        );
    }

    #[test]
    fn accumulation_saturates_instead_of_wrapping() {
        let meter = WorkMeter::new();
        // Two near-max durations used to wrap the counter back to a
        // small number; now they clamp.
        meter.record(WorkCategory::Fetch, Duration::from_nanos(u64::MAX - 10));
        meter.record(WorkCategory::Fetch, Duration::from_nanos(u64::MAX - 10));
        assert_eq!(
            meter.busy(WorkCategory::Fetch),
            Duration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn meter_feeds_shared_registry() {
        let registry = Arc::new(Registry::new());
        let meter = WorkMeter::with_registry(Arc::clone(&registry));
        meter.record(WorkCategory::Parse, Duration::from_micros(250));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cpu.parse_ns"), Some(250_000));
        let hist = snap.histogram("parse_us").unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.max, 250);
    }
}
