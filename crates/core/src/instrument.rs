//! Per-category CPU accounting.
//!
//! The paper's experiments measure "the percentage of wall-clock CPU time
//! used by the gmeta daemons over a one-hour period" (§4.2). Our
//! deployments run in-process, so instead of `ps` we wrap every unit of
//! monitor work in a timed section attributed to one [`WorkCategory`].
//! CPU% is then `busy_time / window` for a virtual measurement window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What kind of work a gmetad spent time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkCategory {
    /// Downloading XML from a child (the child's serving cost is
    /// attributed to the child's own meter, not here).
    Fetch,
    /// SAX-parsing child XML into the store.
    Parse,
    /// Computing additive-reduction summaries.
    Summarize,
    /// Updating metric archives (RRDs).
    Archive,
    /// Serving queries (rendering XML for parents and viewers).
    QueryServe,
}

impl WorkCategory {
    /// All categories, in display order.
    pub const ALL: [WorkCategory; 5] = [
        WorkCategory::Fetch,
        WorkCategory::Parse,
        WorkCategory::Summarize,
        WorkCategory::Archive,
        WorkCategory::QueryServe,
    ];

    fn index(self) -> usize {
        match self {
            WorkCategory::Fetch => 0,
            WorkCategory::Parse => 1,
            WorkCategory::Summarize => 2,
            WorkCategory::Archive => 3,
            WorkCategory::QueryServe => 4,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkCategory::Fetch => "fetch",
            WorkCategory::Parse => "parse",
            WorkCategory::Summarize => "summarize",
            WorkCategory::Archive => "archive",
            WorkCategory::QueryServe => "query",
        }
    }
}

/// Accumulated busy time, by category. Cheap to share and record into
/// from any thread.
#[derive(Debug, Default)]
pub struct WorkMeter {
    nanos: [AtomicU64; 5],
}

impl WorkMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        WorkMeter::default()
    }

    /// Record `elapsed` against `category`.
    pub fn record(&self, category: WorkCategory, elapsed: Duration) {
        self.nanos[category.index()].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Time a closure and record it.
    pub fn time<T>(&self, category: WorkCategory, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(category, start.elapsed());
        out
    }

    /// Busy time in one category.
    pub fn busy(&self, category: WorkCategory) -> Duration {
        Duration::from_nanos(self.nanos[category.index()].load(Ordering::Relaxed))
    }

    /// Total busy time across categories.
    pub fn total_busy(&self) -> Duration {
        WorkCategory::ALL.iter().map(|&c| self.busy(c)).sum()
    }

    /// CPU utilization over a window: `total_busy / window`, as a
    /// percentage.
    pub fn cpu_percent(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        100.0 * self.total_busy().as_secs_f64() / window.as_secs_f64()
    }

    /// Zero all counters (start of a measurement window).
    pub fn reset(&self) {
        for counter in &self.nanos {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of every category's busy time.
    pub fn breakdown(&self) -> Vec<(WorkCategory, Duration)> {
        WorkCategory::ALL
            .iter()
            .map(|&c| (c, self.busy(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let meter = WorkMeter::new();
        meter.record(WorkCategory::Parse, Duration::from_millis(5));
        meter.record(WorkCategory::Parse, Duration::from_millis(7));
        meter.record(WorkCategory::Archive, Duration::from_millis(3));
        assert_eq!(meter.busy(WorkCategory::Parse), Duration::from_millis(12));
        assert_eq!(meter.busy(WorkCategory::Archive), Duration::from_millis(3));
        assert_eq!(meter.busy(WorkCategory::Fetch), Duration::ZERO);
        assert_eq!(meter.total_busy(), Duration::from_millis(15));
    }

    #[test]
    fn cpu_percent_is_ratio() {
        let meter = WorkMeter::new();
        meter.record(WorkCategory::Summarize, Duration::from_secs(9));
        let pct = meter.cpu_percent(Duration::from_secs(60));
        assert!((pct - 15.0).abs() < 1e-9);
        assert_eq!(meter.cpu_percent(Duration::ZERO), 0.0);
    }

    #[test]
    fn timed_closure_records_something() {
        let meter = WorkMeter::new();
        let out = meter.time(WorkCategory::QueryServe, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(meter.busy(WorkCategory::QueryServe) >= Duration::from_millis(2));
    }

    #[test]
    fn reset_zeroes() {
        let meter = WorkMeter::new();
        meter.record(WorkCategory::Fetch, Duration::from_secs(1));
        meter.reset();
        assert_eq!(meter.total_busy(), Duration::ZERO);
    }

    #[test]
    fn breakdown_covers_all_categories() {
        let meter = WorkMeter::new();
        assert_eq!(meter.breakdown().len(), 5);
        let labels: Vec<&str> = WorkCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["fetch", "parse", "summarize", "archive", "query"]
        );
    }
}
