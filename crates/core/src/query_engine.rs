//! The path-query engine.
//!
//! "Instead of returning the entire tree rooted at a node, monitors
//! accept a small path-like query that specifies a single local subtree
//! to report" (paper §3.3). Lookups walk at most three hash levels —
//! sources, hosts, metrics (fig 4) — and the response is streamed
//! straight out of the store snapshot: hash lookups are O(1), "however
//! the time to dump the actual data takes longer": O(m) for summaries,
//! O(H·m) for full-resolution cluster views (§3.3.2).
//!
//! Responses are always complete `GANGLIA_XML` documents with the
//! selected subtree wrapped in its ancestor tags, so every consumer can
//! reuse the one Ganglia parser.

use ganglia_metrics::codec;
use ganglia_metrics::model::{ClusterBody, ClusterNode, GridBody, GridItem, GridNode, HostNode};
use ganglia_query::{Filter, Query, Segment};
use ganglia_xml::{names, XmlWriter};

use crate::config::{GmetadConfig, TreeMode};
use crate::store::{SourceData, Store};

/// Render the response to `query` from the current store state.
pub fn answer(store: &Store, config: &GmetadConfig, query: &Query, now: u64) -> String {
    let mut out = String::with_capacity(4096);
    let mut writer = XmlWriter::new(&mut out);
    writer.declaration();
    writer.start_element(
        names::GANGLIA_XML,
        &[
            (names::attr::VERSION, "2.5.4"),
            (names::attr::SOURCE, "gmetad"),
        ],
    );
    let localtime = now.to_string();
    writer.start_element(
        names::GRID,
        &[
            (names::attr::NAME, &config.grid_name),
            (names::attr::AUTHORITY, &config.authority_url),
            (names::attr::LOCALTIME, &localtime),
        ],
    );
    if query.is_root() {
        if query.filter == Some(Filter::Summary) {
            // The meta view in one exchange: the whole-grid reduction
            // followed by every source in summary form — "the N-level
            // viewer obtains its summaries directly from the gmeta
            // daemon" (§4.3). Total size O(C·m), independent of H.
            codec::write_summary(&store.root_summary(), &mut writer);
            for state in store.list().iter() {
                match &state.data {
                    SourceData::Cluster(c) => {
                        codec::open_cluster(c, &mut writer);
                        codec::write_summary(&state.summary, &mut writer);
                        writer.end_element();
                    }
                    SourceData::Grid(g) => {
                        codec::open_grid(g, &mut writer);
                        codec::write_summary(&state.summary, &mut writer);
                        writer.end_element();
                    }
                }
            }
        } else {
            for state in store.list().iter() {
                emit_source_full(state, config.tree_mode, &mut writer);
            }
        }
    } else {
        // Level one: data sources (patterns may select several).
        for state in store.list().iter() {
            if !query.segments[0].matches(&state.name) {
                continue;
            }
            let rest = &query.segments[1..];
            if rest.is_empty() && query.filter == Some(Filter::Summary) {
                // Serve the PREcomputed rollup — summarization happens on
                // the polling time-scale, never at query time (§3.3.1).
                match &state.data {
                    SourceData::Cluster(c) => {
                        codec::open_cluster(c, &mut writer);
                        codec::write_summary(&state.summary, &mut writer);
                        writer.end_element();
                    }
                    SourceData::Grid(g) => {
                        codec::open_grid(g, &mut writer);
                        codec::write_summary(&state.summary, &mut writer);
                        writer.end_element();
                    }
                }
                continue;
            }
            emit_selected(&state.data, rest, query.filter.as_ref(), &mut writer);
        }
    }
    writer.end_element(); // GRID
    writer.end_element(); // GANGLIA_XML
    writer.finish().expect("writing to String cannot fail");
    out
}

/// Emit a source at full stored resolution (the root query).
///
/// A source the staleness lifecycle has marked **Down** is emitted in
/// summary form regardless of what detail is stored: its rewritten
/// summary (hosts_up=0, hosts_down=total) is what a polling parent must
/// aggregate, so the outage propagates up the monitoring tree. The
/// last-good full detail remains reachable through explicit path
/// queries for forensics.
fn emit_source_full<W: std::fmt::Write>(
    state: &crate::store::SourceState,
    mode: TreeMode,
    writer: &mut XmlWriter<W>,
) {
    if matches!(state.status, crate::store::SourceStatus::Down { .. }) {
        match &state.data {
            SourceData::Cluster(c) => {
                codec::open_cluster(c, writer);
                codec::write_summary(&state.summary, writer);
                writer.end_element();
            }
            SourceData::Grid(g) => {
                codec::open_grid(g, writer);
                codec::write_summary(&state.summary, writer);
                writer.end_element();
            }
        }
        return;
    }
    match &state.data {
        SourceData::Cluster(cluster) => codec::write_cluster(cluster, writer),
        SourceData::Grid(grid) => {
            // Under N-level the stored grid is already summary-form; under
            // 1-level it is fully expanded. Either way, dump as stored:
            // the 1-level design "reports the union of its children's
            // data to its parent" (§2.1).
            debug_assert!(
                mode == TreeMode::OneLevel || matches!(grid.body, GridBody::Summary(_)),
                "N-level stores remote grids in summary form"
            );
            codec::write_grid(grid, writer);
        }
    }
}

/// Emit the part of one source selected by the remaining segments.
fn emit_selected<W: std::fmt::Write>(
    data: &SourceData,
    rest: &[Segment],
    filter: Option<&Filter>,
    writer: &mut XmlWriter<W>,
) {
    match data {
        SourceData::Cluster(cluster) => emit_cluster_selected(cluster, rest, filter, writer),
        SourceData::Grid(grid) => emit_grid_selected(grid, rest, filter, writer),
    }
}

fn emit_cluster_selected<W: std::fmt::Write>(
    cluster: &ClusterNode,
    rest: &[Segment],
    filter: Option<&Filter>,
    writer: &mut XmlWriter<W>,
) {
    if rest.is_empty() {
        if filter == Some(&Filter::Summary) {
            // The cluster-summary query (§3.3.2): summary form even when
            // full detail is stored, so very large clusters don't
            // overwhelm the viewer.
            codec::open_cluster(cluster, writer);
            codec::write_summary(&cluster.summary(), writer);
            writer.end_element();
        } else {
            codec::write_cluster(cluster, writer);
        }
        return;
    }
    // Level two: hosts.
    codec::open_cluster(cluster, writer);
    let ClusterBody::Hosts(hosts) = &cluster.body else {
        // Summary-form cluster has no hosts to descend into.
        writer.end_element();
        return;
    };
    for host in hosts {
        if rest[0].matches(&host.name) {
            emit_host_selected(host, &rest[1..], writer);
        }
    }
    writer.end_element();
}

fn emit_host_selected<W: std::fmt::Write>(
    host: &HostNode,
    rest: &[Segment],
    writer: &mut XmlWriter<W>,
) {
    if rest.is_empty() {
        codec::write_host(host, writer);
        return;
    }
    // Level three: metrics.
    codec::open_host(host, writer);
    for metric in &host.metrics {
        if rest[0].matches(&metric.name) {
            codec::write_metric(metric, writer);
        }
    }
    writer.end_element();
}

fn emit_grid_selected<W: std::fmt::Write>(
    grid: &GridNode,
    rest: &[Segment],
    filter: Option<&Filter>,
    writer: &mut XmlWriter<W>,
) {
    if rest.is_empty() {
        match (&grid.body, filter) {
            (_, Some(Filter::Summary)) | (GridBody::Summary(_), _) => {
                codec::open_grid(grid, writer);
                codec::write_summary(&grid.summary(), writer);
                writer.end_element();
            }
            (GridBody::Items(_), _) => codec::write_grid(grid, writer),
        }
        return;
    }
    codec::open_grid(grid, writer);
    if let GridBody::Items(items) = &grid.body {
        for item in items {
            if !rest[0].matches(item.name()) {
                continue;
            }
            match item {
                GridItem::Cluster(c) => emit_cluster_selected(c, &rest[1..], filter, writer),
                GridItem::Grid(g) => emit_grid_selected(g, &rest[1..], filter, writer),
            }
        }
    }
    // Summary-form grids cannot be descended into: the authority URL
    // points at the gmetad holding the higher-resolution view (§3.2).
    writer.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmetadConfig;
    use crate::store::SourceState;
    use ganglia_metrics::model::{GridBody, MetricEntry, SummaryBody};
    use ganglia_metrics::{parse_document, GridItem as MGridItem, MetricValue};

    fn make_store() -> Store {
        let store = Store::new();
        // Cluster source "meteor" with 3 hosts × 2 metrics.
        let hosts: Vec<HostNode> = (0..3)
            .map(|i| {
                let mut h = HostNode::new(format!("compute-0-{i}"), format!("10.0.0.{i}"));
                h.metrics
                    .push(MetricEntry::new("cpu_num", MetricValue::Uint16(2)));
                h.metrics.push(MetricEntry::new(
                    "load_one",
                    MetricValue::Float(0.5 + i as f32),
                ));
                h
            })
            .collect();
        let cluster = ClusterNode::with_hosts("meteor", hosts);
        let summary = cluster.summary();
        store.replace(SourceState::cluster("meteor", cluster, summary, 100));
        // Remote grid source "attic" in summary form.
        let summary = SummaryBody {
            hosts_up: 10,
            hosts_down: 1,
            metrics: vec![],
        };
        let grid = GridNode {
            name: "attic".into(),
            authority: "http://attic/ganglia/".into(),
            localtime: Some(90),
            body: GridBody::Summary(summary.clone()),
        };
        store.replace(SourceState::grid("attic", grid, summary, 100));
        store
    }

    fn config() -> GmetadConfig {
        GmetadConfig::new("sdsc")
    }

    fn ask(store: &Store, q: &str) -> ganglia_metrics::GangliaDoc {
        let query = Query::parse(q).unwrap();
        let xml = answer(store, &config(), &query, 123);
        parse_document(&xml).unwrap_or_else(|e| panic!("bad response for {q}: {e}\n{xml}"))
    }

    fn self_grid(doc: &ganglia_metrics::GangliaDoc) -> &GridNode {
        let MGridItem::Grid(g) = &doc.items[0] else {
            panic!("response must be wrapped in the self grid")
        };
        g
    }

    #[test]
    fn root_query_returns_everything() {
        let store = make_store();
        let doc = ask(&store, "/");
        let grid = self_grid(&doc);
        assert_eq!(grid.name, "sdsc");
        let GridBody::Items(items) = &grid.body else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        // Local cluster at full resolution, remote grid as summary.
        let MGridItem::Grid(attic) = grid.item("attic").unwrap() else {
            panic!()
        };
        assert!(matches!(attic.body, GridBody::Summary(_)));
        assert_eq!(attic.authority, "http://attic/ganglia/");
        let MGridItem::Cluster(meteor) = grid.item("meteor").unwrap() else {
            panic!()
        };
        assert_eq!(meteor.host_count(), 3);
    }

    #[test]
    fn root_summary_query_returns_per_source_summaries() {
        let store = make_store();
        let doc = ask(&store, "/?filter=summary");
        let grid = self_grid(&doc);
        // Every source present, each in summary form.
        let GridBody::Items(items) = &grid.body else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        let MGridItem::Cluster(meteor) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let ClusterBody::Summary(s) = &meteor.body else {
            panic!("cluster must be in summary form")
        };
        assert_eq!(s.hosts_up, 3);
        // The merged totals compose from the rows.
        let merged = grid.summary();
        assert_eq!(merged.hosts_up, 13);
        assert_eq!(merged.hosts_down, 1);
    }

    #[test]
    fn cluster_query_full_resolution() {
        let store = make_store();
        let doc = ask(&store, "/meteor");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(c) = grid.item("meteor").unwrap() else {
            panic!()
        };
        assert_eq!(c.host_count(), 3);
        assert!(grid.item("attic").is_none(), "unselected source omitted");
    }

    #[test]
    fn cluster_summary_filter() {
        let store = make_store();
        let doc = ask(&store, "/meteor?filter=summary");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(c) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let ClusterBody::Summary(s) = &c.body else {
            panic!("expected summary form")
        };
        assert_eq!(s.hosts_up, 3);
        let load = s.metric("load_one").unwrap();
        assert_eq!(load.num, 3);
    }

    #[test]
    fn fig4_host_query() {
        let store = make_store();
        let doc = ask(&store, "/meteor/compute-0-1/");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(c) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let ClusterBody::Hosts(hosts) = &c.body else {
            panic!()
        };
        assert_eq!(hosts.len(), 1, "only the selected host");
        assert_eq!(hosts[0].name, "compute-0-1");
        assert_eq!(hosts[0].metrics.len(), 2, "metrics at full detail");
    }

    #[test]
    fn metric_query() {
        let store = make_store();
        let doc = ask(&store, "/meteor/compute-0-0/load_one");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(c) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let host = c.host("compute-0-0").unwrap();
        assert_eq!(host.metrics.len(), 1);
        assert_eq!(host.metrics[0].name, "load_one");
    }

    #[test]
    fn pattern_query_selects_multiple_hosts() {
        let store = make_store();
        let doc = ask(&store, "/meteor/~compute-0-[01]$");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(c) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let ClusterBody::Hosts(hosts) = &c.body else {
            panic!()
        };
        assert_eq!(hosts.len(), 2);
    }

    #[test]
    fn unknown_path_returns_empty_grid() {
        let store = make_store();
        let doc = ask(&store, "/nonexistent/x/y");
        let grid = self_grid(&doc);
        let GridBody::Items(items) = &grid.body else {
            panic!()
        };
        assert!(items.is_empty());
    }

    #[test]
    fn summary_grid_cannot_be_descended() {
        let store = make_store();
        let doc = ask(&store, "/attic/some-cluster");
        let grid = self_grid(&doc);
        // The attic shell is present but empty: resolution lives at the
        // authority.
        let MGridItem::Grid(attic) = grid.item("attic").unwrap() else {
            panic!()
        };
        match &attic.body {
            GridBody::Items(items) => assert!(items.is_empty()),
            GridBody::Summary(s) => assert_eq!(s.hosts_total(), 0),
        }
    }

    #[test]
    fn grid_source_summary_query() {
        let store = make_store();
        let doc = ask(&store, "/attic");
        let grid = self_grid(&doc);
        let MGridItem::Grid(attic) = grid.item("attic").unwrap() else {
            panic!()
        };
        let GridBody::Summary(s) = &attic.body else {
            panic!()
        };
        assert_eq!(s.hosts_up, 10);
    }

    #[test]
    fn onelevel_expanded_grids_support_deep_paths() {
        // Under the 1-level design a remote grid is stored fully
        // expanded, so paths can descend through it:
        // /source/cluster/host/metric.
        let store = Store::new();
        let mut host = HostNode::new("n0", "10.9.9.9");
        host.metrics
            .push(MetricEntry::new("load_one", MetricValue::Float(1.5)));
        host.metrics
            .push(MetricEntry::new("cpu_num", MetricValue::Uint16(4)));
        let cluster = ClusterNode::with_hosts("inner-cluster", vec![host]);
        let grid = GridNode::with_items("childgrid", vec![GridItem::Cluster(cluster)]);
        let summary = grid.summary();
        store.replace(SourceState::grid("childgrid", grid, summary, 0));

        // Depth 2: select the nested cluster.
        let doc = ask(&store, "/childgrid/inner-cluster");
        assert_eq!(doc.host_count(), 1);

        // Depth 3: the host.
        let doc = ask(&store, "/childgrid/inner-cluster/n0");
        assert_eq!(doc.host_count(), 1);

        // Depth 4: one metric of the host.
        let query = Query::parse("/childgrid/inner-cluster/n0/load_one").unwrap();
        let xml = answer(&store, &config(), &query, 0);
        assert!(xml.contains("load_one"));
        assert!(!xml.contains("cpu_num"), "sibling metric filtered out");

        // Summary filter on the nested cluster.
        let doc = ask(&store, "/childgrid/inner-cluster?filter=summary");
        let grid = self_grid(&doc);
        let MGridItem::Grid(child) = grid.item("childgrid").unwrap() else {
            panic!()
        };
        let GridBody::Items(items) = &child.body else {
            panic!()
        };
        let MGridItem::Cluster(c) = &items[0] else {
            panic!()
        };
        assert!(matches!(c.body, ClusterBody::Summary(_)));
    }

    #[test]
    fn metric_patterns_select_metric_families() {
        let store = make_store();
        let doc = ask(&store, "/meteor/~.*/~^load");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(c) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let ClusterBody::Hosts(hosts) = &c.body else {
            panic!()
        };
        assert_eq!(hosts.len(), 3, "pattern selects every host");
        for host in hosts {
            assert_eq!(host.metrics.len(), 1);
            assert_eq!(host.metrics[0].name, "load_one");
        }
    }

    #[test]
    fn down_source_is_served_in_summary_form_at_the_root() {
        use crate::health::LifecyclePolicy;
        let store = make_store();
        // "meteor" last succeeded at t=100; by t=200 it is past the
        // down threshold and its summary is rewritten.
        let lifecycle = LifecyclePolicy {
            down_after_secs: 50,
            expire_after_secs: 10_000,
        };
        store.degrade("meteor", 200, &lifecycle);
        let doc = ask(&store, "/");
        let grid = self_grid(&doc);
        let MGridItem::Cluster(meteor) = grid.item("meteor").unwrap() else {
            panic!()
        };
        let ClusterBody::Summary(s) = &meteor.body else {
            panic!("down source must be emitted in summary form")
        };
        assert_eq!(s.hosts_up, 0);
        assert_eq!(s.hosts_down, 3);
        // A parent polling "/" therefore aggregates the outage.
        assert_eq!(grid.summary().hosts_down, 4); // 3 meteor + 1 attic
                                                  // Explicit path queries still reach the last-good detail.
        let doc = ask(&store, "/meteor/compute-0-1");
        assert_eq!(doc.host_count(), 1);
    }

    #[test]
    fn response_size_scales_with_selection_not_tree() {
        // The core table-1 effect: a host query's response is tiny
        // relative to the full dump.
        let store = make_store();
        let full = answer(&store, &config(), &Query::parse("/").unwrap(), 0);
        let host = answer(
            &store,
            &config(),
            &Query::parse("/meteor/compute-0-0").unwrap(),
            0,
        );
        assert!(
            host.len() * 2 < full.len(),
            "{} vs {}",
            host.len(),
            full.len()
        );
    }
}
