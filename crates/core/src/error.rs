//! Gmetad error type.

use std::fmt;

use ganglia_metrics::ParseError;
use ganglia_net::NetError;

/// Anything that can go wrong inside the wide-area monitor.
#[derive(Debug)]
pub enum GmetadError {
    /// Every redundant address of a data source failed this round.
    /// Carries the per-address failures in the order tried.
    AllHostsFailed {
        source: String,
        errors: Vec<NetError>,
    },
    /// A child served XML that does not parse as a Ganglia document.
    BadReport { source: String, error: ParseError },
    /// Archiving failed.
    Archive(ganglia_rrd::RrdError),
    /// A query string was malformed.
    BadQuery(ganglia_query::QueryError),
}

impl fmt::Display for GmetadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmetadError::AllHostsFailed { source, errors } => {
                write!(
                    f,
                    "all {} host(s) of source {source:?} failed",
                    errors.len()
                )
            }
            GmetadError::BadReport { source, error } => {
                write!(f, "source {source:?} served a bad report: {error}")
            }
            GmetadError::Archive(e) => write!(f, "archive failure: {e}"),
            GmetadError::BadQuery(e) => write!(f, "bad query: {e}"),
        }
    }
}

impl std::error::Error for GmetadError {}

impl From<ganglia_rrd::RrdError> for GmetadError {
    fn from(e: ganglia_rrd::RrdError) -> Self {
        GmetadError::Archive(e)
    }
}

impl From<ganglia_query::QueryError> for GmetadError {
    fn from(e: ganglia_query::QueryError) -> Self {
        GmetadError::BadQuery(e)
    }
}
