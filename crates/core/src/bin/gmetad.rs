//! The standalone gmetad daemon.
//!
//! Reads a `gmetad.conf` (see [`ganglia_core::conf`] for the format),
//! binds the query engine on the interactive port, and polls its data
//! sources on the configured interval until killed.
//!
//! ```sh
//! gmetad --conf /etc/ganglia/gmetad.conf
//! gmetad --conf gmetad.conf --once      # single poll round, then exit
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ganglia_core::conf::parse_conf;
use ganglia_core::Gmetad;
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, TcpTransport};

fn usage() -> ExitCode {
    eprintln!("usage: gmetad --conf <path> [--once]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut conf_path: Option<String> = None;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conf" | "-c" => match args.next() {
                Some(path) => conf_path = Some(path),
                None => return usage(),
            },
            "--once" => once = true,
            "--help" | "-h" => {
                return usage();
            }
            other => {
                eprintln!("gmetad: unknown argument {other:?}");
                return usage();
            }
        }
    }
    let Some(conf_path) = conf_path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&conf_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("gmetad: cannot read {conf_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match parse_conf(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("gmetad: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "gmetad: grid {:?}, {} data source(s), {:?} mode, polling every {}s",
        parsed.config.grid_name,
        parsed.config.data_sources.len(),
        parsed.config.tree_mode,
        parsed.config.poll_interval,
    );

    let transport = TcpTransport::new();
    let daemon = Gmetad::new(parsed.config);
    let bind = Addr::new(format!("{}:{}", parsed.bind, parsed.interactive_port));
    let guard = match daemon.serve_on(&transport, &bind) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("gmetad: cannot bind {bind}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("gmetad: query engine listening on {}", guard.addr());

    if once {
        let now = wall_secs();
        for (cfg, result) in daemon
            .config()
            .data_sources
            .to_vec()
            .iter()
            .zip(daemon.poll_all(&transport, now))
        {
            match result {
                Ok(()) => eprintln!("gmetad: polled {:?} ok", cfg.name),
                Err(e) => eprintln!("gmetad: {e}"),
            }
        }
        dump_stats(&daemon);
        let _ = daemon.flush_archives();
        println!("{}", daemon.query("/?filter=summary"));
        return ExitCode::SUCCESS;
    }

    // Run until killed; flush archives after every round.
    let stop = Arc::new(AtomicBool::new(false));
    let transport_arc: Arc<dyn Transport> = Arc::new(transport);
    let handle = Arc::clone(&daemon).run_background(transport_arc, Arc::clone(&stop));
    let flush_interval = std::time::Duration::from_secs(daemon.config().poll_interval.max(1));
    loop {
        std::thread::sleep(flush_interval);
        if let Err(e) = daemon.flush_archives() {
            eprintln!("gmetad: archive flush failed: {e}");
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = handle.join();
    ExitCode::SUCCESS
}

/// Print the per-source health/statistics table to stderr.
fn dump_stats(daemon: &Gmetad) {
    eprintln!(
        "gmetad: {:<24} {:>4} {:>6} {:>9} {:>8} {:<16} PHASE",
        "SOURCE", "OK", "FAILED", "FAILOVERS", "CONSECF", "BREAKER"
    );
    for row in daemon.poller_stats() {
        let phase = row
            .phase
            .map_or_else(|| "no-data".to_string(), |p| p.to_string());
        eprintln!(
            "gmetad: {:<24} {:>4} {:>6} {:>9} {:>8} {:<16} {}",
            row.name,
            row.polls_ok,
            row.polls_failed,
            row.failovers,
            row.consecutive_failures,
            row.breaker.to_string(),
            phase,
        );
    }
}

fn wall_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
