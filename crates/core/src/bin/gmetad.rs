//! The standalone gmetad daemon.
//!
//! Reads a `gmetad.conf` (see [`ganglia_core::conf`] for the format),
//! binds both TCP services — the full XML dump on `xml_port` (8651) and
//! the query engine on `interactive_port` (8652) — through the
//! `ganglia-serve` front tier (worker pool, revision-keyed response
//! cache, admission control), and polls its data sources on the
//! configured interval until killed.
//!
//! ```sh
//! gmetad --conf /etc/ganglia/gmetad.conf
//! gmetad --conf gmetad.conf --once      # single poll round, then exit
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ganglia_core::conf::parse_conf;
use ganglia_core::Gmetad;
use ganglia_net::transport::Transport;
use ganglia_net::{Addr, TcpTransport};
use ganglia_serve::PooledServer;

fn usage() -> ExitCode {
    eprintln!("usage: gmetad --conf <path> [--once]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut conf_path: Option<String> = None;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conf" | "-c" => match args.next() {
                Some(path) => conf_path = Some(path),
                None => return usage(),
            },
            "--once" => once = true,
            "--help" | "-h" => {
                return usage();
            }
            other => {
                eprintln!("gmetad: unknown argument {other:?}");
                return usage();
            }
        }
    }
    let Some(conf_path) = conf_path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&conf_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("gmetad: cannot read {conf_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match parse_conf(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("gmetad: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "gmetad: grid {:?}, {} data source(s), {:?} mode, polling every {}s \
         ({} poll worker(s), round deadline {})",
        parsed.config.grid_name,
        parsed.config.data_sources.len(),
        parsed.config.tree_mode,
        parsed.config.poll_interval,
        parsed
            .config
            .effective_concurrency(parsed.config.data_sources.len()),
        match parsed.config.round_deadline_secs {
            0 => "off".to_string(),
            secs => format!("{secs}s"),
        },
    );

    let transport = TcpTransport::new();
    let daemon = Gmetad::new(parsed.config);
    if daemon.archive_journal_enabled() {
        // Crash recovery: rebuild from checkpointed files plus the
        // journal, dropping any torn tail left by a mid-write crash.
        match daemon.recover_archives() {
            Ok(report) => eprintln!(
                "gmetad: archive recovery: {} shard(s), {} file(s) loaded, \
                 {} journal record(s) replayed ({} already checkpointed), \
                 {} torn tail(s) dropped ({}B)",
                report.shards,
                report.loaded,
                report.replayed,
                report.noops,
                report.torn_tails,
                report.torn_bytes,
            ),
            Err(e) => {
                eprintln!("gmetad: archive recovery failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Both services run through the serving front tier: a worker pool
    // per port, one shared registry, cache keyed by the store revision.
    let interactive_bind = Addr::new(format!("{}:{}", parsed.bind, parsed.interactive_port));
    let interactive_guard =
        match PooledServer::bind(&interactive_bind, daemon.query_tier(parsed.serve.clone())) {
            Ok(guard) => guard,
            Err(e) => {
                eprintln!("gmetad: cannot bind {interactive_bind}: {e}");
                return ExitCode::FAILURE;
            }
        };
    let xml_bind = Addr::new(format!("{}:{}", parsed.bind, parsed.xml_port));
    let xml_guard = match PooledServer::bind(&xml_bind, daemon.dump_tier(parsed.serve.clone())) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("gmetad: cannot bind {xml_bind}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "gmetad: query engine on {}, xml dump on {} \
         ({} server thread(s)/port, max {} in flight, cache {})",
        interactive_guard.addr(),
        xml_guard.addr(),
        parsed.serve.workers,
        parsed.serve.max_inflight,
        if parsed.serve.cache { "on" } else { "off" },
    );

    if once {
        let now = wall_secs();
        for (cfg, result) in daemon
            .config()
            .data_sources
            .to_vec()
            .iter()
            .zip(daemon.poll_all(&transport, now))
        {
            match result {
                Ok(()) => eprintln!("gmetad: polled {:?} ok", cfg.name),
                Err(e) => eprintln!("gmetad: {e}"),
            }
        }
        dump_stats(&daemon);
        if daemon.archive_journal_enabled() {
            // Leave a clean checkpoint behind rather than a journal to
            // replay on the next start.
            let _ = daemon.checkpoint_archives(now);
        } else {
            let _ = daemon.flush_archives();
        }
        println!("{}", daemon.query("/?filter=summary"));
        return ExitCode::SUCCESS;
    }

    // Run until killed. Journal mode commits and checkpoints on its own
    // cadence inside the poll round; legacy mode rewrites every archive
    // after each round.
    let stop = Arc::new(AtomicBool::new(false));
    let transport_arc: Arc<dyn Transport> = Arc::new(transport);
    let handle = Arc::clone(&daemon).run_background(transport_arc, Arc::clone(&stop));
    let flush_interval = std::time::Duration::from_secs(daemon.config().poll_interval.max(1));
    loop {
        std::thread::sleep(flush_interval);
        if !daemon.archive_journal_enabled() {
            if let Err(e) = daemon.flush_archives() {
                eprintln!("gmetad: archive flush failed: {e}");
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = handle.join();
    ExitCode::SUCCESS
}

/// Print the per-source health/statistics table to stderr: names
/// left-aligned, numeric columns right-aligned, widths fitted to the
/// data, with a telemetry totals row closing the table.
fn dump_stats(daemon: &Gmetad) {
    let telemetry = daemon.telemetry_snapshot();
    let now = daemon.clock();
    // Per-source journal/durability status: bytes awaiting fsync plus
    // the age of the last completed checkpoint. "-" when not journaling.
    let journal_cell = |source: &str| -> String {
        if !daemon.archive_journal_enabled() {
            return "-".to_string();
        }
        match daemon.archive_journal_stats(source) {
            Some(shard) => {
                let age = match shard.last_checkpoint_at {
                    Some(at) => format!("{}s", now.saturating_sub(at)),
                    None => "never".to_string(),
                };
                format!("{}B cp:{age}", shard.stats.pending_bytes)
            }
            None => "-".to_string(),
        }
    };
    // Per-source p99 data age (host REPORTED ages, falling back to hop
    // lag for summary-only grid sources). "-" before the first poll.
    let age_cell = |source: &str| -> String {
        ganglia_core::freshness::source_age_p99(&telemetry, source)
            .map_or_else(|| "-".to_string(), |age| format!("{age}s"))
    };
    let mut rows: Vec<[String; 10]> = daemon
        .poller_stats()
        .iter()
        .map(|row| {
            [
                row.name.clone(),
                row.polls_ok.to_string(),
                row.polls_failed.to_string(),
                row.polls_backoff.to_string(),
                row.failovers.to_string(),
                row.consecutive_failures.to_string(),
                age_cell(&row.name),
                row.breaker.to_string(),
                row.phase
                    .map_or_else(|| "no-data".to_string(), |p| p.to_string()),
                journal_cell(&row.name),
            ]
        })
        .collect();
    let fetch_p99_us = telemetry
        .histogram("fetch_us")
        .map_or(0, |h| h.quantile(0.99));
    rows.push([
        "(all sources)".to_string(),
        telemetry.counter("polls_ok_total").unwrap_or(0).to_string(),
        telemetry
            .counter("polls_failed_total")
            .unwrap_or(0)
            .to_string(),
        telemetry
            .counter("polls_backoff_total")
            .unwrap_or(0)
            .to_string(),
        "-".to_string(),
        "-".to_string(),
        telemetry
            .histogram("freshness.age_s")
            .filter(|h| h.count > 0)
            .map_or_else(|| "-".to_string(), |h| format!("{}s", h.quantile(0.99))),
        format!(
            "{} open(s)",
            telemetry.counter("breaker_opens_total").unwrap_or(0)
        ),
        format!(
            "fetch_p99={fetch_p99_us}us in={}B",
            telemetry.counter("bytes_in_total").unwrap_or(0)
        ),
        if daemon.archive_journal_enabled() {
            let totals = daemon.archive_journal_totals();
            format!(
                "{}B pending ({} commits)",
                totals.pending_bytes, totals.commits
            )
        } else {
            "-".to_string()
        },
    ]);
    let headers = [
        "SOURCE",
        "OK",
        "FAILED",
        "BACKOFF",
        "FAILOVERS",
        "CONSECF",
        "AGE",
        "BREAKER",
        "PHASE",
        "JOURNAL",
    ];
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r[c].len())
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let render = |cells: &[String; 10]| {
        // Columns 1–6 are numeric: right-aligned.
        format!(
            "gmetad: {:<w0$} {:>w1$} {:>w2$} {:>w3$} {:>w4$} {:>w5$} {:>w6$} {:<w7$} {:<w8$} {}",
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5],
            cells[6],
            cells[7],
            cells[8],
            cells[9],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
            w4 = widths[4],
            w5 = widths[5],
            w6 = widths[6],
            w7 = widths[7],
            w8 = widths[8],
        )
    };
    eprintln!("{}", render(&headers.map(String::from)));
    for row in &rows {
        eprintln!("{}", render(row));
    }
    // The full instrument dump, for eyeballing a live daemon.
    for line in telemetry
        .render_table(&format!("gmetad:{}", daemon.config().grid_name))
        .lines()
    {
        eprintln!("gmetad: {line}");
    }
}

fn wall_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
