//! The wide-area Gmeta monitor — the paper's primary contribution.
//!
//! A gmetad sits in a monitoring tree (paper fig 2): its children are
//! clusters running gmond, or other gmetads; its parent (if any) polls it
//! the same way it polls its children. This crate implements both gmetad
//! designs the paper evaluates:
//!
//! * the **1-level** design (§2.1 / monitor-core 2.5.1): every node
//!   "reports the union of its children's data to its parent, and will
//!   process and archive data for all clusters in its subtree";
//! * the **N-level** design (§2.2–2.3 / monitor-core 2.5.4): `GRID` tags
//!   make the tree explicit, remote grids are kept only as additive
//!   summaries with an authority URL pointing at the higher-resolution
//!   holder, and a path-query engine serves single subtrees from a
//!   three-level hash-table store.
//!
//! Module map:
//!
//! * [`config`] — data sources (each with a redundant host list), tree
//!   mode, polling interval, archive mode;
//! * [`poller`] — per-source polling with gmond fail-over and steady
//!   retry (§2.1's failure handling);
//! * [`health`] — per-endpoint circuit breakers with capped
//!   exponential backoff, and the staleness-lifecycle thresholds
//!   (Fresh → Stale → Down → Expired) the store enforces;
//! * [`store`] — the hash-table store of §3.3.2 ("our approach
//!   approximates a DOM design where each XML tag name keys into a hash
//!   table");
//! * [`query_engine`] — path queries over the store, including the
//!   cluster-summary filter;
//! * [`archive`] — RRD archiving: full host archives for local clusters,
//!   summary-only archives for remote grids (N-level), or full
//!   duplicates of the entire subtree (1-level), held in per-source
//!   shards so parallel workers archive without a global lock;
//! * [`gmetad`] — the assembled daemon: background summarization on the
//!   polling time-scale (poll rounds fan out across sources on a
//!   scoped worker pool), query serving from the latest fully-parsed
//!   snapshot (§3.3.1);
//! * [`instrument`] — per-category CPU accounting used by the paper's
//!   experiments, backed by the `ganglia-telemetry` registry so
//!   counters, gauges, and latency histograms share one snapshot; when
//!   `self_telemetry` is enabled the daemon republishes that snapshot
//!   as a synthetic `<grid>-monitor` cluster of `self.*` metrics —
//!   archived, summarized, and path-queryable like any other source —
//!   and serves the raw instruments for `/?filter=telemetry`;
//! * [`freshness`] — federation-wide data-age accounting: per-depth
//!   and per-source histograms of host data age and per-hop grid lag,
//!   with explicit handling of missing timestamps and clock skew;
//! * [`join`] — extension (paper §5 future work): MDS-style
//!   self-organizing tree membership with certificate-checked join
//!   messages and soft-state pruning;
//! * [`sha256`] — a from-scratch SHA-256 used by [`join`]'s HMAC
//!   certificates;
//! * [`conf`] — `gmetad.conf` parsing for the standalone daemon binary.

pub mod archive;
pub mod conf;
pub mod config;
pub mod error;
pub mod freshness;
pub mod gmetad;
pub mod health;
pub mod instrument;
pub mod join;
pub mod poller;
pub mod query_engine;
pub mod sha256;
pub mod store;

pub use config::{ArchiveMode, DataSourceCfg, GmetadConfig, InvalidDataSource, TreeMode};
pub use error::GmetadError;
pub use gmetad::{Gmetad, PollerStats};
pub use health::{BreakerState, EndpointHealth, LifecyclePolicy, RetryPolicy};
pub use instrument::{WorkCategory, WorkMeter};
pub use poller::{RoundBudget, SourcePoller};
pub use store::{Degradation, SourceData, SourceState, SourceStatus, Store};

// Re-exported so binaries and experiments don't need a direct
// dependency for the common telemetry types.
pub use ganglia_telemetry as telemetry;
