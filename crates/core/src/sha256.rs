//! A from-scratch SHA-256 and HMAC-SHA256.
//!
//! The self-organizing join extension ([`crate::join`]) verifies
//! membership with certificates, mirroring MDS's certificate-based trust
//! (paper §5: "children in an MDS tree periodically send join messages
//! to their parents, who verify trust via a cryptographic certificate
//! sent with the message"). No crypto dependency is warranted for that
//! one use, so the primitive lives here, tested against FIPS 180-4
//! vectors.

/// Output size in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered toward the next 64-byte block.
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length += data.len() as u64;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Everything fit in the partial buffer; the tail write
                // below must not clobber the buffered count.
                return;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("split at 64"));
            data = rest;
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.length * 8;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Manual length append (update would recount it).
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunks of 4"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot digest.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// HMAC-SHA256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time digest comparison.
pub fn digest_eq(a: &[u8; DIGEST_LEN], b: &[u8; DIGEST_LEN]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// Hex rendering for logs and wire messages.
pub fn to_hex(digest: &[u8; DIGEST_LEN]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parse the hex rendering.
pub fn from_hex(hex: &str) -> Option<[u8; DIGEST_LEN]> {
    if hex.len() != DIGEST_LEN * 2 {
        return None;
    }
    let mut out = [0u8; DIGEST_LEN];
    for i in 0..DIGEST_LEN {
        out[i] = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).ok()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 test vectors.
    #[test]
    fn fips_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut hasher = Sha256::new();
        for _ in 0..1000 {
            hasher.update(&[b'a'; 1000]);
        }
        assert_eq!(
            to_hex(&hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), sha256(data), "split {split}");
        }
    }

    // RFC 4231 test case 2.
    #[test]
    fn hmac_rfc4231() {
        let digest = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&digest),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 1 (20-byte key of 0x0b).
    #[test]
    fn hmac_rfc4231_case1() {
        let digest = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            to_hex(&digest),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        // Key longer than the block size takes the hash-the-key path;
        // RFC 4231 test case 6.
        let digest = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&digest),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hex_roundtrip_and_eq() {
        let digest = sha256(b"x");
        let hex = to_hex(&digest);
        assert_eq!(from_hex(&hex), Some(digest));
        assert_eq!(from_hex("zz"), None);
        assert!(digest_eq(&digest, &digest));
        let other = sha256(b"y");
        assert!(!digest_eq(&digest, &other));
    }
}
