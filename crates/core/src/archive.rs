//! Metric archiving policy.
//!
//! What gets archived is *the* difference between the two designs
//! (paper §4.3): the 1-level monitor keeps full per-host archives for
//! every cluster in its subtree ("every monitor between a cluster and
//! the root will keep identical metric archives for that cluster",
//! §2.1), while the N-level monitor keeps full archives only for its
//! local clusters and "only summary archives of descendants".
//!
//! During downtime the archiver records explicitly-unknown samples — the
//! "zero record" that aids "time-of-death forensic analysis" (§3.1).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use ganglia_metrics::model::{ClusterBody, ClusterNode, GridBody, GridItem, GridNode, SummaryBody};
use ganglia_rrd::{
    journal_file_name, scan_and_repair, ConsolidationFn, JournalStats, MetricKey, RrdError, RrdSet,
    Series,
};
use parking_lot::{Mutex, RwLock};

use crate::config::TreeMode;
use crate::store::{SourceData, SourceState};

/// Shared factory for the RRD spec of newly created archives.
pub type ArchiveSpecFactory = Arc<dyn Fn(&MetricKey, u64) -> ganglia_rrd::RrdSpec + Send + Sync>;

/// Per-source archive storage: one independently-locked [`RrdSet`] per
/// data source, so parallel poll workers archive concurrently instead
/// of contending on one global archiver lock.
///
/// All shards share one persistence root — an `RrdSet` writes one file
/// per metric key under source-derived relative paths, so the on-disk
/// layout is byte-identical to the old single-set archiver and existing
/// directories reload fine.
pub struct ArchiveShards {
    shards: RwLock<HashMap<String, Arc<Mutex<RrdSet>>>>,
    spec: Option<ArchiveSpecFactory>,
    persist_dir: Option<PathBuf>,
    /// Front each shard with a write-ahead journal under
    /// `<persist_dir>/.journal/` (requires a persistence root).
    journal: bool,
}

/// Journal/durability status of one shard, for operator tooling.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardJournal {
    /// Journal accounting (durable/pending bytes, commits).
    pub stats: JournalStats,
    /// Logical time of the shard's last completed checkpoint.
    pub last_checkpoint_at: Option<u64>,
    /// Databases updated since their last checkpoint write.
    pub dirty: usize,
}

/// Aggregate outcome of [`ArchiveShards::recover`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ArchiveRecovery {
    /// Shards present after recovery.
    pub shards: usize,
    /// Databases loaded from checkpointed `.rrd` files.
    pub loaded: usize,
    /// Journal records replayed as new updates.
    pub replayed: u64,
    /// Journal records already reflected in checkpointed state.
    pub noops: u64,
    /// Journals whose torn tail was dropped (0 or 1 each).
    pub torn_tails: u64,
    /// Bytes discarded with torn tails.
    pub torn_bytes: u64,
    /// Records that failed to replay for any other reason.
    pub errors: u64,
}

/// Aggregate progress of an incremental checkpoint pass over shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointTotals {
    /// RRD files written (each atomically) by this pass.
    pub files_written: usize,
    /// Dirty databases still awaiting a write across all shards.
    pub remaining: usize,
}

impl ArchiveShards {
    /// Empty shard map; `spec` customizes new archives (experiments use
    /// compact ones), `persist_dir` is the shared flush root.
    pub fn new(spec: Option<ArchiveSpecFactory>, persist_dir: Option<PathBuf>) -> ArchiveShards {
        ArchiveShards {
            shards: RwLock::new(HashMap::new()),
            spec,
            persist_dir,
            journal: false,
        }
    }

    /// Enable (or disable) journaled persistence for shards created
    /// after this call. No effect without a persistence root.
    pub fn with_journal(mut self, journal: bool) -> ArchiveShards {
        self.journal = journal && self.persist_dir.is_some();
        self
    }

    /// Whether shards journal their updates.
    pub fn journal_enabled(&self) -> bool {
        self.journal
    }

    /// The `.journal/` spool directory, when journaling is on.
    pub fn journal_dir(&self) -> Option<PathBuf> {
        if !self.journal {
            return None;
        }
        self.persist_dir.as_ref().map(|dir| dir.join(".journal"))
    }

    fn build_set(&self, source: &str) -> RrdSet {
        let mut set = match &self.spec {
            Some(factory) => {
                let factory = Arc::clone(factory);
                RrdSet::with_spec_factory(move |key, start| factory(key, start))
            }
            None => RrdSet::new(),
        };
        if let Some(dir) = &self.persist_dir {
            set = set.persist_to(dir.clone());
            if self.journal {
                set = set.journal_to(dir.join(".journal").join(journal_file_name(source)), source);
            }
        }
        set
    }

    /// The shard for `source`, created on first use.
    pub fn shard(&self, source: &str) -> Arc<Mutex<RrdSet>> {
        if let Some(shard) = self.shards.read().get(source) {
            return Arc::clone(shard);
        }
        let mut shards = self.shards.write();
        let shard = shards
            .entry(source.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(self.build_set(source))));
        Arc::clone(shard)
    }

    /// The shard for `source`, if it exists.
    pub fn get(&self, source: &str) -> Option<Arc<Mutex<RrdSet>>> {
        self.shards.read().get(source).map(Arc::clone)
    }

    /// Drop `source`'s shard (expired or removed source), deleting its
    /// journal file with it. Returns the number of archives dropped.
    pub fn remove(&self, source: &str) -> usize {
        match self.shards.write().remove(source) {
            Some(shard) => {
                let mut set = shard.lock();
                let _ = set.discard_journal();
                set.len()
            }
            None => 0,
        }
    }

    /// The shard holding `key`, resolved by the key's source path:
    /// exact match first, then successively shorter `/`-prefixes (a
    /// 1-level monitor archives `ucsd/physics` keys in the `ucsd`
    /// shard).
    pub fn route(&self, key: &MetricKey) -> Option<Arc<Mutex<RrdSet>>> {
        let shards = self.shards.read();
        let mut candidate = key.source.as_str();
        loop {
            if let Some(shard) = shards.get(candidate) {
                return Some(Arc::clone(shard));
            }
            match candidate.rfind('/') {
                Some(cut) => candidate = &candidate[..cut],
                None => return None,
            }
        }
    }

    /// Fetch archived history for one metric, routing by source.
    pub fn fetch(
        &self,
        key: &MetricKey,
        cf: ConsolidationFn,
        start: u64,
        end: u64,
    ) -> Option<Series> {
        self.route(key)?.lock().fetch(key, cf, start, end)?.ok()
    }

    /// Total archives across every shard.
    pub fn archive_count(&self) -> usize {
        self.shards
            .read()
            .values()
            .map(|shard| shard.lock().len())
            .sum()
    }

    /// Total RRD updates across every shard.
    pub fn update_count(&self) -> u64 {
        self.shards
            .read()
            .values()
            .map(|shard| shard.lock().update_count())
            .sum()
    }

    /// Flush every shard to the shared persistence root.
    pub fn flush(&self) -> Result<usize, RrdError> {
        let shards: Vec<Arc<Mutex<RrdSet>>> = self.shards.read().values().map(Arc::clone).collect();
        let mut flushed = 0;
        for shard in shards {
            flushed += shard.lock().flush()?;
        }
        Ok(flushed)
    }

    /// Shards sorted by source name, for deterministic sweeps.
    fn sorted_shards(&self) -> Vec<(String, Arc<Mutex<RrdSet>>)> {
        let mut shards: Vec<(String, Arc<Mutex<RrdSet>>)> = self
            .shards
            .read()
            .iter()
            .map(|(name, shard)| (name.clone(), Arc::clone(shard)))
            .collect();
        shards.sort_by(|a, b| a.0.cmp(&b.0));
        shards
    }

    /// Group-commit every shard's pending journal records. Returns the
    /// total bytes made durable.
    pub fn commit_journals(&self) -> Result<u64, RrdError> {
        let mut bytes = 0;
        for (_, shard) in self.sorted_shards() {
            bytes += shard.lock().commit_journal()?;
        }
        Ok(bytes)
    }

    /// Checkpoint every shard: write all dirty databases atomically,
    /// then truncate each journal. Returns RRD files written.
    pub fn checkpoint(&self, now: u64) -> Result<usize, RrdError> {
        let totals = self.checkpoint_partial(now, usize::MAX)?;
        Ok(totals.files_written)
    }

    /// Checkpoint at most `max_files` dirty databases across shards (in
    /// shard-name then key order). A pass that does not finish a shard
    /// leaves that shard's journal untouched — crash-safe by
    /// construction, and also the fault-injection point the crash sim
    /// uses to model dying mid-checkpoint.
    pub fn checkpoint_partial(
        &self,
        now: u64,
        max_files: usize,
    ) -> Result<CheckpointTotals, RrdError> {
        let mut totals = CheckpointTotals::default();
        let mut budget = max_files;
        for (_, shard) in self.sorted_shards() {
            let mut set = shard.lock();
            if budget > 0 {
                let progress = set.checkpoint_partial(now, budget)?;
                totals.files_written += progress.files_written;
                budget -= progress.files_written.min(budget);
            }
            totals.remaining += set.dirty_count();
        }
        Ok(totals)
    }

    /// Journal status for one shard, if it exists and journals.
    pub fn shard_journal(&self, source: &str) -> Option<ShardJournal> {
        let shard = self.get(source)?;
        let set = shard.lock();
        Some(ShardJournal {
            stats: set.journal_stats()?,
            last_checkpoint_at: set.last_checkpoint_at(),
            dirty: set.dirty_count(),
        })
    }

    /// Aggregate journal accounting across every shard.
    pub fn journal_totals(&self) -> JournalStats {
        let mut totals = JournalStats::default();
        for shard in self.shards.read().values() {
            if let Some(stats) = shard.lock().journal_stats() {
                totals.durable_bytes += stats.durable_bytes;
                totals.pending_bytes += stats.pending_bytes;
                totals.pending_records += stats.pending_records;
                totals.commits += stats.commits;
            }
        }
        totals
    }

    /// Every archived key across every shard.
    pub fn keys(&self) -> Vec<MetricKey> {
        let mut keys = Vec::new();
        for shard in self.shards.read().values() {
            keys.extend(shard.lock().keys().cloned());
        }
        keys.sort();
        keys
    }

    /// Rebuild in-memory state from disk after a restart: load every
    /// checkpointed `.rrd` file, then scan each shard journal (dropping
    /// any torn tail at the first bad CRC) and replay the surviving
    /// records idempotently on top.
    ///
    /// Shards are resurrected from journal headers — each `.wal` file
    /// names its source — so even a shard that crashed before its first
    /// checkpoint comes back. Checkpointed directories are mapped back
    /// to shards by sanitized-name match, with nested (`a/b`) sources
    /// folding into their owning shard.
    pub fn recover(&self) -> Result<ArchiveRecovery, RrdError> {
        let mut report = ArchiveRecovery::default();
        let Some(root) = self.persist_dir.clone() else {
            return Ok(report);
        };

        // 1. Scan journals first: headers name the shards that existed.
        let mut scans: Vec<(String, ganglia_rrd::JournalScan)> = Vec::new();
        if self.journal {
            let journal_dir = root.join(".journal");
            let entries = match std::fs::read_dir(&journal_dir) {
                Ok(entries) => Some(entries),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                Err(e) => return Err(e.into()),
            };
            for entry in entries.into_iter().flatten() {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) != Some("wal") {
                    continue;
                }
                let scan = scan_and_repair(&path)?;
                report.torn_tails += u64::from(scan.torn());
                report.torn_bytes += scan.torn_bytes;
                match &scan.label {
                    Some(label) => {
                        let label = label.clone();
                        self.shard(&label); // resurrect the shard
                        scans.push((label, scan));
                    }
                    None => {
                        // Header unreadable: nothing attributable to
                        // replay. The file stays for manual forensics.
                    }
                }
            }
        }

        // 2. Load checkpointed files, routing each source directory to
        // the shard that owns it.
        let entries = match std::fs::read_dir(&root) {
            Ok(entries) => Some(entries),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        for entry in entries.into_iter().flatten() {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let dir_name = entry.file_name().to_string_lossy().into_owned();
            if dir_name.starts_with('.') {
                continue; // the journal spool, not a source
            }
            let owner = self.owning_shard_label(&dir_name);
            let shard = self.shard(&owner);
            report.loaded += shard.lock().load_source_dir(&entry.path())?;
        }

        // 3. Replay journals on top of the checkpointed baseline.
        for (label, scan) in scans {
            let shard = self.shard(&label);
            let mut set = shard.lock();
            let stats = ganglia_rrd::replay(&mut set, &scan.records);
            set.sync_journal()?;
            report.replayed += stats.applied;
            report.noops += stats.noops;
            report.errors += stats.errors;
        }
        report.shards = self.shards.read().len();
        Ok(report)
    }

    /// Which shard owns the on-disk source directory `dir_name`: the
    /// shard whose sanitized label matches exactly, else (for 1-level
    /// nested sources like `ucsd/phys` → `ucsd_phys`) the longest shard
    /// whose sanitized label is a `_`-joined prefix, else a new shard
    /// named after the directory itself.
    fn owning_shard_label(&self, dir_name: &str) -> String {
        let shards = self.shards.read();
        let mut best: Option<&String> = None;
        for label in shards.keys() {
            let sanitized = ganglia_rrd::sanitize(label);
            if sanitized == dir_name {
                return label.clone();
            }
            if dir_name.starts_with(&format!("{sanitized}_"))
                && best.is_none_or(|b| label.len() > b.len())
            {
                best = Some(label);
            }
        }
        best.cloned().unwrap_or_else(|| dir_name.to_string())
    }
}

/// Archive one freshly-parsed source snapshot. Returns the number of
/// RRD updates applied.
pub fn archive_source(set: &mut RrdSet, state: &SourceState, mode: TreeMode, now: u64) -> u64 {
    let before = set.update_count();
    match &state.data {
        SourceData::Cluster(cluster) => {
            archive_cluster(set, &state.name, cluster, &state.summary, now);
        }
        SourceData::Grid(grid) => match mode {
            TreeMode::NLevel => {
                // Secondary interest only: the authority keeps the detail.
                archive_summary(set, &state.name, &state.summary, now);
            }
            TreeMode::OneLevel => {
                archive_grid_recursive(set, &state.name, grid, now);
            }
        },
    }
    set.update_count() - before
}

fn archive_grid_recursive(set: &mut RrdSet, prefix: &str, grid: &GridNode, now: u64) {
    match &grid.body {
        GridBody::Summary(summary) => archive_summary(set, prefix, summary, now),
        GridBody::Items(items) => {
            archive_summary(set, prefix, &grid.summary(), now);
            for item in items {
                let path = format!("{prefix}/{}", item.name());
                match item {
                    GridItem::Cluster(cluster) => {
                        archive_cluster(set, &path, cluster, &cluster.summary(), now)
                    }
                    GridItem::Grid(inner) => archive_grid_recursive(set, &path, inner, now),
                }
            }
        }
    }
}

fn archive_cluster(
    set: &mut RrdSet,
    source: &str,
    cluster: &ClusterNode,
    summary: &SummaryBody,
    now: u64,
) {
    if let ClusterBody::Hosts(hosts) = &cluster.body {
        for host in hosts {
            for metric in &host.metrics {
                let Some(value) = metric.value.as_f64() else {
                    continue; // non-numeric metrics have no history
                };
                let key = MetricKey::host_metric(source, host.name.as_str(), metric.name.as_str());
                // A down host gets unknown samples: its last-known values
                // must not masquerade as fresh history.
                let sample = if host.is_up() { value } else { f64::NAN };
                let _ = set.update(&key, now, sample);
            }
        }
    }
    archive_summary(set, source, summary, now);
}

fn archive_summary(set: &mut RrdSet, source: &str, summary: &SummaryBody, now: u64) {
    for metric in &summary.metrics {
        let key = MetricKey::summary_metric(source, metric.name.as_str());
        let _ = set.update(&key, now, metric.sum);
    }
}

/// Record explicitly-unknown samples for every archive under `source`
/// (including 1-level nested paths `source/...`). Called while a source
/// is unreachable so its downtime is visible in the history.
pub fn write_unknowns(set: &mut RrdSet, source: &str, now: u64) -> u64 {
    let nested_prefix = format!("{source}/");
    let keys: Vec<MetricKey> = set
        .keys()
        .filter(|k| k.source == source || k.source.starts_with(&nested_prefix))
        .cloned()
        .collect();
    let before = set.update_count();
    for key in &keys {
        let _ = set.update(key, now, f64::NAN);
    }
    set.update_count() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SourceState;
    use ganglia_metrics::model::{HostNode, MetricEntry};
    use ganglia_metrics::MetricValue;
    use ganglia_rrd::ConsolidationFn;

    fn cluster_with(hosts: usize) -> ClusterNode {
        let hosts: Vec<HostNode> = (0..hosts)
            .map(|i| {
                let mut h = HostNode::new(format!("n{i}"), "10.0.0.1");
                h.metrics
                    .push(MetricEntry::new("load_one", MetricValue::Double(1.0)));
                h.metrics.push(MetricEntry::new(
                    "os_name",
                    MetricValue::String("Linux".into()),
                ));
                h
            })
            .collect();
        ClusterNode::with_hosts("meteor", hosts)
    }

    fn state_of(cluster: ClusterNode, now: u64) -> SourceState {
        let summary = cluster.summary();
        SourceState::cluster("meteor", cluster, summary, now)
    }

    #[test]
    fn cluster_archives_hosts_and_summary_not_strings() {
        let mut set = RrdSet::new();
        let state = state_of(cluster_with(3), 15);
        let updates = archive_source(&mut set, &state, TreeMode::NLevel, 15);
        // 3 hosts × 1 numeric metric + 1 summary metric.
        assert_eq!(updates, 4);
        assert!(set
            .get(&MetricKey::host_metric("meteor", "n0", "load_one"))
            .is_some());
        assert!(set
            .get(&MetricKey::host_metric("meteor", "n0", "os_name"))
            .is_none());
        assert!(set
            .get(&MetricKey::summary_metric("meteor", "load_one"))
            .is_some());
    }

    #[test]
    fn nlevel_grid_archives_summaries_only() {
        let mut set = RrdSet::new();
        let grid = GridNode {
            name: "attic".into(),
            authority: String::new(),
            localtime: None,
            body: GridBody::Summary(SummaryBody {
                hosts_up: 10,
                hosts_down: 0,
                metrics: vec![ganglia_metrics::MetricSummary {
                    name: "load_one".into(),
                    sum: 17.56,
                    num: 10,
                    ty: ganglia_metrics::MetricType::Float,
                    units: Default::default(),
                    slope: ganglia_metrics::Slope::Both,
                    source: "gmond".into(),
                }],
            }),
        };
        let summary = grid.summary();
        let state = SourceState::grid("attic", grid, summary, 15);
        let updates = archive_source(&mut set, &state, TreeMode::NLevel, 15);
        assert_eq!(updates, 1);
        assert_eq!(set.len(), 1);
        assert!(set.keys().all(|k| k.is_summary()));
    }

    #[test]
    fn onelevel_grid_archives_every_nested_host() {
        let mut set = RrdSet::new();
        // A grid holding two clusters of 2 hosts each, fully expanded.
        let grid = GridNode::with_items(
            "ucsd",
            vec![
                GridItem::Cluster({
                    let mut c = cluster_with(2);
                    c.name = "physics-cluster".into();
                    c
                }),
                GridItem::Cluster({
                    let mut c = cluster_with(2);
                    c.name = "math-cluster".into();
                    c
                }),
            ],
        );
        let summary = grid.summary();
        let state = SourceState::grid("ucsd", grid, summary, 15);
        let updates = archive_source(&mut set, &state, TreeMode::OneLevel, 15);
        // 4 host metrics + 2 cluster summaries + 1 grid summary.
        assert_eq!(updates, 7);
        assert!(set
            .get(&MetricKey::host_metric(
                "ucsd/physics-cluster",
                "n0",
                "load_one"
            ))
            .is_some());
        assert!(set
            .get(&MetricKey::summary_metric("ucsd", "load_one"))
            .is_some());
    }

    #[test]
    fn down_hosts_get_unknown_samples() {
        let mut set = RrdSet::new();
        let mut cluster = cluster_with(2);
        if let ClusterBody::Hosts(hosts) = &mut cluster.body {
            std::sync::Arc::make_mut(&mut hosts[0]).tn = 10_000; // down
        }
        let state = state_of(cluster, 15);
        archive_source(&mut set, &state, TreeMode::NLevel, 15);
        // Advance and archive again so a PDP completes.
        let state2 = SourceState {
            updated_at: 30,
            ..state.clone()
        };
        archive_source(&mut set, &state2, TreeMode::NLevel, 30);
        let down = set
            .fetch(
                &MetricKey::host_metric("meteor", "n0", "load_one"),
                ConsolidationFn::Average,
                0,
                30,
            )
            .unwrap()
            .unwrap();
        assert_eq!(down.known_count(), 0, "down host history is unknown");
        let up = set
            .fetch(
                &MetricKey::host_metric("meteor", "n1", "load_one"),
                ConsolidationFn::Average,
                0,
                30,
            )
            .unwrap()
            .unwrap();
        assert!(up.known_count() > 0);
    }

    #[test]
    fn shards_route_by_source_and_nested_prefix() {
        let shards = ArchiveShards::new(None, None);
        shards
            .shard("ucsd")
            .lock()
            .update(&MetricKey::host_metric("ucsd/phys", "n0", "m"), 15, 1.0)
            .unwrap();
        shards
            .shard("meteor")
            .lock()
            .update(&MetricKey::summary_metric("meteor", "m"), 15, 2.0)
            .unwrap();
        // Exact source match.
        assert!(shards
            .route(&MetricKey::summary_metric("meteor", "m"))
            .is_some());
        // Nested 1-level path falls back to the owning source's shard.
        let routed = shards
            .route(&MetricKey::host_metric("ucsd/phys", "n0", "m"))
            .expect("prefix route");
        assert_eq!(routed.lock().len(), 1);
        assert!(shards
            .fetch(
                &MetricKey::host_metric("ucsd/phys", "n0", "m"),
                ConsolidationFn::Average,
                0,
                30
            )
            .is_some());
        assert!(shards
            .route(&MetricKey::summary_metric("ghost", "m"))
            .is_none());
        assert_eq!(shards.archive_count(), 2);
        assert_eq!(shards.update_count(), 2);
        // Dropping a shard drops its archives from the totals.
        assert_eq!(shards.remove("ucsd"), 1);
        assert_eq!(shards.remove("ucsd"), 0);
        assert_eq!(shards.archive_count(), 1);
    }

    #[test]
    fn shards_share_one_persistence_root() {
        let dir = std::env::temp_dir().join(format!("shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shards = ArchiveShards::new(None, Some(dir.clone()));
        shards
            .shard("meteor")
            .lock()
            .update(&MetricKey::host_metric("meteor", "n0", "load_one"), 15, 1.0)
            .unwrap();
        shards
            .shard("sdsc")
            .lock()
            .update(&MetricKey::summary_metric("sdsc", "load_one"), 15, 2.0)
            .unwrap();
        assert_eq!(shards.flush().unwrap(), 2);
        // One directory tree, same layout a single RrdSet would write.
        let mut restored = RrdSet::new().persist_to(&dir);
        assert_eq!(restored.load_all().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_unknowns_covers_nested_paths() {
        let mut set = RrdSet::new();
        set.update(&MetricKey::host_metric("ucsd/phys", "n0", "m"), 15, 1.0)
            .unwrap();
        set.update(&MetricKey::summary_metric("ucsd", "m"), 15, 1.0)
            .unwrap();
        set.update(&MetricKey::host_metric("other", "n0", "m"), 15, 1.0)
            .unwrap();
        let written = write_unknowns(&mut set, "ucsd", 30);
        assert_eq!(written, 2, "both ucsd archives, not `other`");
        // `ucsdX` must not match the `ucsd` prefix.
        set.update(&MetricKey::host_metric("ucsdX", "n0", "m"), 15, 1.0)
            .unwrap();
        assert_eq!(write_unknowns(&mut set, "ucsd", 45), 2);
    }
}
