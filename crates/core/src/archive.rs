//! Metric archiving policy.
//!
//! What gets archived is *the* difference between the two designs
//! (paper §4.3): the 1-level monitor keeps full per-host archives for
//! every cluster in its subtree ("every monitor between a cluster and
//! the root will keep identical metric archives for that cluster",
//! §2.1), while the N-level monitor keeps full archives only for its
//! local clusters and "only summary archives of descendants".
//!
//! During downtime the archiver records explicitly-unknown samples — the
//! "zero record" that aids "time-of-death forensic analysis" (§3.1).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use ganglia_metrics::model::{ClusterBody, ClusterNode, GridBody, GridItem, GridNode, SummaryBody};
use ganglia_rrd::{ConsolidationFn, MetricKey, RrdError, RrdSet, Series};
use parking_lot::{Mutex, RwLock};

use crate::config::TreeMode;
use crate::store::{SourceData, SourceState};

/// Shared factory for the RRD spec of newly created archives.
pub type ArchiveSpecFactory = Arc<dyn Fn(&MetricKey, u64) -> ganglia_rrd::RrdSpec + Send + Sync>;

/// Per-source archive storage: one independently-locked [`RrdSet`] per
/// data source, so parallel poll workers archive concurrently instead
/// of contending on one global archiver lock.
///
/// All shards share one persistence root — an `RrdSet` writes one file
/// per metric key under source-derived relative paths, so the on-disk
/// layout is byte-identical to the old single-set archiver and existing
/// directories reload fine.
pub struct ArchiveShards {
    shards: RwLock<HashMap<String, Arc<Mutex<RrdSet>>>>,
    spec: Option<ArchiveSpecFactory>,
    persist_dir: Option<PathBuf>,
}

impl ArchiveShards {
    /// Empty shard map; `spec` customizes new archives (experiments use
    /// compact ones), `persist_dir` is the shared flush root.
    pub fn new(spec: Option<ArchiveSpecFactory>, persist_dir: Option<PathBuf>) -> ArchiveShards {
        ArchiveShards {
            shards: RwLock::new(HashMap::new()),
            spec,
            persist_dir,
        }
    }

    fn build_set(&self) -> RrdSet {
        let mut set = match &self.spec {
            Some(factory) => {
                let factory = Arc::clone(factory);
                RrdSet::with_spec_factory(move |key, start| factory(key, start))
            }
            None => RrdSet::new(),
        };
        if let Some(dir) = &self.persist_dir {
            set = set.persist_to(dir.clone());
        }
        set
    }

    /// The shard for `source`, created on first use.
    pub fn shard(&self, source: &str) -> Arc<Mutex<RrdSet>> {
        if let Some(shard) = self.shards.read().get(source) {
            return Arc::clone(shard);
        }
        let mut shards = self.shards.write();
        let shard = shards
            .entry(source.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(self.build_set())));
        Arc::clone(shard)
    }

    /// The shard for `source`, if it exists.
    pub fn get(&self, source: &str) -> Option<Arc<Mutex<RrdSet>>> {
        self.shards.read().get(source).map(Arc::clone)
    }

    /// Drop `source`'s shard (expired or removed source). Returns the
    /// number of archives dropped with it.
    pub fn remove(&self, source: &str) -> usize {
        match self.shards.write().remove(source) {
            Some(shard) => shard.lock().len(),
            None => 0,
        }
    }

    /// The shard holding `key`, resolved by the key's source path:
    /// exact match first, then successively shorter `/`-prefixes (a
    /// 1-level monitor archives `ucsd/physics` keys in the `ucsd`
    /// shard).
    pub fn route(&self, key: &MetricKey) -> Option<Arc<Mutex<RrdSet>>> {
        let shards = self.shards.read();
        let mut candidate = key.source.as_str();
        loop {
            if let Some(shard) = shards.get(candidate) {
                return Some(Arc::clone(shard));
            }
            match candidate.rfind('/') {
                Some(cut) => candidate = &candidate[..cut],
                None => return None,
            }
        }
    }

    /// Fetch archived history for one metric, routing by source.
    pub fn fetch(
        &self,
        key: &MetricKey,
        cf: ConsolidationFn,
        start: u64,
        end: u64,
    ) -> Option<Series> {
        self.route(key)?.lock().fetch(key, cf, start, end)?.ok()
    }

    /// Total archives across every shard.
    pub fn archive_count(&self) -> usize {
        self.shards
            .read()
            .values()
            .map(|shard| shard.lock().len())
            .sum()
    }

    /// Total RRD updates across every shard.
    pub fn update_count(&self) -> u64 {
        self.shards
            .read()
            .values()
            .map(|shard| shard.lock().update_count())
            .sum()
    }

    /// Flush every shard to the shared persistence root.
    pub fn flush(&self) -> Result<usize, RrdError> {
        let shards: Vec<Arc<Mutex<RrdSet>>> = self.shards.read().values().map(Arc::clone).collect();
        let mut flushed = 0;
        for shard in shards {
            flushed += shard.lock().flush()?;
        }
        Ok(flushed)
    }
}

/// Archive one freshly-parsed source snapshot. Returns the number of
/// RRD updates applied.
pub fn archive_source(set: &mut RrdSet, state: &SourceState, mode: TreeMode, now: u64) -> u64 {
    let before = set.update_count();
    match &state.data {
        SourceData::Cluster(cluster) => {
            archive_cluster(set, &state.name, cluster, &state.summary, now);
        }
        SourceData::Grid(grid) => match mode {
            TreeMode::NLevel => {
                // Secondary interest only: the authority keeps the detail.
                archive_summary(set, &state.name, &state.summary, now);
            }
            TreeMode::OneLevel => {
                archive_grid_recursive(set, &state.name, grid, now);
            }
        },
    }
    set.update_count() - before
}

fn archive_grid_recursive(set: &mut RrdSet, prefix: &str, grid: &GridNode, now: u64) {
    match &grid.body {
        GridBody::Summary(summary) => archive_summary(set, prefix, summary, now),
        GridBody::Items(items) => {
            archive_summary(set, prefix, &grid.summary(), now);
            for item in items {
                let path = format!("{prefix}/{}", item.name());
                match item {
                    GridItem::Cluster(cluster) => {
                        archive_cluster(set, &path, cluster, &cluster.summary(), now)
                    }
                    GridItem::Grid(inner) => archive_grid_recursive(set, &path, inner, now),
                }
            }
        }
    }
}

fn archive_cluster(
    set: &mut RrdSet,
    source: &str,
    cluster: &ClusterNode,
    summary: &SummaryBody,
    now: u64,
) {
    if let ClusterBody::Hosts(hosts) = &cluster.body {
        for host in hosts {
            for metric in &host.metrics {
                let Some(value) = metric.value.as_f64() else {
                    continue; // non-numeric metrics have no history
                };
                let key = MetricKey::host_metric(source, host.name.as_str(), metric.name.as_str());
                // A down host gets unknown samples: its last-known values
                // must not masquerade as fresh history.
                let sample = if host.is_up() { value } else { f64::NAN };
                let _ = set.update(&key, now, sample);
            }
        }
    }
    archive_summary(set, source, summary, now);
}

fn archive_summary(set: &mut RrdSet, source: &str, summary: &SummaryBody, now: u64) {
    for metric in &summary.metrics {
        let key = MetricKey::summary_metric(source, metric.name.as_str());
        let _ = set.update(&key, now, metric.sum);
    }
}

/// Record explicitly-unknown samples for every archive under `source`
/// (including 1-level nested paths `source/...`). Called while a source
/// is unreachable so its downtime is visible in the history.
pub fn write_unknowns(set: &mut RrdSet, source: &str, now: u64) -> u64 {
    let nested_prefix = format!("{source}/");
    let keys: Vec<MetricKey> = set
        .keys()
        .filter(|k| k.source == source || k.source.starts_with(&nested_prefix))
        .cloned()
        .collect();
    let before = set.update_count();
    for key in &keys {
        let _ = set.update(key, now, f64::NAN);
    }
    set.update_count() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SourceState;
    use ganglia_metrics::model::{HostNode, MetricEntry};
    use ganglia_metrics::MetricValue;
    use ganglia_rrd::ConsolidationFn;

    fn cluster_with(hosts: usize) -> ClusterNode {
        let hosts: Vec<HostNode> = (0..hosts)
            .map(|i| {
                let mut h = HostNode::new(format!("n{i}"), "10.0.0.1");
                h.metrics
                    .push(MetricEntry::new("load_one", MetricValue::Double(1.0)));
                h.metrics.push(MetricEntry::new(
                    "os_name",
                    MetricValue::String("Linux".into()),
                ));
                h
            })
            .collect();
        ClusterNode::with_hosts("meteor", hosts)
    }

    fn state_of(cluster: ClusterNode, now: u64) -> SourceState {
        let summary = cluster.summary();
        SourceState::cluster("meteor", cluster, summary, now)
    }

    #[test]
    fn cluster_archives_hosts_and_summary_not_strings() {
        let mut set = RrdSet::new();
        let state = state_of(cluster_with(3), 15);
        let updates = archive_source(&mut set, &state, TreeMode::NLevel, 15);
        // 3 hosts × 1 numeric metric + 1 summary metric.
        assert_eq!(updates, 4);
        assert!(set
            .get(&MetricKey::host_metric("meteor", "n0", "load_one"))
            .is_some());
        assert!(set
            .get(&MetricKey::host_metric("meteor", "n0", "os_name"))
            .is_none());
        assert!(set
            .get(&MetricKey::summary_metric("meteor", "load_one"))
            .is_some());
    }

    #[test]
    fn nlevel_grid_archives_summaries_only() {
        let mut set = RrdSet::new();
        let grid = GridNode {
            name: "attic".into(),
            authority: String::new(),
            localtime: 0,
            body: GridBody::Summary(SummaryBody {
                hosts_up: 10,
                hosts_down: 0,
                metrics: vec![ganglia_metrics::MetricSummary {
                    name: "load_one".into(),
                    sum: 17.56,
                    num: 10,
                    ty: ganglia_metrics::MetricType::Float,
                    units: Default::default(),
                    slope: ganglia_metrics::Slope::Both,
                    source: "gmond".into(),
                }],
            }),
        };
        let summary = grid.summary();
        let state = SourceState::grid("attic", grid, summary, 15);
        let updates = archive_source(&mut set, &state, TreeMode::NLevel, 15);
        assert_eq!(updates, 1);
        assert_eq!(set.len(), 1);
        assert!(set.keys().all(|k| k.is_summary()));
    }

    #[test]
    fn onelevel_grid_archives_every_nested_host() {
        let mut set = RrdSet::new();
        // A grid holding two clusters of 2 hosts each, fully expanded.
        let grid = GridNode::with_items(
            "ucsd",
            vec![
                GridItem::Cluster({
                    let mut c = cluster_with(2);
                    c.name = "physics-cluster".into();
                    c
                }),
                GridItem::Cluster({
                    let mut c = cluster_with(2);
                    c.name = "math-cluster".into();
                    c
                }),
            ],
        );
        let summary = grid.summary();
        let state = SourceState::grid("ucsd", grid, summary, 15);
        let updates = archive_source(&mut set, &state, TreeMode::OneLevel, 15);
        // 4 host metrics + 2 cluster summaries + 1 grid summary.
        assert_eq!(updates, 7);
        assert!(set
            .get(&MetricKey::host_metric(
                "ucsd/physics-cluster",
                "n0",
                "load_one"
            ))
            .is_some());
        assert!(set
            .get(&MetricKey::summary_metric("ucsd", "load_one"))
            .is_some());
    }

    #[test]
    fn down_hosts_get_unknown_samples() {
        let mut set = RrdSet::new();
        let mut cluster = cluster_with(2);
        if let ClusterBody::Hosts(hosts) = &mut cluster.body {
            std::sync::Arc::make_mut(&mut hosts[0]).tn = 10_000; // down
        }
        let state = state_of(cluster, 15);
        archive_source(&mut set, &state, TreeMode::NLevel, 15);
        // Advance and archive again so a PDP completes.
        let state2 = SourceState {
            updated_at: 30,
            ..state.clone()
        };
        archive_source(&mut set, &state2, TreeMode::NLevel, 30);
        let down = set
            .fetch(
                &MetricKey::host_metric("meteor", "n0", "load_one"),
                ConsolidationFn::Average,
                0,
                30,
            )
            .unwrap()
            .unwrap();
        assert_eq!(down.known_count(), 0, "down host history is unknown");
        let up = set
            .fetch(
                &MetricKey::host_metric("meteor", "n1", "load_one"),
                ConsolidationFn::Average,
                0,
                30,
            )
            .unwrap()
            .unwrap();
        assert!(up.known_count() > 0);
    }

    #[test]
    fn shards_route_by_source_and_nested_prefix() {
        let shards = ArchiveShards::new(None, None);
        shards
            .shard("ucsd")
            .lock()
            .update(&MetricKey::host_metric("ucsd/phys", "n0", "m"), 15, 1.0)
            .unwrap();
        shards
            .shard("meteor")
            .lock()
            .update(&MetricKey::summary_metric("meteor", "m"), 15, 2.0)
            .unwrap();
        // Exact source match.
        assert!(shards
            .route(&MetricKey::summary_metric("meteor", "m"))
            .is_some());
        // Nested 1-level path falls back to the owning source's shard.
        let routed = shards
            .route(&MetricKey::host_metric("ucsd/phys", "n0", "m"))
            .expect("prefix route");
        assert_eq!(routed.lock().len(), 1);
        assert!(shards
            .fetch(
                &MetricKey::host_metric("ucsd/phys", "n0", "m"),
                ConsolidationFn::Average,
                0,
                30
            )
            .is_some());
        assert!(shards
            .route(&MetricKey::summary_metric("ghost", "m"))
            .is_none());
        assert_eq!(shards.archive_count(), 2);
        assert_eq!(shards.update_count(), 2);
        // Dropping a shard drops its archives from the totals.
        assert_eq!(shards.remove("ucsd"), 1);
        assert_eq!(shards.remove("ucsd"), 0);
        assert_eq!(shards.archive_count(), 1);
    }

    #[test]
    fn shards_share_one_persistence_root() {
        let dir = std::env::temp_dir().join(format!("shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shards = ArchiveShards::new(None, Some(dir.clone()));
        shards
            .shard("meteor")
            .lock()
            .update(&MetricKey::host_metric("meteor", "n0", "load_one"), 15, 1.0)
            .unwrap();
        shards
            .shard("sdsc")
            .lock()
            .update(&MetricKey::summary_metric("sdsc", "load_one"), 15, 2.0)
            .unwrap();
        assert_eq!(shards.flush().unwrap(), 2);
        // One directory tree, same layout a single RrdSet would write.
        let mut restored = RrdSet::new().persist_to(&dir);
        assert_eq!(restored.load_all().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_unknowns_covers_nested_paths() {
        let mut set = RrdSet::new();
        set.update(&MetricKey::host_metric("ucsd/phys", "n0", "m"), 15, 1.0)
            .unwrap();
        set.update(&MetricKey::summary_metric("ucsd", "m"), 15, 1.0)
            .unwrap();
        set.update(&MetricKey::host_metric("other", "n0", "m"), 15, 1.0)
            .unwrap();
        let written = write_unknowns(&mut set, "ucsd", 30);
        assert_eq!(written, 2, "both ucsd archives, not `other`");
        // `ucsdX` must not match the `ucsd` prefix.
        set.update(&MetricKey::host_metric("ucsdX", "n0", "m"), 15, 1.0)
            .unwrap();
        assert_eq!(write_unknowns(&mut set, "ucsd", 45), 2);
    }
}
