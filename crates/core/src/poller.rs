//! Per-source polling with fail-over and endpoint circuit breaking.
//!
//! Each data source lists several redundant endpoints (any gmon node can
//! serve the whole cluster). The poller tries them in order starting at
//! the last one that worked: a stop failure moves on immediately, and a
//! completely unreachable source is retried "at a steady frequency,
//! ensuring that failures do not cause permanent fissures in the
//! monitoring tree" (paper §2.1) — every poll round still probes at
//! least one endpoint, forever.
//!
//! What the steady retry no longer does is hammer: each endpoint carries
//! an [`EndpointHealth`] circuit breaker, and once an endpoint has
//! failed [`RetryPolicy::breaker_threshold`] times in a row it is only
//! probed on a capped exponential-backoff schedule. A round in which
//! every breaker is open degenerates to exactly one probe — the
//! endpoint whose breaker re-closes soonest — instead of one
//! timeout-costing attempt per redundant address.

use std::time::{Duration, Instant};

use ganglia_metrics::model::{GridBody, GridNode, SummaryBody};
use ganglia_metrics::{parse_document, GridItem};
use ganglia_net::transport::Transport;
use ganglia_net::NetError;

use crate::config::{DataSourceCfg, TreeMode};
use crate::error::GmetadError;
use crate::health::{endpoint_seed, BreakerState, EndpointHealth, RetryPolicy};
use crate::instrument::{WorkCategory, WorkMeter};
use crate::store::SourceState;

/// Polling state for one data source.
#[derive(Debug)]
pub struct SourcePoller {
    cfg: DataSourceCfg,
    /// Index of the endpoint that served the last successful poll.
    cursor: usize,
    /// Per-endpoint health, parallel to `cfg.addrs`.
    health: Vec<EndpointHealth>,
    /// Consecutive fully-failed rounds.
    pub consecutive_failures: u32,
    /// Lifetime counters.
    pub polls_ok: u64,
    pub polls_failed: u64,
    pub failovers: u64,
}

impl SourcePoller {
    /// A poller for one configured source. [`DataSourceCfg::new`]
    /// guarantees a non-empty address list.
    pub fn new(cfg: DataSourceCfg) -> SourcePoller {
        let health = cfg
            .addrs
            .iter()
            .map(|addr| EndpointHealth::new(endpoint_seed(addr.as_str())))
            .collect();
        SourcePoller {
            cfg,
            cursor: 0,
            health,
            consecutive_failures: 0,
            polls_ok: 0,
            polls_failed: 0,
            failovers: 0,
        }
    }

    /// The source configuration.
    pub fn cfg(&self) -> &DataSourceCfg {
        &self.cfg
    }

    /// The endpoint currently preferred.
    pub fn current_addr(&self) -> &ganglia_net::Addr {
        &self.cfg.addrs[self.cursor]
    }

    /// Health records, parallel to `cfg().addrs`.
    pub fn endpoint_health(&self) -> &[EndpointHealth] {
        &self.health
    }

    /// Breaker state of the currently preferred endpoint.
    pub fn current_breaker(&self) -> BreakerState {
        self.health[self.cursor].breaker
    }

    /// One poll round: fetch (with fail-over and circuit breaking),
    /// parse, and build the new snapshot. On total failure every
    /// attempted endpoint's error is reported.
    pub fn poll(
        &mut self,
        transport: &dyn Transport,
        mode: TreeMode,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
    ) -> Result<SourceState, GmetadError> {
        let registry = std::sync::Arc::clone(meter.registry());
        let fetch_start = Instant::now();
        let (served_by, xml) =
            match self.fetch_with_failover(transport, timeout, policy, meter, now) {
                Ok(served) => served,
                Err(errors) => {
                    self.polls_failed += 1;
                    self.consecutive_failures += 1;
                    registry.counter("polls_failed_total").inc();
                    return Err(GmetadError::AllHostsFailed {
                        source: self.cfg.name.clone(),
                        errors,
                    });
                }
            };
        // Per-source telemetry alongside the category-wide accounting:
        // fetch latency, bytes on the wire, parse latency.
        let name = &self.cfg.name;
        registry
            .histogram(&format!("source.{name}.fetch_us"))
            .record_duration(fetch_start.elapsed());
        registry.counter("bytes_in_total").add(xml.len() as u64);
        registry
            .counter(&format!("source.{name}.bytes_in_total"))
            .add(xml.len() as u64);
        let parse_start = Instant::now();
        let doc = match meter.time(WorkCategory::Parse, || parse_document(&xml)) {
            Ok(doc) => doc,
            Err(error) => {
                // A garbage or truncated report counts against the
                // endpoint that served it: enough of them in a row and
                // its breaker opens, failing the source over.
                self.record_failure_counting_transitions(served_by, now, policy, meter);
                self.polls_failed += 1;
                self.consecutive_failures += 1;
                registry.counter("polls_failed_total").inc();
                registry.counter("parse_errors_total").inc();
                return Err(GmetadError::BadReport {
                    source: self.cfg.name.clone(),
                    error,
                });
            }
        };
        registry
            .histogram(&format!("source.{}.parse_us", self.cfg.name))
            .record_duration(parse_start.elapsed());
        self.health[served_by].record_success(now);
        self.polls_ok += 1;
        self.consecutive_failures = 0;
        registry.counter("polls_ok_total").inc();
        Ok(build_state(&self.cfg.name, doc, mode, meter, now))
    }

    fn fetch_with_failover(
        &mut self,
        transport: &dyn Transport,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
    ) -> Result<(usize, String), Vec<NetError>> {
        let addr_count = self.cfg.addrs.len();
        let mut errors = Vec::new();
        let mut attempted = false;
        for attempt in 0..addr_count {
            let idx = (self.cursor + attempt) % addr_count;
            if !self.health[idx].allows_attempt(now) {
                continue;
            }
            attempted = true;
            match self.try_endpoint(idx, transport, timeout, policy, meter, now) {
                Ok(xml) => {
                    if attempt > 0 {
                        self.failovers += 1;
                        self.cursor = idx; // stick with the node that works
                    }
                    return Ok((idx, xml));
                }
                Err(e) => errors.push(e),
            }
        }
        if !attempted {
            // Every breaker is open. The paper's steady-retry guarantee
            // (§2.1) still holds: probe the one endpoint whose breaker
            // re-closes soonest, so a healed source is rediscovered
            // within one poll round of its deadline — and a dead one
            // costs a single timeout per round, not one per address.
            let idx = (0..addr_count)
                .min_by_key(|&i| (self.health[i].next_probe_at(now), i))
                .expect("validated cfg has at least one address");
            match self.try_endpoint(idx, transport, timeout, policy, meter, now) {
                Ok(xml) => {
                    if idx != self.cursor {
                        self.failovers += 1;
                        self.cursor = idx;
                    }
                    return Ok((idx, xml));
                }
                Err(e) => errors.push(e),
            }
        }
        Err(errors)
    }

    /// One exchange with one endpoint, updating its health record.
    fn try_endpoint(
        &mut self,
        idx: usize,
        transport: &dyn Transport,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
    ) -> Result<String, NetError> {
        self.health[idx].begin_attempt(now);
        let addr = &self.cfg.addrs[idx];
        let result = meter.time(WorkCategory::Fetch, || transport.fetch(addr, "/", timeout));
        match &result {
            // Success is recorded only after the report parses (see
            // `poll`); a fetch that returns garbage must not close the
            // breaker.
            Ok(_) => {}
            Err(_) => self.record_failure_counting_transitions(idx, now, policy, meter),
        }
        result
    }

    /// Record an endpoint failure, counting closed→open breaker
    /// transitions into the telemetry registry.
    fn record_failure_counting_transitions(
        &mut self,
        idx: usize,
        now: u64,
        policy: &RetryPolicy,
        meter: &WorkMeter,
    ) {
        let was_open = matches!(self.health[idx].breaker, BreakerState::Open { .. });
        self.health[idx].record_failure(now, policy);
        if !was_open && matches!(self.health[idx].breaker, BreakerState::Open { .. }) {
            let registry = meter.registry();
            registry.counter("breaker_opens_total").inc();
            registry
                .counter(&format!("source.{}.breaker_opens_total", self.cfg.name))
                .inc();
        }
    }
}

/// Turn a parsed child report into this gmetad's stored snapshot.
///
/// * A gmond report (one `CLUSTER`) is a **local** cluster: kept at full
///   detail — this gmetad is its authority.
/// * A gmetad report (a `GRID`) is a **remote** grid: "Gmeta only keeps
///   numerical summaries of data from clusters it is not an authority
///   on" (§3.2) under the N-level design; the 1-level design keeps the
///   whole expansion.
pub fn build_state(
    source_name: &str,
    doc: ganglia_metrics::GangliaDoc,
    mode: TreeMode,
    meter: &WorkMeter,
    now: u64,
) -> SourceState {
    // A well-formed child report carries exactly one top-level item; a
    // report with several (nonstandard) is wrapped in a synthetic grid.
    let item = if doc.items.len() == 1 {
        doc.items.into_iter().next().expect("len checked")
    } else {
        GridItem::Grid(GridNode::with_items(source_name.to_string(), doc.items))
    };
    match item {
        GridItem::Cluster(cluster) => {
            let summary = meter.time(WorkCategory::Summarize, || cluster.summary());
            SourceState::cluster(source_name, cluster, summary, now)
        }
        GridItem::Grid(grid) => {
            let summary = meter.time(WorkCategory::Summarize, || grid.summary());
            let stored = match mode {
                TreeMode::NLevel => GridNode {
                    name: grid.name,
                    authority: grid.authority,
                    localtime: grid.localtime,
                    body: GridBody::Summary(summary.clone()),
                },
                TreeMode::OneLevel => grid,
            };
            SourceState::grid(source_name, stored, summary, now)
        }
    }
}

/// Convenience for tests: an empty summary.
pub fn empty_summary() -> SummaryBody {
    SummaryBody::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SourceData;
    use ganglia_net::{Addr, SimNet};
    use std::sync::Arc as StdArc;

    const TIMEOUT: Duration = Duration::from_millis(100);

    fn cluster_xml(name: &str, hosts: usize) -> String {
        let mut xml = format!("<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmond\"><CLUSTER NAME=\"{name}\" LOCALTIME=\"10\">");
        for i in 0..hosts {
            xml.push_str(&format!(
                "<HOST NAME=\"n{i}\" IP=\"1.1.1.{i}\" REPORTED=\"10\" TN=\"1\" TMAX=\"20\" DMAX=\"0\">\
                 <METRIC NAME=\"load_one\" VAL=\"0.5\" TYPE=\"float\" SLOPE=\"both\"/></HOST>"
            ));
        }
        xml.push_str("</CLUSTER></GANGLIA_XML>");
        xml
    }

    fn serve_static(
        net: &StdArc<SimNet>,
        addr: &str,
        body: String,
    ) -> Box<dyn ganglia_net::ServerGuard> {
        net.serve(&Addr::new(addr), StdArc::new(move |_: &str| body.clone()))
            .unwrap()
    }

    #[test]
    fn poll_parses_cluster_source() {
        let net = SimNet::new(1);
        let _g = serve_static(&net, "meteor/n0", cluster_xml("meteor", 3));
        let meter = WorkMeter::new();
        let mut poller =
            SourcePoller::new(DataSourceCfg::new("meteor", vec![Addr::new("meteor/n0")]).unwrap());
        let state = poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                100,
            )
            .unwrap();
        assert_eq!(state.host_count(), 3);
        assert!(matches!(state.data, SourceData::Cluster(_)));
        assert_eq!(state.summary.hosts_up, 3);
        assert_eq!(poller.polls_ok, 1);
        assert!(meter.busy(WorkCategory::Parse) > Duration::ZERO);
        assert!(meter.busy(WorkCategory::Fetch) > Duration::ZERO);
    }

    #[test]
    fn failover_tries_addresses_in_order_and_sticks() {
        let net = SimNet::new(1);
        let _g0 = serve_static(&net, "meteor/n0", cluster_xml("meteor", 1));
        let _g1 = serve_static(&net, "meteor/n1", cluster_xml("meteor", 1));
        net.set_down(&Addr::new("meteor/n0"), true);
        let meter = WorkMeter::new();
        let mut poller = SourcePoller::new(
            DataSourceCfg::new(
                "meteor",
                vec![Addr::new("meteor/n0"), Addr::new("meteor/n1")],
            )
            .unwrap(),
        );
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
            )
            .unwrap();
        assert_eq!(poller.failovers, 1);
        assert_eq!(poller.current_addr(), &Addr::new("meteor/n1"));
        // Next poll goes straight to n1 (no extra failover).
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                20,
            )
            .unwrap();
        assert_eq!(poller.failovers, 1);
        // When n0 recovers, the poller keeps using n1 until it fails.
        net.set_down(&Addr::new("meteor/n0"), false);
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                30,
            )
            .unwrap();
        assert_eq!(poller.current_addr(), &Addr::new("meteor/n1"));
    }

    #[test]
    fn total_failure_reports_all_errors_and_recovers() {
        let net = SimNet::new(1);
        let _g0 = serve_static(&net, "meteor/n0", cluster_xml("meteor", 1));
        let _g1 = serve_static(&net, "meteor/n1", cluster_xml("meteor", 1));
        net.partition_prefix("meteor", true);
        let meter = WorkMeter::new();
        let mut poller = SourcePoller::new(
            DataSourceCfg::new(
                "meteor",
                vec![Addr::new("meteor/n0"), Addr::new("meteor/n1")],
            )
            .unwrap(),
        );
        for round in 1..=3u64 {
            let err = poller
                .poll(
                    &net,
                    TreeMode::NLevel,
                    TIMEOUT,
                    &RetryPolicy::default(),
                    &meter,
                    round * 15,
                )
                .unwrap_err();
            match err {
                GmetadError::AllHostsFailed { source, errors } => {
                    assert_eq!(source, "meteor");
                    assert_eq!(errors.len(), 2);
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(poller.consecutive_failures, 3);
        // Steady retry: the partition heals and the next round succeeds.
        net.partition_prefix("meteor", false);
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                60,
            )
            .unwrap();
        assert_eq!(poller.consecutive_failures, 0);
    }

    #[test]
    fn bad_xml_is_a_bad_report() {
        let net = SimNet::new(1);
        let _g = serve_static(&net, "meteor/n0", "<BOGUS".to_string());
        let meter = WorkMeter::new();
        let mut poller =
            SourcePoller::new(DataSourceCfg::new("meteor", vec![Addr::new("meteor/n0")]).unwrap());
        assert!(matches!(
            poller.poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10
            ),
            Err(GmetadError::BadReport { .. })
        ));
    }

    #[test]
    fn grid_source_is_summarized_under_nlevel() {
        let grid_xml = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmetad">
            <GRID NAME="sdsc" AUTHORITY="http://sdsc/" LOCALTIME="9">
              <CLUSTER NAME="meteor" LOCALTIME="9">
                <HOST NAME="n0" IP="1.1.1.1" REPORTED="9" TN="1" TMAX="20" DMAX="0">
                  <METRIC NAME="load_one" VAL="2.0" TYPE="float" SLOPE="both"/>
                </HOST>
              </CLUSTER>
            </GRID></GANGLIA_XML>"#;
        let net = SimNet::new(1);
        let _g = serve_static(&net, "sdsc-gmeta", grid_xml.to_string());
        let meter = WorkMeter::new();
        let cfg = DataSourceCfg::new("sdsc", vec![Addr::new("sdsc-gmeta")]).unwrap();

        let mut n_poller = SourcePoller::new(cfg.clone());
        let n_state = n_poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
            )
            .unwrap();
        let SourceData::Grid(grid) = &n_state.data else {
            panic!()
        };
        assert!(matches!(grid.body, GridBody::Summary(_)));
        assert_eq!(grid.authority, "http://sdsc/");
        assert_eq!(n_state.summary.hosts_up, 1);

        let mut one_poller = SourcePoller::new(cfg);
        let one_state = one_poller
            .poll(
                &net,
                TreeMode::OneLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
            )
            .unwrap();
        let SourceData::Grid(grid) = &one_state.data else {
            panic!()
        };
        assert!(
            matches!(grid.body, GridBody::Items(_)),
            "1-level keeps detail"
        );
    }
}
