//! Per-source polling with fail-over and endpoint circuit breaking.
//!
//! Each data source lists several redundant endpoints (any gmon node can
//! serve the whole cluster). The poller tries them in order starting at
//! the last one that worked: a stop failure moves on immediately, and a
//! completely unreachable source is retried "at a steady frequency,
//! ensuring that failures do not cause permanent fissures in the
//! monitoring tree" (paper §2.1) — every poll round still probes at
//! least one endpoint, forever.
//!
//! What the steady retry no longer does is hammer: each endpoint carries
//! an [`EndpointHealth`] circuit breaker, and once an endpoint has
//! failed [`RetryPolicy::breaker_threshold`] times in a row it is only
//! probed on a capped exponential-backoff schedule. A round in which
//! every breaker is open degenerates to exactly one probe — the
//! endpoint whose breaker re-closes soonest — instead of one
//! timeout-costing attempt per redundant address.

use std::time::{Duration, Instant};

use std::sync::Arc;

use ganglia_metrics::model::{GridBody, GridNode, SummaryBody};
use ganglia_metrics::{GridItem, Ingester};
use ganglia_net::transport::{FetchBuffer, Transport};
use ganglia_net::NetError;

use crate::config::{DataSourceCfg, TreeMode};
use crate::error::GmetadError;
use crate::health::{endpoint_seed, BreakerState, EndpointHealth, RetryPolicy};
use crate::instrument::{WorkCategory, WorkMeter};
use crate::store::SourceState;

/// Wall-clock budget for one poll round. Each endpoint attempt's
/// timeout is clamped to the remaining budget, so a hung source
/// degrades to a timeout failure at the round deadline instead of
/// stalling the whole round behind its full per-endpoint timeouts.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundBudget {
    deadline: Option<Instant>,
}

impl RoundBudget {
    /// No deadline: every attempt gets the full fetch timeout.
    pub fn unbounded() -> RoundBudget {
        RoundBudget { deadline: None }
    }

    /// Every attempt must finish by `deadline`.
    pub fn until(deadline: Instant) -> RoundBudget {
        RoundBudget {
            deadline: Some(deadline),
        }
    }

    /// Clamp a per-attempt timeout to the remaining budget. `None`
    /// means the budget is spent: do not attempt at all.
    pub fn clamp(&self, timeout: Duration) -> Option<Duration> {
        match self.deadline {
            None => Some(timeout),
            Some(deadline) => {
                let left = deadline.checked_duration_since(Instant::now())?;
                if left.is_zero() {
                    None
                } else {
                    Some(timeout.min(left))
                }
            }
        }
    }
}

/// Why a whole round failed, with the counter taxonomy the caller
/// needs: a round where the normal rotation probed nothing (every
/// breaker open) is "backoff, did not probe", not "probed and failed".
struct FetchFailure {
    errors: Vec<NetError>,
    /// The rotation skipped every endpoint: only the steady-retry
    /// forced probe (if the budget allowed one) ran this round.
    breaker_idle: bool,
    /// The round budget expired before every endpoint could be tried.
    deadline_hit: bool,
}

/// Polling state for one data source.
#[derive(Debug)]
pub struct SourcePoller {
    cfg: DataSourceCfg,
    /// Index of the endpoint that served the last successful poll.
    cursor: usize,
    /// Per-endpoint health, parallel to `cfg.addrs`.
    health: Vec<EndpointHealth>,
    /// Delta-aware parser: reuses the previous round's host nodes and
    /// summary contributions when their bytes did not change.
    ingester: Ingester,
    /// Reusable response buffer (keeps its allocation across rounds).
    buf: FetchBuffer,
    /// Consecutive fully-failed rounds.
    pub consecutive_failures: u32,
    /// Lifetime counters.
    pub polls_ok: u64,
    pub polls_failed: u64,
    /// Failed rounds in which every breaker was open, so the normal
    /// rotation probed nothing (at most the steady-retry probe ran).
    /// Kept separate from `polls_failed` so backoff rounds don't read
    /// as fresh evidence of trouble.
    pub polls_backoff: u64,
    pub failovers: u64,
}

impl SourcePoller {
    /// A poller for one configured source. [`DataSourceCfg::new`]
    /// guarantees a non-empty address list.
    pub fn new(cfg: DataSourceCfg) -> SourcePoller {
        let health = cfg
            .addrs
            .iter()
            .map(|addr| EndpointHealth::new(endpoint_seed(addr.as_str())))
            .collect();
        SourcePoller {
            cfg,
            cursor: 0,
            health,
            ingester: Ingester::new(),
            buf: FetchBuffer::new(),
            consecutive_failures: 0,
            polls_ok: 0,
            polls_failed: 0,
            polls_backoff: 0,
            failovers: 0,
        }
    }

    /// The source configuration.
    pub fn cfg(&self) -> &DataSourceCfg {
        &self.cfg
    }

    /// The endpoint currently preferred.
    pub fn current_addr(&self) -> &ganglia_net::Addr {
        &self.cfg.addrs[self.cursor]
    }

    /// Health records, parallel to `cfg().addrs`.
    pub fn endpoint_health(&self) -> &[EndpointHealth] {
        &self.health
    }

    /// Breaker state of the currently preferred endpoint.
    pub fn current_breaker(&self) -> BreakerState {
        self.health[self.cursor].breaker
    }

    /// One poll round: fetch (with fail-over and circuit breaking),
    /// parse, and build the new snapshot. On total failure every
    /// attempted endpoint's error is reported.
    pub fn poll(
        &mut self,
        transport: &dyn Transport,
        mode: TreeMode,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
    ) -> Result<SourceState, GmetadError> {
        self.poll_bounded(
            transport,
            mode,
            timeout,
            policy,
            meter,
            now,
            &RoundBudget::unbounded(),
        )
    }

    /// [`SourcePoller::poll`] under a wall-clock [`RoundBudget`]: each
    /// endpoint attempt's timeout is clamped to the remaining budget,
    /// and once the budget is spent the remaining endpoints fail with
    /// a timeout instead of being probed.
    #[allow(clippy::too_many_arguments)]
    pub fn poll_bounded(
        &mut self,
        transport: &dyn Transport,
        mode: TreeMode,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
        budget: &RoundBudget,
    ) -> Result<SourceState, GmetadError> {
        // The response buffer is moved out for the duration of the round
        // so the borrow checker lets `self` methods take it by parameter;
        // it is restored (with its allocation and size hint) either way.
        let mut buf = std::mem::take(&mut self.buf);
        let result = self.poll_inner(
            transport, mode, timeout, policy, meter, now, budget, &mut buf,
        );
        self.buf = buf;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn poll_inner(
        &mut self,
        transport: &dyn Transport,
        mode: TreeMode,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
        budget: &RoundBudget,
        buf: &mut FetchBuffer,
    ) -> Result<SourceState, GmetadError> {
        let registry = std::sync::Arc::clone(meter.registry());
        let fetch_start = Instant::now();
        let served_by =
            match self.fetch_with_failover(transport, timeout, policy, meter, now, budget, buf) {
                Ok(served) => served,
                Err(failure) => {
                    self.consecutive_failures += 1;
                    if failure.deadline_hit {
                        registry.counter("polls_deadline_total").inc();
                    }
                    if failure.breaker_idle {
                        // Backoff round: nothing (or only the steady
                        // probe) ran. Counted apart from real failures
                        // so telemetry distinguishes "probed and
                        // failed" from "backoff, did not probe".
                        self.polls_backoff += 1;
                        registry.counter("polls_backoff_total").inc();
                    } else {
                        self.polls_failed += 1;
                        registry.counter("polls_failed_total").inc();
                    }
                    return Err(GmetadError::AllHostsFailed {
                        source: self.cfg.name.clone(),
                        errors: failure.errors,
                    });
                }
            };
        // Per-source telemetry alongside the category-wide accounting:
        // fetch latency, bytes on the wire, parse latency.
        let name = &self.cfg.name;
        registry
            .histogram(&format!("source.{name}.fetch_us"))
            .record_duration(fetch_start.elapsed());
        let bytes = buf.len() as u64;
        registry.counter("bytes_in_total").add(bytes);
        registry
            .counter(&format!("source.{name}.bytes_in_total"))
            .add(bytes);
        let parse_start = Instant::now();
        let ingested = match self.ingester.ingest(buf.as_str()) {
            Ok(ingested) => ingested,
            Err(error) => {
                meter.record(WorkCategory::Parse, parse_start.elapsed());
                // A garbage or truncated report counts against the
                // endpoint that served it: enough of them in a row and
                // its breaker opens, failing the source over.
                self.record_failure_counting_transitions(served_by, now, policy, meter);
                self.polls_failed += 1;
                self.consecutive_failures += 1;
                registry.counter("polls_failed_total").inc();
                registry.counter("parse_errors_total").inc();
                return Err(GmetadError::BadReport {
                    source: self.cfg.name.clone(),
                    error,
                });
            }
        };
        let stats = ingested.stats;
        // The ingester times its internal summary merges; book those as
        // Summarize and the remainder of the call as Parse, mirroring
        // the split the rebuild-every-round path reported.
        let total = parse_start.elapsed();
        meter.record(
            WorkCategory::Parse,
            total.saturating_sub(stats.summarize_time),
        );
        meter.record_busy_only(WorkCategory::Summarize, stats.summarize_time);
        registry
            .histogram(&format!("source.{}.parse_us", self.cfg.name))
            .record_duration(total);
        registry.counter("ingest.bytes_total").add(stats.bytes);
        registry
            .counter("ingest.hosts_reused")
            .add(stats.hosts_reused);
        registry
            .counter("ingest.hosts_rebuilt")
            .add(stats.hosts_rebuilt);
        registry
            .counter("ingest.summaries_reused")
            .add(stats.summaries_reused);
        registry
            .counter("ingest.summaries_direct")
            .add(stats.summaries_direct);
        registry
            .counter("ingest.dup_fallbacks")
            .add(stats.dup_fallbacks);
        if stats.doc_reused {
            registry.counter("ingest.docs_reused").inc();
        }
        self.health[served_by].record_success(now);
        self.polls_ok += 1;
        self.consecutive_failures = 0;
        registry.counter("polls_ok_total").inc();
        crate::freshness::record_freshness(&registry, &self.cfg.name, &ingested.doc, now);
        Ok(build_state_prepared(
            &self.cfg.name,
            ingested.doc,
            ingested.summary,
            mode,
            now,
        ))
    }

    /// Fetch into `buf`, returning the index of the endpoint that
    /// served the response.
    #[allow(clippy::too_many_arguments)]
    fn fetch_with_failover(
        &mut self,
        transport: &dyn Transport,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
        budget: &RoundBudget,
        buf: &mut FetchBuffer,
    ) -> Result<usize, FetchFailure> {
        let addr_count = self.cfg.addrs.len();
        let mut errors = Vec::new();
        let mut attempted = false;
        let mut deadline_hit = false;
        for attempt in 0..addr_count {
            let idx = (self.cursor + attempt) % addr_count;
            if !self.health[idx].allows_attempt(now) {
                continue;
            }
            let Some(clamped) = budget.clamp(timeout) else {
                // The round deadline passed before this endpoint could
                // be probed: it fails with a timeout, but its breaker
                // is not charged — there is no evidence against it.
                errors.push(NetError::Timeout(self.cfg.addrs[idx].clone()));
                attempted = true;
                deadline_hit = true;
                break;
            };
            attempted = true;
            match self.try_endpoint(idx, transport, clamped, policy, meter, now, false, buf) {
                Ok(()) => {
                    if attempt > 0 {
                        self.failovers += 1;
                        self.cursor = idx; // stick with the node that works
                    }
                    return Ok(idx);
                }
                Err(e) => errors.push(e),
            }
        }
        if !attempted {
            // Every breaker is open. The paper's steady-retry guarantee
            // (§2.1) still holds: probe the one endpoint whose breaker
            // re-closes soonest, so a healed source is rediscovered
            // within one poll round of its deadline — and a dead one
            // costs a single timeout per round, not one per address.
            let idx = (0..addr_count)
                .min_by_key(|&i| (self.health[i].next_probe_at(now), i))
                .expect("validated cfg has at least one address");
            match budget.clamp(timeout) {
                None => {
                    errors.push(NetError::Timeout(self.cfg.addrs[idx].clone()));
                    deadline_hit = true;
                }
                Some(clamped) => {
                    match self.try_endpoint(idx, transport, clamped, policy, meter, now, true, buf)
                    {
                        Ok(()) => {
                            if idx != self.cursor {
                                self.failovers += 1;
                                self.cursor = idx;
                            }
                            return Ok(idx);
                        }
                        Err(e) => errors.push(e),
                    }
                }
            }
            return Err(FetchFailure {
                errors,
                breaker_idle: true,
                deadline_hit,
            });
        }
        Err(FetchFailure {
            errors,
            breaker_idle: false,
            deadline_hit,
        })
    }

    /// One exchange with one endpoint, updating its health record.
    /// `forced` marks a steady-retry probe made while every breaker was
    /// open: its duration still counts as fetch busy-time, but the
    /// sample lands in the `fetch_probe_us` histogram so the main fetch
    /// quantiles keep describing live rotations only.
    #[allow(clippy::too_many_arguments)]
    fn try_endpoint(
        &mut self,
        idx: usize,
        transport: &dyn Transport,
        timeout: Duration,
        policy: &RetryPolicy,
        meter: &WorkMeter,
        now: u64,
        forced: bool,
        buf: &mut FetchBuffer,
    ) -> Result<(), NetError> {
        self.health[idx].begin_attempt(now);
        let addr = &self.cfg.addrs[idx];
        let start = Instant::now();
        let result = transport.fetch_into(addr, "/", timeout, buf).map(|_| ());
        let elapsed = start.elapsed();
        if forced {
            meter.record_busy_only(WorkCategory::Fetch, elapsed);
            meter
                .registry()
                .histogram("fetch_probe_us")
                .record_duration(elapsed);
        } else {
            meter.record(WorkCategory::Fetch, elapsed);
        }
        match &result {
            // Success is recorded only after the report parses (see
            // `poll`); a fetch that returns garbage must not close the
            // breaker.
            Ok(_) => {}
            Err(_) => self.record_failure_counting_transitions(idx, now, policy, meter),
        }
        result
    }

    /// Record an endpoint failure, counting closed→open breaker
    /// transitions into the telemetry registry.
    fn record_failure_counting_transitions(
        &mut self,
        idx: usize,
        now: u64,
        policy: &RetryPolicy,
        meter: &WorkMeter,
    ) {
        let was_open = matches!(self.health[idx].breaker, BreakerState::Open { .. });
        self.health[idx].record_failure(now, policy);
        if !was_open && matches!(self.health[idx].breaker, BreakerState::Open { .. }) {
            let registry = meter.registry();
            registry.counter("breaker_opens_total").inc();
            registry
                .counter(&format!("source.{}.breaker_opens_total", self.cfg.name))
                .inc();
        }
    }
}

/// Turn a parsed child report into this gmetad's stored snapshot.
///
/// * A gmond report (one `CLUSTER`) is a **local** cluster: kept at full
///   detail — this gmetad is its authority.
/// * A gmetad report (a `GRID`) is a **remote** grid: "Gmeta only keeps
///   numerical summaries of data from clusters it is not an authority
///   on" (§3.2) under the N-level design; the 1-level design keeps the
///   whole expansion.
pub fn build_state(
    source_name: &str,
    doc: ganglia_metrics::GangliaDoc,
    mode: TreeMode,
    meter: &WorkMeter,
    now: u64,
) -> SourceState {
    // A well-formed child report carries exactly one top-level item; a
    // report with several (nonstandard) is wrapped in a synthetic grid.
    let item = if doc.items.len() == 1 {
        doc.items.into_iter().next().expect("len checked")
    } else {
        GridItem::Grid(GridNode::with_items(source_name.to_string(), doc.items))
    };
    match item {
        GridItem::Cluster(cluster) => {
            let summary = meter.time(WorkCategory::Summarize, || cluster.summary());
            SourceState::cluster(source_name, cluster, summary, now)
        }
        GridItem::Grid(grid) => {
            let summary = meter.time(WorkCategory::Summarize, || grid.summary());
            let stored = match mode {
                TreeMode::NLevel => GridNode {
                    name: grid.name,
                    authority: grid.authority,
                    localtime: grid.localtime,
                    body: GridBody::Summary(summary.clone()),
                },
                TreeMode::OneLevel => grid,
            };
            SourceState::grid(source_name, stored, summary, now)
        }
    }
}

/// [`build_state`] for the delta-aware ingest path: the rollup was
/// already computed (or reused) by the [`Ingester`], so nothing is
/// re-summarized here — an unchanged round installs the previous
/// round's `Arc`'d summary untouched.
pub fn build_state_prepared(
    source_name: &str,
    doc: ganglia_metrics::GangliaDoc,
    summary: Arc<SummaryBody>,
    mode: TreeMode,
    now: u64,
) -> SourceState {
    let item = if doc.items.len() == 1 {
        doc.items.into_iter().next().expect("len checked")
    } else {
        GridItem::Grid(GridNode::with_items(source_name.to_string(), doc.items))
    };
    match item {
        GridItem::Cluster(cluster) => SourceState::cluster(source_name, cluster, summary, now),
        GridItem::Grid(grid) => {
            let stored = match mode {
                TreeMode::NLevel => GridNode {
                    name: grid.name,
                    authority: grid.authority,
                    localtime: grid.localtime,
                    body: GridBody::Summary((*summary).clone()),
                },
                TreeMode::OneLevel => grid,
            };
            SourceState::grid(source_name, stored, summary, now)
        }
    }
}

/// Convenience for tests: an empty summary.
pub fn empty_summary() -> SummaryBody {
    SummaryBody::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SourceData;
    use ganglia_net::{Addr, SimNet};
    use std::sync::Arc as StdArc;

    const TIMEOUT: Duration = Duration::from_millis(100);

    fn cluster_xml(name: &str, hosts: usize) -> String {
        let mut xml = format!("<GANGLIA_XML VERSION=\"2.5.4\" SOURCE=\"gmond\"><CLUSTER NAME=\"{name}\" LOCALTIME=\"10\">");
        for i in 0..hosts {
            xml.push_str(&format!(
                "<HOST NAME=\"n{i}\" IP=\"1.1.1.{i}\" REPORTED=\"10\" TN=\"1\" TMAX=\"20\" DMAX=\"0\">\
                 <METRIC NAME=\"load_one\" VAL=\"0.5\" TYPE=\"float\" SLOPE=\"both\"/></HOST>"
            ));
        }
        xml.push_str("</CLUSTER></GANGLIA_XML>");
        xml
    }

    fn serve_static(
        net: &StdArc<SimNet>,
        addr: &str,
        body: String,
    ) -> Box<dyn ganglia_net::ServerGuard> {
        net.serve(&Addr::new(addr), StdArc::new(move |_: &str| body.clone()))
            .unwrap()
    }

    #[test]
    fn poll_parses_cluster_source() {
        let net = SimNet::new(1);
        let _g = serve_static(&net, "meteor/n0", cluster_xml("meteor", 3));
        let meter = WorkMeter::new();
        let mut poller =
            SourcePoller::new(DataSourceCfg::new("meteor", vec![Addr::new("meteor/n0")]).unwrap());
        let state = poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                100,
            )
            .unwrap();
        assert_eq!(state.host_count(), 3);
        assert!(matches!(state.data, SourceData::Cluster(_)));
        assert_eq!(state.summary.hosts_up, 3);
        assert_eq!(poller.polls_ok, 1);
        assert!(meter.busy(WorkCategory::Parse) > Duration::ZERO);
        assert!(meter.busy(WorkCategory::Fetch) > Duration::ZERO);
    }

    #[test]
    fn failover_tries_addresses_in_order_and_sticks() {
        let net = SimNet::new(1);
        let _g0 = serve_static(&net, "meteor/n0", cluster_xml("meteor", 1));
        let _g1 = serve_static(&net, "meteor/n1", cluster_xml("meteor", 1));
        net.set_down(&Addr::new("meteor/n0"), true);
        let meter = WorkMeter::new();
        let mut poller = SourcePoller::new(
            DataSourceCfg::new(
                "meteor",
                vec![Addr::new("meteor/n0"), Addr::new("meteor/n1")],
            )
            .unwrap(),
        );
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
            )
            .unwrap();
        assert_eq!(poller.failovers, 1);
        assert_eq!(poller.current_addr(), &Addr::new("meteor/n1"));
        // Next poll goes straight to n1 (no extra failover).
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                20,
            )
            .unwrap();
        assert_eq!(poller.failovers, 1);
        // When n0 recovers, the poller keeps using n1 until it fails.
        net.set_down(&Addr::new("meteor/n0"), false);
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                30,
            )
            .unwrap();
        assert_eq!(poller.current_addr(), &Addr::new("meteor/n1"));
    }

    #[test]
    fn total_failure_reports_all_errors_and_recovers() {
        let net = SimNet::new(1);
        let _g0 = serve_static(&net, "meteor/n0", cluster_xml("meteor", 1));
        let _g1 = serve_static(&net, "meteor/n1", cluster_xml("meteor", 1));
        net.partition_prefix("meteor", true);
        let meter = WorkMeter::new();
        let mut poller = SourcePoller::new(
            DataSourceCfg::new(
                "meteor",
                vec![Addr::new("meteor/n0"), Addr::new("meteor/n1")],
            )
            .unwrap(),
        );
        for round in 1..=3u64 {
            let err = poller
                .poll(
                    &net,
                    TreeMode::NLevel,
                    TIMEOUT,
                    &RetryPolicy::default(),
                    &meter,
                    round * 15,
                )
                .unwrap_err();
            match err {
                GmetadError::AllHostsFailed { source, errors } => {
                    assert_eq!(source, "meteor");
                    assert_eq!(errors.len(), 2);
                }
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(poller.consecutive_failures, 3);
        // Steady retry: the partition heals and the next round succeeds.
        net.partition_prefix("meteor", false);
        poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                60,
            )
            .unwrap();
        assert_eq!(poller.consecutive_failures, 0);
    }

    #[test]
    fn bad_xml_is_a_bad_report() {
        let net = SimNet::new(1);
        let _g = serve_static(&net, "meteor/n0", "<BOGUS".to_string());
        let meter = WorkMeter::new();
        let mut poller =
            SourcePoller::new(DataSourceCfg::new("meteor", vec![Addr::new("meteor/n0")]).unwrap());
        assert!(matches!(
            poller.poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10
            ),
            Err(GmetadError::BadReport { .. })
        ));
    }

    #[test]
    fn breaker_idle_rounds_count_as_backoff_not_failure() {
        let net = SimNet::new(1);
        let _g = serve_static(&net, "meteor/n0", cluster_xml("meteor", 1));
        net.partition_prefix("meteor", true);
        let meter = WorkMeter::new();
        let mut poller =
            SourcePoller::new(DataSourceCfg::new("meteor", vec![Addr::new("meteor/n0")]).unwrap());
        // Default threshold 3: three live rounds, all real failures.
        for round in 1..=3u64 {
            let _ = poller.poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                round * 15,
            );
        }
        assert_eq!(poller.polls_failed, 3);
        assert_eq!(poller.polls_backoff, 0);
        // The breaker opened at t=45 with backoff >= 15s (jitter only
        // lengthens it), so t=50 is a backoff round: only the forced
        // steady-retry probe runs, and it is tagged, not counted as a
        // fresh failure.
        let _ = poller.poll(
            &net,
            TreeMode::NLevel,
            TIMEOUT,
            &RetryPolicy::default(),
            &meter,
            50,
        );
        assert_eq!(poller.polls_failed, 3, "backoff round is not a failure");
        assert_eq!(poller.polls_backoff, 1);
        assert_eq!(poller.consecutive_failures, 4, "lifecycle still advances");
        let snap = meter.registry().snapshot();
        assert_eq!(snap.counter("polls_failed_total"), Some(3));
        assert_eq!(snap.counter("polls_backoff_total"), Some(1));
        // The probe's latency sample went to the probe histogram, so
        // the fetch quantiles keep describing live rotations only.
        assert_eq!(snap.histogram("fetch_us").map(|h| h.count), Some(3));
        assert_eq!(snap.histogram("fetch_probe_us").map(|h| h.count), Some(1));
    }

    #[test]
    fn spent_round_budget_fails_fast_without_charging_breakers() {
        let net = SimNet::new(1);
        let _g0 = serve_static(&net, "m/n0", cluster_xml("m", 1));
        let _g1 = serve_static(&net, "m/n1", cluster_xml("m", 1));
        let meter = WorkMeter::new();
        let mut poller = SourcePoller::new(
            DataSourceCfg::new("m", vec![Addr::new("m/n0"), Addr::new("m/n1")]).unwrap(),
        );
        let spent = RoundBudget::until(
            Instant::now()
                .checked_sub(Duration::from_millis(1))
                .expect("process uptime exceeds 1ms"),
        );
        let err = poller
            .poll_bounded(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
                &spent,
            )
            .unwrap_err();
        match err {
            GmetadError::AllHostsFailed { source, errors } => {
                assert_eq!(source, "m");
                assert!(matches!(errors[0], ganglia_net::NetError::Timeout(_)));
            }
            other => panic!("unexpected {other}"),
        }
        assert_eq!(poller.polls_failed, 1);
        assert_eq!(poller.consecutive_failures, 1);
        assert!(
            poller
                .endpoint_health()
                .iter()
                .all(|h| h.breaker == BreakerState::Closed && h.consecutive_failures == 0),
            "unprobed endpoints must not be charged"
        );
        let snap = meter.registry().snapshot();
        assert_eq!(snap.counter("polls_deadline_total"), Some(1));
        // With budget left, the same poller succeeds (clamped timeout).
        let roomy = RoundBudget::until(Instant::now() + Duration::from_secs(5));
        poller
            .poll_bounded(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                20,
                &roomy,
            )
            .unwrap();
        assert_eq!(poller.consecutive_failures, 0);
    }

    #[test]
    fn round_budget_caps_a_hung_endpoint() {
        let net = SimNet::new(1);
        let _g = serve_static(&net, "slow/n0", cluster_xml("slow", 1));
        // The endpoint hangs for 10s; the round budget allows ~50ms.
        net.set_wire_delay(&Addr::new("slow/n0"), Duration::from_secs(10));
        let meter = WorkMeter::new();
        let mut poller =
            SourcePoller::new(DataSourceCfg::new("slow", vec![Addr::new("slow/n0")]).unwrap());
        let budget = RoundBudget::until(Instant::now() + Duration::from_millis(50));
        let start = Instant::now();
        let err = poller
            .poll_bounded(
                &net,
                TreeMode::NLevel,
                Duration::from_secs(10),
                &RetryPolicy::default(),
                &meter,
                10,
                &budget,
            )
            .unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline must cap the wait, waited {:?}",
            start.elapsed()
        );
        assert!(matches!(err, GmetadError::AllHostsFailed { .. }));
        // The endpoint was really probed and timed out, so this one IS
        // breaker-counted.
        assert_eq!(poller.endpoint_health()[0].consecutive_failures, 1);
        assert_eq!(poller.polls_failed, 1);
    }

    #[test]
    fn grid_source_is_summarized_under_nlevel() {
        let grid_xml = r#"<GANGLIA_XML VERSION="2.5.4" SOURCE="gmetad">
            <GRID NAME="sdsc" AUTHORITY="http://sdsc/" LOCALTIME="9">
              <CLUSTER NAME="meteor" LOCALTIME="9">
                <HOST NAME="n0" IP="1.1.1.1" REPORTED="9" TN="1" TMAX="20" DMAX="0">
                  <METRIC NAME="load_one" VAL="2.0" TYPE="float" SLOPE="both"/>
                </HOST>
              </CLUSTER>
            </GRID></GANGLIA_XML>"#;
        let net = SimNet::new(1);
        let _g = serve_static(&net, "sdsc-gmeta", grid_xml.to_string());
        let meter = WorkMeter::new();
        let cfg = DataSourceCfg::new("sdsc", vec![Addr::new("sdsc-gmeta")]).unwrap();

        let mut n_poller = SourcePoller::new(cfg.clone());
        let n_state = n_poller
            .poll(
                &net,
                TreeMode::NLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
            )
            .unwrap();
        let SourceData::Grid(grid) = &n_state.data else {
            panic!()
        };
        assert!(matches!(grid.body, GridBody::Summary(_)));
        assert_eq!(grid.authority, "http://sdsc/");
        assert_eq!(n_state.summary.hosts_up, 1);

        let mut one_poller = SourcePoller::new(cfg);
        let one_state = one_poller
            .poll(
                &net,
                TreeMode::OneLevel,
                TIMEOUT,
                &RetryPolicy::default(),
                &meter,
                10,
            )
            .unwrap();
        let SourceData::Grid(grid) = &one_state.data else {
            panic!()
        };
        assert!(
            matches!(grid.body, GridBody::Items(_)),
            "1-level keeps detail"
        );
    }

    #[test]
    fn reused_summary_arc_skips_the_store_delta_path() {
        // The delta-aware ingest reinstalls the previous round's
        // summary `Arc` when a source did not change; the sharded store
        // recognizes the identical pointer and skips delta work
        // entirely. An unchanged round must cost zero summary updates.
        use crate::store::Store;
        use ganglia_metrics::ClusterNode;
        let doc = ganglia_metrics::GangliaDoc::gmond(ClusterNode::with_hosts(
            "meteor",
            vec![ganglia_metrics::HostNode::new("n0", "10.0.0.1")],
        ));
        let summary: Arc<SummaryBody> = Arc::new(match &doc.items[0] {
            GridItem::Cluster(c) => c.summary(),
            GridItem::Grid(g) => g.summary(),
        });
        let store = Store::new();
        store.replace(build_state_prepared(
            "meteor",
            doc.clone(),
            Arc::clone(&summary),
            TreeMode::NLevel,
            1,
        ));
        let first = store.stats();
        store.replace(build_state_prepared(
            "meteor",
            doc,
            Arc::clone(&summary),
            TreeMode::NLevel,
            2,
        ));
        let second = store.stats();
        assert_eq!(second.replaces, first.replaces + 1);
        assert_eq!(
            second.deltas_applied, first.deltas_applied,
            "unchanged round must not apply a summary delta"
        );
        assert_eq!(second.summary_rebuilds, first.summary_rebuilds);
    }
}
