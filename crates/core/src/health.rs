//! Per-endpoint failure tracking: backoff and circuit breaking.
//!
//! The paper's failure handling (§2.1) retries a dead source "at a
//! steady frequency, ensuring that failures do not cause permanent
//! fissures in the monitoring tree". Steady retry at the *source* level
//! is preserved by the poller (every round still probes at least one
//! endpoint); this module bounds the work spent on each *endpoint*: a
//! host that keeps failing trips a circuit breaker and is then probed on
//! a capped exponential-backoff schedule instead of being hammered with
//! one timeout-costing attempt per redundant address per round.
//!
//! Breaker states:
//!
//! * **Closed** — the endpoint is believed healthy; attempts flow.
//! * **Open { until }** — `breaker_threshold` consecutive failures have
//!   accumulated; no attempts until the backoff deadline passes.
//! * **HalfOpen** — the deadline passed and one probe is in flight; its
//!   outcome either closes the breaker or re-opens it with a longer
//!   deadline.
//!
//! The backoff delay for the n-th opening is
//! `min(base · 2^(n-1) · jitter, max)` with a constant per-endpoint
//! jitter factor in `[1.0, 1.25)` drawn deterministically from
//! [`SplitMix64`], so redundant endpoints of one source de-synchronize
//! without losing reproducibility. The schedule is monotone
//! non-decreasing and never exceeds `retry_backoff_max_secs`, so once an
//! endpoint recovers the next probe fires within one cap interval.

use ganglia_net::rng::SplitMix64;
use std::fmt;

/// Backoff and circuit-breaker knobs (`gmetad.conf`:
/// `retry_backoff_base_secs`, `retry_backoff_max_secs`,
/// `breaker_threshold`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff delay once the breaker opens, in seconds.
    pub backoff_base_secs: u64,
    /// Cap on the backoff delay, in seconds. Also the worst-case lag
    /// between an endpoint recovering and the half-open probe that
    /// notices.
    pub backoff_max_secs: u64,
    /// Consecutive failures that open the breaker.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff_base_secs: 15,
            backoff_max_secs: 240,
            breaker_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// Reject configurations the backoff arithmetic cannot honour.
    pub fn validate(&self) -> Result<(), String> {
        if self.backoff_base_secs == 0 {
            return Err("retry_backoff_base_secs must be positive".into());
        }
        if self.backoff_max_secs < self.backoff_base_secs {
            return Err(format!(
                "retry_backoff_max_secs ({}) must be >= retry_backoff_base_secs ({})",
                self.backoff_max_secs, self.backoff_base_secs
            ));
        }
        if self.breaker_threshold == 0 {
            return Err("breaker_threshold must be at least 1".into());
        }
        Ok(())
    }
}

/// Staleness-lifecycle thresholds (`gmetad.conf`: `source_down_secs`,
/// `source_expire_secs`) — the wide-area analogue of gmond's per-metric
/// TMAX/DMAX soft state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecyclePolicy {
    /// Seconds without a good poll after which a stale source is marked
    /// down and its hosts reported as `hosts_down` up the tree.
    pub down_after_secs: u64,
    /// Seconds without a good poll after which the source's snapshot is
    /// expired — pruned from the store entirely.
    pub expire_after_secs: u64,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            down_after_secs: 60,
            expire_after_secs: 3600,
        }
    }
}

impl LifecyclePolicy {
    /// Reject threshold orderings that would skip lifecycle phases.
    pub fn validate(&self) -> Result<(), String> {
        if self.down_after_secs == 0 {
            return Err("source_down_secs must be positive".into());
        }
        if self.expire_after_secs <= self.down_after_secs {
            return Err(format!(
                "source_expire_secs ({}) must be > source_down_secs ({})",
                self.expire_after_secs, self.down_after_secs
            ));
        }
        Ok(())
    }
}

/// Circuit-breaker state of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: attempts flow normally.
    Closed,
    /// Tripped: no attempts until `until` (seconds, poller clock).
    Open { until: u64 },
    /// Probe in flight: the next outcome decides.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open { until } => write!(f, "open(until={until})"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Health record for one endpoint of a data source.
#[derive(Debug, Clone)]
pub struct EndpointHealth {
    /// Consecutive failed exchanges (fetch errors and bad reports).
    pub consecutive_failures: u32,
    /// Poller-clock time of the last successful exchange.
    pub last_ok: Option<u64>,
    /// Current breaker state.
    pub breaker: BreakerState,
    /// Constant per-endpoint jitter factor in `[1.0, 1.25)`.
    jitter: f64,
}

impl EndpointHealth {
    /// A healthy endpoint whose jitter is derived from `seed`
    /// (deterministic — seed from the endpoint address).
    pub fn new(seed: u64) -> EndpointHealth {
        let mut rng = SplitMix64::new(seed);
        EndpointHealth {
            consecutive_failures: 0,
            last_ok: None,
            breaker: BreakerState::Closed,
            jitter: 1.0 + 0.25 * rng.next_f64(),
        }
    }

    /// Whether the breaker permits an attempt at `now`.
    pub fn allows_attempt(&self, now: u64) -> bool {
        match self.breaker {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => now >= until,
        }
    }

    /// Earliest time an attempt will be permitted (now, if already
    /// permitted).
    pub fn next_probe_at(&self, now: u64) -> u64 {
        match self.breaker {
            BreakerState::Closed | BreakerState::HalfOpen => now,
            BreakerState::Open { until } => until.max(now),
        }
    }

    /// Note that an attempt is starting. An open breaker transitions to
    /// half-open: the attempt is a probe whose outcome decides the next
    /// state.
    pub fn begin_attempt(&mut self, _now: u64) {
        if matches!(self.breaker, BreakerState::Open { .. }) {
            self.breaker = BreakerState::HalfOpen;
        }
    }

    /// Record a successful exchange: failures reset, breaker closes.
    pub fn record_success(&mut self, now: u64) {
        self.consecutive_failures = 0;
        self.last_ok = Some(now);
        self.breaker = BreakerState::Closed;
    }

    /// Record a failed exchange; opens (or re-opens, with a longer
    /// deadline) the breaker once `policy.breaker_threshold` consecutive
    /// failures accumulate.
    pub fn record_failure(&mut self, now: u64, policy: &RetryPolicy) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= policy.breaker_threshold {
            let step = self.consecutive_failures - policy.breaker_threshold + 1;
            self.breaker = BreakerState::Open {
                until: now.saturating_add(self.backoff_delay(step, policy)),
            };
        }
    }

    /// The backoff delay for the `step`-th consecutive opening
    /// (1-based): `min(base · 2^(step-1) · jitter, max)`. Monotone
    /// non-decreasing in `step` and never above `backoff_max_secs`.
    pub fn backoff_delay(&self, step: u32, policy: &RetryPolicy) -> u64 {
        let exponent = step.saturating_sub(1).min(62);
        let raw = policy
            .backoff_base_secs
            .saturating_mul(1u64.checked_shl(exponent).unwrap_or(u64::MAX));
        let jittered = (raw as f64 * self.jitter).min(u64::MAX as f64) as u64;
        jittered.min(policy.backoff_max_secs)
    }
}

/// A deterministic seed for an endpoint's jitter RNG (FNV-1a of the
/// address string).
pub fn endpoint_seed(addr: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in addr.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn breaker_opens_at_threshold_and_backs_off() {
        let mut health = EndpointHealth::new(endpoint_seed("meteor/n0"));
        let policy = policy();
        health.record_failure(10, &policy);
        health.record_failure(20, &policy);
        assert_eq!(health.breaker, BreakerState::Closed);
        health.record_failure(30, &policy);
        let BreakerState::Open { until } = health.breaker else {
            panic!("threshold reached, breaker must open");
        };
        // First opening: base..base*1.25 after the failure.
        assert!((45..=48).contains(&until), "until {until}");
        assert!(!health.allows_attempt(until - 1));
        assert!(health.allows_attempt(until));
    }

    #[test]
    fn half_open_probe_closes_on_success_reopens_longer_on_failure() {
        let mut health = EndpointHealth::new(endpoint_seed("meteor/n1"));
        let policy = policy();
        for t in [10, 20, 30] {
            health.record_failure(t, &policy);
        }
        let first_delay = match health.breaker {
            BreakerState::Open { until } => until - 30,
            other => panic!("unexpected {other:?}"),
        };
        health.begin_attempt(60);
        assert_eq!(health.breaker, BreakerState::HalfOpen);
        health.record_failure(60, &policy);
        let second_delay = match health.breaker {
            BreakerState::Open { until } => until - 60,
            other => panic!("unexpected {other:?}"),
        };
        assert!(second_delay >= first_delay, "backoff grows");
        health.begin_attempt(200);
        health.record_success(200);
        assert_eq!(health.breaker, BreakerState::Closed);
        assert_eq!(health.consecutive_failures, 0);
        assert_eq!(health.last_ok, Some(200));
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let health = EndpointHealth::new(endpoint_seed("attic-gmeta"));
        let policy = policy();
        let mut previous = 0;
        for step in 1..100 {
            let delay = health.backoff_delay(step, &policy);
            assert!(delay >= previous, "step {step}: {delay} < {previous}");
            assert!(delay <= policy.backoff_max_secs);
            previous = delay;
        }
        assert_eq!(previous, policy.backoff_max_secs, "cap reached");
    }

    #[test]
    fn policies_validate() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy {
            backoff_base_secs: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            backoff_base_secs: 100,
            backoff_max_secs: 50,
            breaker_threshold: 3,
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            breaker_threshold: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(LifecyclePolicy::default().validate().is_ok());
        assert!(LifecyclePolicy {
            down_after_secs: 0,
            expire_after_secs: 10,
        }
        .validate()
        .is_err());
        assert!(LifecyclePolicy {
            down_after_secs: 60,
            expire_after_secs: 60,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn jitter_is_deterministic_per_endpoint() {
        let a = EndpointHealth::new(endpoint_seed("meteor/n0"));
        let b = EndpointHealth::new(endpoint_seed("meteor/n0"));
        let c = EndpointHealth::new(endpoint_seed("meteor/n1"));
        // A base large enough that sub-percent jitter differences
        // survive the truncation to whole seconds.
        let policy = RetryPolicy {
            backoff_base_secs: 100_000,
            backoff_max_secs: 100_000_000,
            breaker_threshold: 3,
        };
        assert_eq!(a.backoff_delay(2, &policy), b.backoff_delay(2, &policy));
        // Different endpoints de-synchronize (these two seeds do differ).
        assert_ne!(a.backoff_delay(2, &policy), c.backoff_delay(2, &policy));
    }
}
