//! Alarm rules: what to watch and when to complain.

use ganglia_query::RegexLite;

/// Selects clusters or hosts by name.
#[derive(Debug, Clone)]
pub enum Matcher {
    /// Matches everything.
    Any,
    /// Exact name.
    Exact(String),
    /// Regular-expression match (search semantics).
    Pattern(RegexLite),
}

impl Matcher {
    /// Whether `name` is selected.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            Matcher::Any => true,
            Matcher::Exact(exact) => exact == name,
            Matcher::Pattern(re) => re.is_match(name),
        }
    }

    /// Parse the rule-file syntax: `*` = any, `~re` = pattern, anything
    /// else exact.
    pub fn parse(raw: &str) -> Result<Matcher, String> {
        if raw == "*" {
            return Ok(Matcher::Any);
        }
        if let Some(pattern) = raw.strip_prefix('~') {
            return RegexLite::new(pattern)
                .map(Matcher::Pattern)
                .map_err(|e| e.to_string());
        }
        Ok(Matcher::Exact(raw.to_string()))
    }
}

/// What quantity a rule watches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signal {
    /// A numeric metric by name. On a host subject this is the value; on
    /// a cluster/grid subject it is the summary **mean** (the only
    /// statistic summaries support besides the sum, paper §3.2).
    Metric(String),
    /// The number of hosts currently down in a cluster/grid summary.
    HostsDown,
}

/// The alarm condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Comparison {
    Above(f64),
    Below(f64),
}

impl Comparison {
    /// Whether `value` violates the condition (i.e. should alarm).
    pub fn violated_by(&self, value: f64) -> bool {
        match self {
            Comparison::Above(limit) => value > *limit,
            Comparison::Below(limit) => value < *limit,
        }
    }
}

/// One alarm rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule identifier (unique within an engine).
    pub name: String,
    /// Which clusters/grids to inspect.
    pub cluster: Matcher,
    /// Which hosts to inspect; `None` makes this a summary-level rule.
    pub host: Option<Matcher>,
    /// The watched quantity.
    pub signal: Signal,
    /// When to complain.
    pub comparison: Comparison,
    /// Seconds the condition must hold before the alarm fires (0 =
    /// immediately).
    pub hold_secs: u64,
}

impl Rule {
    /// A summary-level rule over cluster/grid reductions.
    pub fn summary(
        name: impl Into<String>,
        cluster: Matcher,
        signal: Signal,
        comparison: Comparison,
    ) -> Rule {
        Rule {
            name: name.into(),
            cluster,
            host: None,
            signal,
            comparison,
            hold_secs: 0,
        }
    }

    /// A host-level rule over full-resolution cluster views.
    pub fn per_host(
        name: impl Into<String>,
        cluster: Matcher,
        host: Matcher,
        metric: impl Into<String>,
        comparison: Comparison,
    ) -> Rule {
        Rule {
            name: name.into(),
            cluster,
            host: Some(host),
            signal: Signal::Metric(metric.into()),
            comparison,
            hold_secs: 0,
        }
    }

    /// Builder: require the condition to hold for `secs` seconds.
    pub fn hold_for(mut self, secs: u64) -> Rule {
        self.hold_secs = secs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_semantics() {
        assert!(Matcher::Any.matches("anything"));
        assert!(Matcher::parse("meteor").unwrap().matches("meteor"));
        assert!(!Matcher::parse("meteor").unwrap().matches("meteor2"));
        let pattern = Matcher::parse("~^compute-\\d+$").unwrap();
        assert!(pattern.matches("compute-42"));
        assert!(!pattern.matches("compute-x"));
        assert!(Matcher::parse("~(").is_err());
        assert!(Matcher::parse("*").unwrap().matches("x"));
    }

    #[test]
    fn comparison_semantics() {
        assert!(Comparison::Above(5.0).violated_by(5.1));
        assert!(!Comparison::Above(5.0).violated_by(5.0));
        assert!(Comparison::Below(1.0).violated_by(0.5));
        assert!(!Comparison::Below(1.0).violated_by(1.0));
    }

    #[test]
    fn builders() {
        let rule = Rule::summary(
            "grid-load",
            Matcher::Any,
            Signal::Metric("load_one".into()),
            Comparison::Above(4.0),
        )
        .hold_for(60);
        assert_eq!(rule.hold_secs, 60);
        assert!(rule.host.is_none());
        let rule = Rule::per_host(
            "hot-host",
            Matcher::Exact("meteor".into()),
            Matcher::Any,
            "load_one",
            Comparison::Above(8.0),
        );
        assert!(rule.host.is_some());
    }
}
