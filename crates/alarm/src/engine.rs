//! The alarm state machine and document walker.

use std::collections::HashMap;

use ganglia_metrics::model::{
    ClusterBody, ClusterNode, GangliaDoc, GridBody, GridItem, SummaryBody,
};

use crate::rule::{Rule, Signal};
use crate::sink::AlarmSink;

/// Alarm lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmStatus {
    /// Condition not violated.
    Ok,
    /// Violated, waiting out `hold_secs` (since the recorded time).
    Pending { since: u64 },
    /// Alarm raised.
    Firing { since: u64 },
}

/// A state transition worth telling a human about.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmEvent {
    pub rule: String,
    /// `cluster` or `cluster/host`.
    pub subject: String,
    pub kind: AlarmKind,
    /// The observed value at the transition.
    pub value: f64,
    pub at: u64,
}

/// The transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmKind {
    Raised,
    Cleared,
}

/// Evaluates rules against monitoring documents.
pub struct AlarmEngine {
    rules: Vec<Rule>,
    states: HashMap<(String, String), AlarmStatus>,
}

impl AlarmEngine {
    /// An engine with a rule set.
    pub fn new(rules: Vec<Rule>) -> AlarmEngine {
        AlarmEngine {
            rules,
            states: HashMap::new(),
        }
    }

    /// The current status of one `(rule, subject)` pair.
    pub fn status(&self, rule: &str, subject: &str) -> AlarmStatus {
        self.states
            .get(&(rule.to_string(), subject.to_string()))
            .copied()
            .unwrap_or(AlarmStatus::Ok)
    }

    /// All currently-firing `(rule, subject)` pairs.
    pub fn firing(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .states
            .iter()
            .filter(|(_, s)| matches!(s, AlarmStatus::Firing { .. }))
            .map(|(k, _)| k.clone())
            .collect();
        out.sort();
        out
    }

    /// Evaluate every rule against `doc` at time `now`, delivering
    /// transitions to `sink` and returning them.
    pub fn evaluate(
        &mut self,
        doc: &GangliaDoc,
        now: u64,
        sink: &dyn AlarmSink,
    ) -> Vec<AlarmEvent> {
        // Gather observations per rule, then drive the state machine.
        let mut observations: Vec<(String, String, f64)> = Vec::new();
        for rule in &self.rules {
            walk_items(&doc.items, rule, &mut observations);
        }
        self.apply_observations(observations, now, sink)
    }

    /// Drive the hysteresis state machine with pre-gathered
    /// `(rule name, subject, value)` observations — the document walker
    /// above and the GQL subscription feed ([`crate::feed`]) both end
    /// here, so the two ingest paths share one lifecycle.
    pub fn apply_observations(
        &mut self,
        observations: Vec<(String, String, f64)>,
        now: u64,
        sink: &dyn AlarmSink,
    ) -> Vec<AlarmEvent> {
        let mut events = Vec::new();
        for (rule_name, subject, value) in observations {
            // An observation for a rule this engine doesn't know is
            // dropped rather than panicking: feeds are configured
            // separately from the engine.
            let Some(rule) = self.rules.iter().find(|r| r.name == rule_name) else {
                continue;
            };
            let violated = rule.comparison.violated_by(value);
            let key = (rule_name.clone(), subject.clone());
            let current = self.states.get(&key).copied().unwrap_or(AlarmStatus::Ok);
            let next = match (current, violated) {
                (AlarmStatus::Ok, true) => {
                    if rule.hold_secs == 0 {
                        events.push(AlarmEvent {
                            rule: rule_name,
                            subject,
                            kind: AlarmKind::Raised,
                            value,
                            at: now,
                        });
                        AlarmStatus::Firing { since: now }
                    } else {
                        AlarmStatus::Pending { since: now }
                    }
                }
                (AlarmStatus::Pending { since }, true) => {
                    if now.saturating_sub(since) >= rule.hold_secs {
                        events.push(AlarmEvent {
                            rule: rule_name,
                            subject,
                            kind: AlarmKind::Raised,
                            value,
                            at: now,
                        });
                        AlarmStatus::Firing { since }
                    } else {
                        AlarmStatus::Pending { since }
                    }
                }
                (AlarmStatus::Firing { since }, true) => AlarmStatus::Firing { since },
                (AlarmStatus::Firing { .. }, false) => {
                    events.push(AlarmEvent {
                        rule: rule_name,
                        subject,
                        kind: AlarmKind::Cleared,
                        value,
                        at: now,
                    });
                    AlarmStatus::Ok
                }
                (_, false) => AlarmStatus::Ok,
            };
            if next == AlarmStatus::Ok {
                self.states.remove(&key);
            } else {
                self.states.insert(key, next);
            }
        }
        for event in &events {
            sink.notify(event);
        }
        events
    }
}

/// Collect `(rule, subject, value)` observations from grid items,
/// descending nested grids.
fn walk_items(items: &[GridItem], rule: &Rule, out: &mut Vec<(String, String, f64)>) {
    for item in items {
        match item {
            GridItem::Cluster(cluster) => observe_cluster(cluster, rule, out),
            GridItem::Grid(grid) => {
                if rule.host.is_none() && rule.cluster.matches(&grid.name) {
                    let summary = grid.summary();
                    if let Some(value) = summary_signal(&summary, &rule.signal) {
                        out.push((rule.name.clone(), grid.name.clone(), value));
                    }
                }
                if let GridBody::Items(inner) = &grid.body {
                    walk_items(inner, rule, out);
                }
            }
        }
    }
}

fn observe_cluster(cluster: &ClusterNode, rule: &Rule, out: &mut Vec<(String, String, f64)>) {
    if !rule.cluster.matches(&cluster.name) {
        return;
    }
    match &rule.host {
        None => {
            let summary = cluster.summary();
            if let Some(value) = summary_signal(&summary, &rule.signal) {
                out.push((rule.name.clone(), cluster.name.clone(), value));
            }
        }
        Some(host_matcher) => {
            let Signal::Metric(metric) = &rule.signal else {
                return; // HostsDown is summary-only
            };
            let ClusterBody::Hosts(hosts) = &cluster.body else {
                return; // summary-form cluster has no host detail
            };
            for host in hosts {
                if !host_matcher.matches(&host.name) {
                    continue;
                }
                if let Some(value) = host.metric(metric).and_then(|m| m.value.as_f64()) {
                    out.push((
                        rule.name.clone(),
                        format!("{}/{}", cluster.name, host.name),
                        value,
                    ));
                }
            }
        }
    }
}

fn summary_signal(summary: &SummaryBody, signal: &Signal) -> Option<f64> {
    match signal {
        Signal::HostsDown => Some(f64::from(summary.hosts_down)),
        Signal::Metric(name) => summary.metric(name).and_then(|m| m.mean()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Comparison, Matcher};
    use crate::sink::MemorySink;
    use ganglia_metrics::model::{GridNode, HostNode, MetricEntry};
    use ganglia_metrics::MetricValue;

    fn doc_with_load(load: f64, hosts_down: usize) -> GangliaDoc {
        let hosts: Vec<HostNode> = (0..4)
            .map(|i| {
                let mut h = HostNode::new(format!("n{i}"), "10.0.0.1");
                if i < hosts_down {
                    h.tn = 10_000;
                }
                h.metrics
                    .push(MetricEntry::new("load_one", MetricValue::Double(load)));
                h
            })
            .collect();
        let cluster = ClusterNode::with_hosts("meteor", hosts);
        GangliaDoc::gmond(cluster)
    }

    #[test]
    fn immediate_rule_raises_and_clears() {
        let rules = vec![Rule::summary(
            "load-high",
            Matcher::Exact("meteor".into()),
            Signal::Metric("load_one".into()),
            Comparison::Above(2.0),
        )];
        let mut engine = AlarmEngine::new(rules);
        let sink = MemorySink::new();

        let events = engine.evaluate(&doc_with_load(3.0, 0), 10, &sink);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlarmKind::Raised);
        assert_eq!(events[0].subject, "meteor");
        assert_eq!(engine.firing().len(), 1);

        // Still violated: no new events.
        assert!(engine
            .evaluate(&doc_with_load(3.5, 0), 25, &sink)
            .is_empty());

        // Recovered: cleared.
        let events = engine.evaluate(&doc_with_load(0.5, 0), 40, &sink);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlarmKind::Cleared);
        assert!(engine.firing().is_empty());
        assert_eq!(sink.events().len(), 2);
    }

    #[test]
    fn hold_secs_requires_persistence() {
        let rules = vec![Rule::summary(
            "load-high",
            Matcher::Any,
            Signal::Metric("load_one".into()),
            Comparison::Above(2.0),
        )
        .hold_for(30)];
        let mut engine = AlarmEngine::new(rules);
        let sink = MemorySink::new();

        assert!(engine.evaluate(&doc_with_load(3.0, 0), 0, &sink).is_empty());
        assert_eq!(
            engine.status("load-high", "meteor"),
            AlarmStatus::Pending { since: 0 }
        );
        // A dip resets the pending state.
        assert!(engine
            .evaluate(&doc_with_load(1.0, 0), 15, &sink)
            .is_empty());
        assert_eq!(engine.status("load-high", "meteor"), AlarmStatus::Ok);
        // Violation must persist the full hold time.
        assert!(engine
            .evaluate(&doc_with_load(3.0, 0), 30, &sink)
            .is_empty());
        assert!(engine
            .evaluate(&doc_with_load(3.0, 0), 45, &sink)
            .is_empty());
        let events = engine.evaluate(&doc_with_load(3.0, 0), 60, &sink);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, AlarmKind::Raised);
    }

    #[test]
    fn hosts_down_rule() {
        let rules = vec![Rule::summary(
            "dead-hosts",
            Matcher::Any,
            Signal::HostsDown,
            Comparison::Above(0.0),
        )];
        let mut engine = AlarmEngine::new(rules);
        let sink = MemorySink::new();
        assert!(engine.evaluate(&doc_with_load(1.0, 0), 0, &sink).is_empty());
        let events = engine.evaluate(&doc_with_load(1.0, 2), 15, &sink);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value, 2.0);
    }

    #[test]
    fn per_host_rule_tracks_each_host() {
        let rules = vec![Rule::per_host(
            "hot",
            Matcher::Any,
            Matcher::Pattern(ganglia_query::RegexLite::new("^n[01]$").unwrap()),
            "load_one",
            Comparison::Above(2.0),
        )];
        let mut engine = AlarmEngine::new(rules);
        let sink = MemorySink::new();
        let events = engine.evaluate(&doc_with_load(5.0, 0), 0, &sink);
        // Only n0 and n1 match the host pattern.
        assert_eq!(events.len(), 2);
        let subjects: Vec<&str> = events.iter().map(|e| e.subject.as_str()).collect();
        assert_eq!(subjects, vec!["meteor/n0", "meteor/n1"]);
    }

    #[test]
    fn summary_rules_work_on_grid_summaries() {
        // An N-level parent only has the grid's summary — rules still
        // evaluate (on the mean).
        let summary = SummaryBody {
            hosts_up: 10,
            hosts_down: 3,
            metrics: vec![ganglia_metrics::MetricSummary {
                name: "load_one".into(),
                sum: 50.0,
                num: 10,
                ty: ganglia_metrics::MetricType::Float,
                units: Default::default(),
                slope: ganglia_metrics::Slope::Both,
                source: "gmond".into(),
            }],
        };
        let grid = GridNode {
            name: "attic".into(),
            authority: String::new(),
            localtime: None,
            body: GridBody::Summary(summary),
        };
        let doc = GangliaDoc {
            version: "2.5.4".into(),
            source: "gmetad".into(),
            items: vec![GridItem::Grid(grid)],
        };
        let rules = vec![
            Rule::summary(
                "grid-load",
                Matcher::Any,
                Signal::Metric("load_one".into()),
                Comparison::Above(4.0),
            ),
            Rule::summary(
                "grid-dead",
                Matcher::Any,
                Signal::HostsDown,
                Comparison::Above(2.0),
            ),
        ];
        let mut engine = AlarmEngine::new(rules);
        let sink = MemorySink::new();
        let events = engine.evaluate(&doc, 0, &sink);
        assert_eq!(events.len(), 2, "{events:?}");
    }
}
