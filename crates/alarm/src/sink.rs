//! Where alarm transitions go.

use std::sync::Mutex;

use crate::engine::AlarmEvent;

/// Receives alarm transitions — a pager, a log, a dashboard.
pub trait AlarmSink {
    /// Deliver one transition.
    fn notify(&self, event: &AlarmEvent);
}

/// Collects events in memory (tests, examples).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<AlarmEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Everything delivered so far.
    pub fn events(&self) -> Vec<AlarmEvent> {
        self.events.lock().expect("not poisoned").clone()
    }
}

impl AlarmSink for MemorySink {
    fn notify(&self, event: &AlarmEvent) {
        self.events
            .lock()
            .expect("not poisoned")
            .push(event.clone());
    }
}

/// Writes one line per transition to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl AlarmSink for StderrSink {
    fn notify(&self, event: &AlarmEvent) {
        eprintln!(
            "[alarm] {:?} {} on {} (value {:.3}) at t={}",
            event.kind, event.rule, event.subject, event.value, event.at
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlarmKind;

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        let event = AlarmEvent {
            rule: "r".into(),
            subject: "s".into(),
            kind: AlarmKind::Raised,
            value: 1.0,
            at: 0,
        };
        sink.notify(&event);
        assert_eq!(sink.events(), vec![event]);
    }
}
