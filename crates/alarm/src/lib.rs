//! Alarm mechanism — the paper's future work, built.
//!
//! "We would like to implement a general alarm mechanism that tracks the
//! data and automatically identify situations that should be relayed to
//! a human observer. This feature will become increasingly important as
//! the size of the monitor tree grows." (paper §5)
//!
//! The engine evaluates [`rule::Rule`]s against Ganglia documents (full
//! detail or summary form — so it works anywhere in the multi-resolution
//! tree) and runs a hysteresis state machine per `(rule, subject)`: a
//! condition must hold for a rule's `hold_secs` before the alarm fires,
//! and an alarm clears only when the condition stops holding. Raised and
//! cleared transitions are delivered to an [`sink::AlarmSink`].
//!
//! Rules can also ride the GQL subscription pipeline instead of
//! re-walking documents: [`feed`] compiles each rule to a continuous
//! query and maps the pushed rows back into the same state machine.

pub mod engine;
pub mod feed;
pub mod rule;
pub mod sink;

pub use engine::{AlarmEngine, AlarmEvent, AlarmKind, AlarmStatus};
pub use feed::{rule_expr, rule_observations, AlarmFeed};
pub use rule::{Comparison, Matcher, Rule, Signal};
pub use sink::{AlarmSink, MemorySink};
