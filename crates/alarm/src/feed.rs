//! Drive the alarm engine from GQL continuous queries.
//!
//! The classic path re-walks the whole monitoring document every round
//! (`AlarmEngine::evaluate`). A gmetad that already evaluates GQL
//! subscriptions after each poll round can instead push each rule's
//! matching rows to the alarm pipeline: every [`Rule`] compiles to one
//! GQL expression ([`rule_expr`]), the resulting rows map back to the
//! engine's `(rule, subject, value)` observations
//! ([`rule_observations`]), and the observations drive the exact same
//! hysteresis state machine via
//! [`AlarmEngine::apply_observations`](crate::engine::AlarmEngine::apply_observations).
//! The two ingest paths are equivalent by construction — and by test
//! (`feed_matches_document_walker` below).
//!
//! [`AlarmFeed`] bundles the compiled queries with an engine for
//! callers that hold documents or row sets; subscription clients can
//! instead pull [`AlarmFeed::expressions`], subscribe each one, and
//! hand mirrored rows to [`AlarmFeed::apply_rows`].

use ganglia_metrics::model::GangliaDoc;
use ganglia_query::gql::{GqlQuery, Row, HOSTS_DOWN};

use crate::engine::{AlarmEngine, AlarmEvent};
use crate::rule::{Matcher, Rule, Signal};
use crate::sink::AlarmSink;

/// Quote a literal for embedding in a GQL expression.
fn quote(lit: &str) -> String {
    let mut out = String::with_capacity(lit.len() + 2);
    out.push('"');
    for c in lit.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn matcher_stage(field: &str, matcher: &Matcher) -> Option<String> {
    match matcher {
        Matcher::Any => None,
        Matcher::Exact(name) => Some(format!("{field} == {}", quote(name))),
        Matcher::Pattern(re) => Some(format!("{field} ~ {}", quote(re.pattern()))),
    }
}

/// The GQL expression equivalent to one alarm rule, or `None` for the
/// one unrepresentable (and meaningless) combination: a per-host rule
/// watching the summary-only `HostsDown` signal, which the document
/// walker also never observes.
pub fn rule_expr(rule: &Rule) -> Option<String> {
    let mut stages: Vec<String> = Vec::new();
    match &rule.host {
        None => {
            stages.push("summary".to_string());
            stages.extend(matcher_stage("cluster", &rule.cluster));
            let metric = match &rule.signal {
                Signal::Metric(name) => name.as_str(),
                Signal::HostsDown => HOSTS_DOWN,
            };
            stages.push(format!("metric == {}", quote(metric)));
        }
        Some(host) => {
            let Signal::Metric(metric) = &rule.signal else {
                return None; // HostsDown is summary-only
            };
            stages.extend(matcher_stage("cluster", &rule.cluster));
            stages.extend(matcher_stage("host", host));
            stages.push(format!("metric == {}", quote(metric)));
        }
    }
    Some(stages.join(" | "))
}

/// Map one rule's GQL result rows back to engine observations. Summary
/// rules subject on the cluster/grid name (the summary row's CLUSTER
/// column carries both); per-host rules subject on `cluster/host`.
/// Rows without a numeric value observe nothing, exactly as the
/// document walker skips them.
pub fn rule_observations(rule: &Rule, rows: &[Row]) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let Some(value) = row.value else { continue };
        let subject = if rule.host.is_none() {
            row.cluster.clone()
        } else {
            format!("{}/{}", row.cluster, row.host)
        };
        out.push((rule.name.clone(), subject, value));
    }
    out
}

/// One rule with its compiled continuous query.
struct CompiledRule {
    rule: Rule,
    query: GqlQuery,
}

/// An alarm engine fed by GQL queries instead of document walks.
pub struct AlarmFeed {
    engine: AlarmEngine,
    compiled: Vec<CompiledRule>,
}

impl AlarmFeed {
    /// Compile each rule to its GQL expression. Rules that compile to
    /// nothing (per-host `HostsDown`) are carried by the engine but
    /// never observe anything, same as under the walker.
    pub fn new(rules: Vec<Rule>) -> AlarmFeed {
        let compiled = rules
            .iter()
            .filter_map(|rule| {
                let source = rule_expr(rule)?;
                let query = GqlQuery::parse(&source)
                    .unwrap_or_else(|e| panic!("generated GQL {source:?} must parse: {e:?}"));
                Some(CompiledRule {
                    rule: rule.clone(),
                    query,
                })
            })
            .collect();
        AlarmFeed {
            engine: AlarmEngine::new(rules),
            compiled,
        }
    }

    /// The underlying engine (status queries).
    pub fn engine(&self) -> &AlarmEngine {
        &self.engine
    }

    /// `(rule name, GQL source)` pairs — what a subscription client
    /// sends as `#subscribe` expressions, one per rule.
    pub fn expressions(&self) -> Vec<(&str, &str)> {
        self.compiled
            .iter()
            .map(|c| (c.rule.name.as_str(), c.query.source()))
            .collect()
    }

    /// Evaluate every rule's query against a full document and drive
    /// the state machine. Equivalent to `AlarmEngine::evaluate`.
    pub fn evaluate_doc(
        &mut self,
        doc: &GangliaDoc,
        now: u64,
        sink: &dyn AlarmSink,
    ) -> Vec<AlarmEvent> {
        let mut observations = Vec::new();
        for c in &self.compiled {
            let rows = c.query.evaluate_doc(doc);
            observations.extend(rule_observations(&c.rule, &rows));
        }
        self.engine.apply_observations(observations, now, sink)
    }

    /// Drive the state machine with externally evaluated rows (e.g. a
    /// subscription mirror), keyed by rule name. Rules without an entry
    /// observe nothing this round.
    pub fn apply_rows(
        &mut self,
        rows_by_rule: &[(&str, &[Row])],
        now: u64,
        sink: &dyn AlarmSink,
    ) -> Vec<AlarmEvent> {
        let mut observations = Vec::new();
        for c in &self.compiled {
            if let Some((_, rows)) = rows_by_rule.iter().find(|(name, _)| *name == c.rule.name) {
                observations.extend(rule_observations(&c.rule, rows));
            }
        }
        self.engine.apply_observations(observations, now, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Comparison;
    use crate::sink::MemorySink;
    use ganglia_metrics::model::{
        ClusterNode, GridBody, GridItem, GridNode, HostNode, MetricEntry,
    };
    use ganglia_metrics::MetricValue;
    use ganglia_query::RegexLite;

    fn test_doc() -> GangliaDoc {
        // Two clusters with hosts plus a summary-only remote grid, so
        // every observation path (cluster summary, grid summary,
        // per-host) is exercised.
        let mk_cluster = |name: &str, loads: &[f64], down: usize| {
            let hosts: Vec<HostNode> = loads
                .iter()
                .enumerate()
                .map(|(i, load)| {
                    let mut h = HostNode::new(format!("n{i}"), "10.0.0.1");
                    if i < down {
                        h.tn = 10_000;
                    }
                    h.metrics
                        .push(MetricEntry::new("load_one", MetricValue::Double(*load)));
                    h
                })
                .collect();
            ClusterNode::with_hosts(name, hosts)
        };
        let meteor = mk_cluster("meteor", &[6.0, 1.0, 0.5, 9.0], 1);
        let nashi = mk_cluster("nashi", &[0.1, 0.2], 0);
        let attic = GridNode {
            name: "attic".into(),
            authority: String::new(),
            localtime: None,
            body: GridBody::Summary(meteor.summary()),
        };
        GangliaDoc {
            version: "2.5.4".into(),
            source: "gmetad".into(),
            items: vec![
                GridItem::Cluster(meteor),
                GridItem::Cluster(nashi),
                GridItem::Grid(attic),
            ],
        }
    }

    fn test_rules() -> Vec<Rule> {
        vec![
            Rule::summary(
                "load-high",
                Matcher::Any,
                Signal::Metric("load_one".into()),
                Comparison::Above(2.0),
            ),
            Rule::summary(
                "dead-hosts",
                Matcher::Pattern(RegexLite::new("^(meteor|attic)$").unwrap()),
                Signal::HostsDown,
                Comparison::Above(0.0),
            ),
            Rule::per_host(
                "hot",
                Matcher::Exact("meteor".into()),
                Matcher::Pattern(RegexLite::new("^n[03]$").unwrap()),
                "load_one",
                Comparison::Above(5.0),
            )
            .hold_for(30),
        ]
    }

    #[test]
    fn rule_exprs_compile() {
        for rule in test_rules() {
            let source = rule_expr(&rule).unwrap();
            GqlQuery::parse(&source)
                .unwrap_or_else(|e| panic!("{source:?} failed to parse: {e:?}"));
        }
        // The summary-only signal on a per-host rule is unrepresentable.
        let bogus = Rule {
            name: "bogus".into(),
            cluster: Matcher::Any,
            host: Some(Matcher::Any),
            signal: Signal::HostsDown,
            comparison: Comparison::Above(0.0),
            hold_secs: 0,
        };
        assert_eq!(rule_expr(&bogus), None);
    }

    #[test]
    fn literals_are_quoted() {
        let rule = Rule::summary(
            "odd",
            Matcher::Exact("we\"ird\\name".into()),
            Signal::Metric("load one".into()),
            Comparison::Above(0.0),
        );
        let source = rule_expr(&rule).unwrap();
        let query = GqlQuery::parse(&source).unwrap();
        assert_eq!(query.source(), source);
    }

    #[test]
    fn feed_matches_document_walker() {
        // The GQL feed and the document walker must produce identical
        // event streams over a multi-round scenario that raises, holds
        // and clears alarms.
        let doc = test_doc();
        let mut walker = AlarmEngine::new(test_rules());
        let mut feed = AlarmFeed::new(test_rules());
        let walker_sink = MemorySink::new();
        let feed_sink = MemorySink::new();
        for now in [0_u64, 15, 30, 45, 60] {
            let mut from_walker = walker.evaluate(&doc, now, &walker_sink);
            let mut from_feed = feed.evaluate_doc(&doc, now, &feed_sink);
            let key = |e: &AlarmEvent| (e.rule.clone(), e.subject.clone());
            from_walker.sort_by_key(&key);
            from_feed.sort_by_key(&key);
            assert_eq!(from_walker, from_feed, "diverged at t={now}");
        }
        assert_eq!(walker.firing(), feed.engine().firing());
        assert!(
            !walker_sink.events().is_empty(),
            "scenario must actually fire alarms"
        );
    }

    #[test]
    fn apply_rows_drives_the_engine() {
        let mut feed = AlarmFeed::new(vec![Rule::summary(
            "load-high",
            Matcher::Any,
            Signal::Metric("load_one".into()),
            Comparison::Above(2.0),
        )]);
        let exprs = feed.expressions();
        assert_eq!(exprs.len(), 1);
        assert_eq!(exprs[0].0, "load-high");
        // Rows as a subscription mirror would hold them.
        let query = GqlQuery::parse(exprs[0].1).unwrap();
        let rows = query.evaluate_doc(&test_doc());
        let sink = MemorySink::new();
        // Both the meteor cluster and the attic grid (whose summary
        // mirrors meteor's) breach the threshold; nashi does not.
        let mut events = feed.apply_rows(&[("load-high", &rows)], 0, &sink);
        events.sort_by(|a, b| a.subject.cmp(&b.subject));
        let subjects: Vec<&str> = events.iter().map(|e| e.subject.as_str()).collect();
        assert_eq!(subjects, vec!["attic", "meteor"], "{events:?}");
    }
}
