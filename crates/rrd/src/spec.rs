//! Database specifications: data sources, archives, and the default
//! archive ladder Ganglia's gmetad creates for every metric.

use crate::error::RrdError;

/// How primary data points are consolidated into an archive row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsolidationFn {
    Average,
    Min,
    Max,
    Last,
}

impl ConsolidationFn {
    /// Canonical rrdtool spelling.
    pub fn name(self) -> &'static str {
        match self {
            ConsolidationFn::Average => "AVERAGE",
            ConsolidationFn::Min => "MIN",
            ConsolidationFn::Max => "MAX",
            ConsolidationFn::Last => "LAST",
        }
    }

    pub(crate) fn to_u8(self) -> u8 {
        match self {
            ConsolidationFn::Average => 0,
            ConsolidationFn::Min => 1,
            ConsolidationFn::Max => 2,
            ConsolidationFn::Last => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => ConsolidationFn::Average,
            1 => ConsolidationFn::Min,
            2 => ConsolidationFn::Max,
            3 => ConsolidationFn::Last,
            _ => return None,
        })
    }
}

/// How raw update values become rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataSourceType {
    /// Store the value as-is (load averages, temperatures, ...).
    #[default]
    Gauge,
    /// A monotonically increasing counter; stores the per-second rate.
    /// A decrease is treated as unknown (counter reset).
    Counter,
    /// Like counter but decreases are legal (stores signed rate).
    Derive,
    /// The value is the delta since the last update; divided by the
    /// interval to give a rate.
    Absolute,
}

impl DataSourceType {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            DataSourceType::Gauge => 0,
            DataSourceType::Counter => 1,
            DataSourceType::Derive => 2,
            DataSourceType::Absolute => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => DataSourceType::Gauge,
            1 => DataSourceType::Counter,
            2 => DataSourceType::Derive,
            3 => DataSourceType::Absolute,
            _ => return None,
        })
    }
}

/// One data source within a database.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSourceDef {
    pub name: String,
    pub dst: DataSourceType,
    /// Seconds of silence after which the source is unknown.
    pub heartbeat: u64,
    /// Values below this are clamped to unknown (`NAN` = unbounded).
    pub min: f64,
    /// Values above this are clamped to unknown (`NAN` = unbounded).
    pub max: f64,
}

impl DataSourceDef {
    /// A gauge with the given heartbeat and no bounds.
    pub fn gauge(name: impl Into<String>, heartbeat: u64) -> Self {
        DataSourceDef {
            name: name.into(),
            dst: DataSourceType::Gauge,
            heartbeat,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    /// Whether `rate` violates the min/max bounds.
    pub(crate) fn out_of_bounds(&self, rate: f64) -> bool {
        (!self.min.is_nan() && rate < self.min) || (!self.max.is_nan() && rate > self.max)
    }
}

/// One round-robin archive: `rows` consolidated values, each covering
/// `pdp_per_row` primary steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RraDef {
    pub cf: ConsolidationFn,
    /// X-files factor: the fraction of a row's window that may be unknown
    /// while the row is still considered known.
    pub xff: f64,
    /// Primary data points consolidated into one row.
    pub pdp_per_row: usize,
    /// Ring capacity.
    pub rows: usize,
}

impl RraDef {
    /// Convenience constructor for an AVERAGE archive with xff 0.5.
    pub fn average(pdp_per_row: usize, rows: usize) -> Self {
        RraDef {
            cf: ConsolidationFn::Average,
            xff: 0.5,
            pdp_per_row,
            rows,
        }
    }
}

/// A complete database specification.
#[derive(Debug, Clone, PartialEq)]
pub struct RrdSpec {
    /// Seconds per primary data point.
    pub step: u64,
    /// Timestamp the database starts at; the first update must be later.
    pub start: u64,
    pub data_sources: Vec<DataSourceDef>,
    pub archives: Vec<RraDef>,
}

impl RrdSpec {
    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), RrdError> {
        if self.step == 0 {
            return Err(RrdError::BadSpec("step must be positive"));
        }
        if self.data_sources.is_empty() {
            return Err(RrdError::BadSpec("at least one data source required"));
        }
        if self.archives.is_empty() {
            return Err(RrdError::BadSpec("at least one archive required"));
        }
        for rra in &self.archives {
            if rra.pdp_per_row == 0 || rra.rows == 0 {
                return Err(RrdError::BadSpec("archive dimensions must be positive"));
            }
            if !(0.0..1.0).contains(&rra.xff) {
                return Err(RrdError::BadSpec("xff must be in [0, 1)"));
            }
        }
        Ok(())
    }

    /// Total number of stored cells, a proxy for the constant on-disk
    /// footprint.
    pub fn cell_count(&self) -> usize {
        self.data_sources.len() * self.archives.iter().map(|r| r.rows).sum::<usize>()
    }
}

/// The archive ladder gmetad 2.5 creates for each metric (step 15 s):
/// full resolution for about an hour, then progressively lossier
/// consolidation out to roughly a year — "we can see a metric's history
/// over the past year but with less resolution than if we ask about more
/// recent behavior" (paper §3.1).
pub fn ganglia_default_spec(metric: impl Into<String>, start: u64) -> RrdSpec {
    RrdSpec {
        step: 15,
        start,
        data_sources: vec![DataSourceDef::gauge(metric, 120)],
        archives: vec![
            RraDef::average(1, 244),    // ~1 hour at 15 s
            RraDef::average(24, 244),   // ~1 day at 6 min
            RraDef::average(168, 244),  // ~1 week at 42 min
            RraDef::average(672, 244),  // ~1 month at 2.8 h
            RraDef::average(5760, 374), // ~1 year at 24 h
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid_and_constant_size() {
        let spec = ganglia_default_spec("load_one", 0);
        spec.validate().unwrap();
        assert_eq!(spec.cell_count(), 244 * 4 + 374);
    }

    #[test]
    fn validation_catches_degenerate_specs() {
        let mut spec = ganglia_default_spec("m", 0);
        spec.step = 0;
        assert!(spec.validate().is_err());

        let mut spec = ganglia_default_spec("m", 0);
        spec.data_sources.clear();
        assert!(spec.validate().is_err());

        let mut spec = ganglia_default_spec("m", 0);
        spec.archives[0].xff = 1.0;
        assert!(spec.validate().is_err());

        let mut spec = ganglia_default_spec("m", 0);
        spec.archives[0].rows = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn cf_and_dst_codes_roundtrip() {
        for cf in [
            ConsolidationFn::Average,
            ConsolidationFn::Min,
            ConsolidationFn::Max,
            ConsolidationFn::Last,
        ] {
            assert_eq!(ConsolidationFn::from_u8(cf.to_u8()), Some(cf));
        }
        assert_eq!(ConsolidationFn::from_u8(9), None);
        for dst in [
            DataSourceType::Gauge,
            DataSourceType::Counter,
            DataSourceType::Derive,
            DataSourceType::Absolute,
        ] {
            assert_eq!(DataSourceType::from_u8(dst.to_u8()), Some(dst));
        }
        assert_eq!(DataSourceType::from_u8(9), None);
    }

    #[test]
    fn bounds_checking() {
        let ds = DataSourceDef {
            name: "x".into(),
            dst: DataSourceType::Gauge,
            heartbeat: 60,
            min: 0.0,
            max: 100.0,
        };
        assert!(ds.out_of_bounds(-1.0));
        assert!(ds.out_of_bounds(101.0));
        assert!(!ds.out_of_bounds(50.0));
        let unbounded = DataSourceDef::gauge("y", 60);
        assert!(!unbounded.out_of_bounds(f64::MAX));
    }
}
