//! The round-robin database engine: update stepping, consolidation, and
//! time-range fetches.

use crate::error::RrdError;
use crate::spec::{ConsolidationFn, DataSourceType, RraDef, RrdSpec};

/// One round-robin archive and its consolidation state.
#[derive(Debug, Clone)]
pub(crate) struct Archive {
    pub(crate) def: RraDef,
    /// Per-data-source consolidation accumulator for the row in progress.
    pub(crate) cdp_agg: Vec<f64>,
    pub(crate) cdp_known: Vec<u32>,
    /// PDPs accumulated toward the current row (same for every DS).
    pub(crate) steps_in_cdp: usize,
    /// Ring buffer, row-major: `rows * ds_count` cells.
    pub(crate) data: Vec<f64>,
    /// Slot that the next completed row will be written to.
    pub(crate) next: usize,
    /// Number of rows ever written (saturates at `rows`).
    pub(crate) written: usize,
    /// Timestamp of the most recently completed row (its interval end).
    pub(crate) last_row_time: u64,
}

impl Archive {
    fn new(def: RraDef, ds_count: usize, initial_phase: usize) -> Self {
        Archive {
            def,
            cdp_agg: vec![f64::NAN; ds_count],
            cdp_known: vec![0; ds_count],
            steps_in_cdp: initial_phase,
            data: vec![f64::NAN; def.rows * ds_count],
            next: 0,
            written: 0,
            last_row_time: 0,
        }
    }

    fn row_secs(&self, step: u64) -> u64 {
        step * self.def.pdp_per_row as u64
    }

    /// Feed `count` consecutive PDPs, all with the same per-DS values
    /// `pdps`, ending at absolute step index `end_index` (the boundary of
    /// the last fed step is `end_index * step`).
    fn feed_identical(&mut self, pdps: &[f64], mut count: usize, end_index: u64, step: u64) {
        let ds_count = pdps.len();
        let ppr = self.def.pdp_per_row;
        let mut index = end_index - count as u64; // index of last already-consumed step
                                                  // If the feed would lap the ring, only the tail can survive; fast
                                                  // forward over complete rows that are guaranteed to be overwritten.
        let capacity_steps = ppr * self.def.rows;
        if count > capacity_steps + 2 * ppr {
            // Fill the whole ring with the steady-state row for `pdps`,
            // then continue with the remaining (aligned) tail.
            let skip = {
                let excess = count - capacity_steps;
                excess - (excess % ppr)
            };
            // The skipped region consists of whole rows of identical PDPs.
            // Discard any partial row in progress (it is lapped anyway).
            let row = self.steady_state_row(pdps);
            for slot in 0..self.def.rows {
                let base = slot * ds_count;
                self.data[base..base + ds_count].copy_from_slice(&row);
            }
            self.written = self.def.rows;
            index += skip as u64;
            // Rows complete at indexes divisible by ppr; the last completed
            // row before or at `index` is at the aligned boundary.
            let aligned = index - index % ppr as u64;
            self.last_row_time = aligned * step;
            self.next = 0; // ring uniformly filled; any rotation is valid
            self.steps_in_cdp = (index % ppr as u64) as usize;
            self.reset_cdp();
            // Re-accumulate the partial row after the aligned point.
            let partial = self.steps_in_cdp;
            if partial > 0 {
                self.accumulate(pdps, partial);
                // accumulate() advanced steps_in_cdp from the reset value.
                self.steps_in_cdp = partial;
            }
            count -= skip;
        }
        while count > 0 {
            let space = ppr - self.steps_in_cdp;
            let take = space.min(count);
            self.accumulate(pdps, take);
            index += take as u64;
            count -= take;
            if self.steps_in_cdp == ppr {
                self.finalize_row(index * step);
            }
        }
    }

    /// Accumulate `take` copies of `pdps` into the row in progress.
    fn accumulate(&mut self, pdps: &[f64], take: usize) {
        for (i, &v) in pdps.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            let known = self.cdp_known[i];
            let agg = &mut self.cdp_agg[i];
            match self.def.cf {
                ConsolidationFn::Average => {
                    if known == 0 {
                        *agg = v * take as f64;
                    } else {
                        *agg += v * take as f64;
                    }
                }
                ConsolidationFn::Min => {
                    if known == 0 || v < *agg {
                        *agg = v;
                    }
                }
                ConsolidationFn::Max => {
                    if known == 0 || v > *agg {
                        *agg = v;
                    }
                }
                ConsolidationFn::Last => *agg = v,
            }
            self.cdp_known[i] = known + take as u32;
        }
        self.steps_in_cdp += take;
    }

    /// The row value produced by a full window of identical PDPs.
    fn steady_state_row(&self, pdps: &[f64]) -> Vec<f64> {
        // For identical inputs every CF degenerates to the value itself
        // (or unknown, since a full-NAN window always fails the xff test).
        pdps.to_vec()
    }

    /// Complete the row in progress at time `row_time`.
    fn finalize_row(&mut self, row_time: u64) {
        let ppr = self.def.pdp_per_row as f64;
        let ds_count = self.cdp_agg.len();
        let base = self.next * ds_count;
        for i in 0..ds_count {
            let known = self.cdp_known[i];
            let known_frac = f64::from(known) / ppr;
            let value = if known == 0 || known_frac < 1.0 - self.def.xff {
                f64::NAN
            } else {
                match self.def.cf {
                    ConsolidationFn::Average => self.cdp_agg[i] / f64::from(known),
                    _ => self.cdp_agg[i],
                }
            };
            self.data[base + i] = value;
        }
        self.next = (self.next + 1) % self.def.rows;
        self.written = (self.written + 1).min(self.def.rows);
        self.last_row_time = row_time;
        self.reset_cdp();
    }

    fn reset_cdp(&mut self) {
        self.cdp_agg.fill(f64::NAN);
        self.cdp_known.fill(0);
        self.steps_in_cdp = 0;
    }

    /// Value of data source `ds` in the row ending at `row_time`, or NAN
    /// if that row is not available.
    fn lookup(&self, ds: usize, row_time: u64, step: u64) -> f64 {
        let row_secs = self.row_secs(step);
        if self.written == 0 || row_time > self.last_row_time {
            return f64::NAN;
        }
        let back = (self.last_row_time - row_time) / row_secs;
        if back as usize >= self.written {
            return f64::NAN;
        }
        let ds_count = self.cdp_agg.len();
        let rows = self.def.rows;
        // `next` points one past the last written slot.
        let last_slot = (self.next + rows - 1) % rows;
        let slot = (last_slot + rows - back as usize % rows) % rows;
        self.data[slot * ds_count + ds]
    }

    /// Time of the oldest available row (its interval end).
    fn earliest_row_time(&self, step: u64) -> Option<u64> {
        if self.written == 0 {
            return None;
        }
        Some(self.last_row_time - (self.written as u64 - 1) * self.row_secs(step))
    }
}

/// A slice of consolidated history returned by [`Rrd::fetch`].
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Timestamp of the first value (interval end).
    pub start: u64,
    /// Seconds between values.
    pub step: u64,
    /// Consolidated values; `NAN` marks unknown intervals.
    pub values: Vec<f64>,
}

impl Series {
    /// Iterate `(timestamp, value)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start + i as u64 * self.step, v))
    }

    /// Mean of the known values, if any.
    pub fn mean(&self) -> Option<f64> {
        let known: Vec<f64> = self
            .values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        (!known.is_empty()).then(|| known.iter().sum::<f64>() / known.len() as f64)
    }

    /// Number of known (non-NAN) values.
    pub fn known_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }
}

/// A round-robin database: fixed-size, multi-resolution metric history.
///
/// # Examples
///
/// ```
/// use ganglia_rrd::{ganglia_default_spec, ConsolidationFn, Rrd};
///
/// let mut rrd = Rrd::create(ganglia_default_spec("load_one", 0)).unwrap();
/// for i in 1..=20u64 {
///     rrd.update(i * 15, &[0.5 + i as f64 / 100.0]).unwrap();
/// }
/// let series = rrd.fetch(0, ConsolidationFn::Average, 0, 300).unwrap();
/// assert_eq!(series.step, 15);
/// assert!(series.known_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Rrd {
    pub(crate) spec: RrdSpec,
    pub(crate) last_update: u64,
    /// Last raw value per DS (for counter/derive differencing).
    pub(crate) last_raw: Vec<f64>,
    /// Rate × seconds accumulated in the current step, per DS.
    pub(crate) pdp_sum: Vec<f64>,
    /// Known seconds accumulated in the current step, per DS.
    pub(crate) pdp_known: Vec<u64>,
    pub(crate) archives: Vec<Archive>,
    /// Total updates applied (drives the archiving-cost experiments).
    pub(crate) update_count: u64,
}

impl Rrd {
    /// Create a database from a validated spec.
    pub fn create(spec: RrdSpec) -> Result<Rrd, RrdError> {
        spec.validate()?;
        let ds_count = spec.data_sources.len();
        let phase_base = spec.start / spec.step;
        let archives = spec
            .archives
            .iter()
            .map(|&def| {
                let phase = (phase_base % def.pdp_per_row as u64) as usize;
                Archive::new(def, ds_count, phase)
            })
            .collect();
        Ok(Rrd {
            last_update: spec.start,
            last_raw: vec![f64::NAN; ds_count],
            pdp_sum: vec![0.0; ds_count],
            pdp_known: vec![0; ds_count],
            archives,
            update_count: 0,
            spec,
        })
    }

    /// The database's specification.
    pub fn spec(&self) -> &RrdSpec {
        &self.spec
    }

    /// Timestamp of the most recent update.
    pub fn last_update(&self) -> u64 {
        self.last_update
    }

    /// Number of updates applied over the database's lifetime.
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// Apply an update: one raw value per data source at time `t`.
    /// `NAN` values record an explicitly unknown sample (what gmetad
    /// writes for a host that has stopped reporting).
    pub fn update(&mut self, t: u64, values: &[f64]) -> Result<(), RrdError> {
        if t <= self.last_update {
            return Err(RrdError::UpdateInPast {
                last: self.last_update,
                attempted: t,
            });
        }
        let ds_count = self.spec.data_sources.len();
        if values.len() != ds_count {
            return Err(RrdError::ValueCountMismatch {
                expected: ds_count,
                got: values.len(),
            });
        }
        let interval = t - self.last_update;
        // Convert raw values into rates for the elapsed interval.
        let mut rates = vec![f64::NAN; ds_count];
        for (i, ds) in self.spec.data_sources.iter().enumerate() {
            let raw = values[i];
            let rate = if raw.is_nan() || interval > ds.heartbeat {
                f64::NAN
            } else {
                match ds.dst {
                    DataSourceType::Gauge => raw,
                    DataSourceType::Counter => {
                        let prev = self.last_raw[i];
                        if prev.is_nan() || raw < prev {
                            f64::NAN // first sample or counter reset
                        } else {
                            (raw - prev) / interval as f64
                        }
                    }
                    DataSourceType::Derive => {
                        let prev = self.last_raw[i];
                        if prev.is_nan() {
                            f64::NAN
                        } else {
                            (raw - prev) / interval as f64
                        }
                    }
                    DataSourceType::Absolute => raw / interval as f64,
                }
            };
            rates[i] = if !rate.is_nan() && ds.out_of_bounds(rate) {
                f64::NAN
            } else {
                rate
            };
            self.last_raw[i] = raw;
        }
        self.advance(t, &rates);
        self.update_count += 1;
        Ok(())
    }

    /// Record an explicitly-unknown sample for every data source.
    pub fn update_unknown(&mut self, t: u64) -> Result<(), RrdError> {
        let nans = vec![f64::NAN; self.spec.data_sources.len()];
        self.update(t, &nans)
    }

    /// Walk time forward to `t`, accumulating `rates` into PDPs and
    /// feeding completed PDPs to every archive.
    fn advance(&mut self, t: u64, rates: &[f64]) {
        let step = self.spec.step;
        let ds_count = rates.len();
        let start_index = self.last_update / step; // completed boundaries so far
        let end_index = t / step;

        if end_index == start_index {
            // Entirely within the current step: accumulate and return.
            let secs = t - self.last_update;
            self.accumulate_partial(rates, secs);
            self.last_update = t;
            return;
        }

        // 1. Close out the current step.
        let first_boundary = (start_index + 1) * step;
        let head_secs = first_boundary - self.last_update;
        self.accumulate_partial(rates, head_secs);
        let first_pdp: Vec<f64> = (0..ds_count).map(|i| self.take_pdp(i)).collect();

        // 2. Whole steps strictly inside the interval all have PDP = rate.
        let whole_steps = (end_index - start_index - 1) as usize;

        for archive in &mut self.archives {
            archive.feed_identical(&first_pdp, 1, start_index + 1, step);
            if whole_steps > 0 {
                archive.feed_identical(rates, whole_steps, end_index, step);
            }
        }

        // 3. Tail partial step.
        let tail_secs = t - end_index * step;
        self.accumulate_partial(rates, tail_secs);
        self.last_update = t;
    }

    fn accumulate_partial(&mut self, rates: &[f64], secs: u64) {
        if secs == 0 {
            return;
        }
        for (i, &rate) in rates.iter().enumerate() {
            if !rate.is_nan() {
                self.pdp_sum[i] += rate * secs as f64;
                self.pdp_known[i] += secs;
            }
        }
    }

    /// Finish the current PDP for data source `i` and reset its scratch.
    fn take_pdp(&mut self, i: usize) -> f64 {
        let known = self.pdp_known[i];
        let pdp = if known * 2 >= self.spec.step {
            self.pdp_sum[i] / known as f64
        } else {
            f64::NAN
        };
        self.pdp_sum[i] = 0.0;
        self.pdp_known[i] = 0;
        pdp
    }

    /// Fetch consolidated history for data source index `ds` over
    /// `(start, end]`, using the finest archive with `cf` that reaches
    /// back to `start`.
    pub fn fetch(
        &self,
        ds: usize,
        cf: ConsolidationFn,
        start: u64,
        end: u64,
    ) -> Result<Series, RrdError> {
        let step = self.spec.step;
        let mut candidates: Vec<&Archive> =
            self.archives.iter().filter(|a| a.def.cf == cf).collect();
        if candidates.is_empty() {
            return Err(RrdError::NoSuchArchive);
        }
        candidates.sort_by_key(|a| a.def.pdp_per_row);
        // Prefer the finest archive whose history reaches back to `start`;
        // failing that, the archive with the deepest available history;
        // failing that (nothing written yet), the finest archive.
        let chosen = candidates
            .iter()
            .find(|a| matches!(a.earliest_row_time(step), Some(e) if e <= start.saturating_add(1)))
            .copied()
            .or_else(|| {
                candidates
                    .iter()
                    .copied()
                    .filter(|a| a.written > 0)
                    .min_by_key(|a| a.earliest_row_time(step).expect("written > 0"))
            })
            .unwrap_or_else(|| candidates[0]);
        let row_secs = chosen.row_secs(step);
        let first = start / row_secs * row_secs + row_secs; // first row time > start
        let last = end / row_secs * row_secs; // last row time <= end
        let mut values = Vec::new();
        let mut t = first;
        while t <= last {
            values.push(chosen.lookup(ds, t, step));
            t += row_secs;
        }
        Ok(Series {
            start: first,
            step: row_secs,
            values,
        })
    }

    /// The archive resolutions available for a given CF, finest first
    /// (seconds per row).
    pub fn resolutions(&self, cf: ConsolidationFn) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .archives
            .iter()
            .filter(|a| a.def.cf == cf)
            .map(|a| a.row_secs(self.spec.step))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ganglia_default_spec, DataSourceDef, RrdSpec};

    fn simple_spec(step: u64, heartbeat: u64) -> RrdSpec {
        RrdSpec {
            step,
            start: 0,
            data_sources: vec![DataSourceDef::gauge("m", heartbeat)],
            archives: vec![RraDef::average(1, 100), RraDef::average(10, 100)],
        }
    }

    #[test]
    fn gauge_updates_produce_averaged_pdps() {
        let mut rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        rrd.update(10, &[4.0]).unwrap();
        rrd.update(20, &[8.0]).unwrap();
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 20).unwrap();
        assert_eq!(series.step, 10);
        assert_eq!(series.values.len(), 2);
        assert!((series.values[0] - 4.0).abs() < 1e-12);
        assert!((series.values[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sub_step_updates_are_time_weighted() {
        let mut rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        rrd.update(5, &[2.0]).unwrap(); // covers (0,5] at rate 2
        rrd.update(10, &[6.0]).unwrap(); // covers (5,10] at rate 6
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 10).unwrap();
        assert!((series.values[0] - 4.0).abs() < 1e-12); // (2*5 + 6*5)/10
    }

    #[test]
    fn heartbeat_gap_becomes_unknown() {
        let mut rrd = Rrd::create(simple_spec(10, 25)).unwrap();
        rrd.update(10, &[1.0]).unwrap();
        // 40-second silence exceeds the 25 s heartbeat: the gap is unknown.
        rrd.update(50, &[1.0]).unwrap();
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 50).unwrap();
        assert!(!series.values[0].is_nan()); // (0,10] known
        assert!(series.values[1].is_nan());
        assert!(series.values[2].is_nan());
        assert!(series.values[3].is_nan());
    }

    #[test]
    fn explicit_unknown_updates() {
        let mut rrd = Rrd::create(simple_spec(10, 1000)).unwrap();
        rrd.update(10, &[5.0]).unwrap();
        rrd.update_unknown(20).unwrap();
        rrd.update(30, &[5.0]).unwrap();
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 30).unwrap();
        assert!(!series.values[0].is_nan());
        assert!(series.values[1].is_nan());
        assert!(!series.values[2].is_nan());
        assert_eq!(series.known_count(), 2);
    }

    #[test]
    fn counter_differences_and_reset() {
        let spec = RrdSpec {
            step: 10,
            start: 0,
            data_sources: vec![DataSourceDef {
                name: "pkts".into(),
                dst: DataSourceType::Counter,
                heartbeat: 100,
                min: f64::NAN,
                max: f64::NAN,
            }],
            archives: vec![RraDef::average(1, 10)],
        };
        let mut rrd = Rrd::create(spec).unwrap();
        rrd.update(10, &[1000.0]).unwrap(); // first sample: unknown rate
        rrd.update(20, &[1500.0]).unwrap(); // 50/sec
        rrd.update(30, &[100.0]).unwrap(); // reset: unknown
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 30).unwrap();
        assert!(series.values[0].is_nan());
        assert!((series.values[1] - 50.0).abs() < 1e-12);
        assert!(series.values[2].is_nan());
    }

    #[test]
    fn consolidation_into_coarser_archive() {
        let mut rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        for i in 1..=20u64 {
            rrd.update(i * 10, &[i as f64]).unwrap();
        }
        // The 10-pdp archive has two rows: mean of 1..=10 and 11..=20.
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 200).unwrap();
        // Fine archive still covers this window; force the coarse one by
        // fetching a window older than the fine archive's reach.
        let coarse = &rrd.archives[1];
        assert_eq!(coarse.written, 2);
        assert!((coarse.lookup(0, 100, 10) - 5.5).abs() < 1e-12);
        assert!((coarse.lookup(0, 200, 10) - 15.5).abs() < 1e-12);
        assert_eq!(series.values.len(), 20);
    }

    #[test]
    fn fetch_picks_coarse_archive_for_old_windows() {
        let mut rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        // Write 150 steps; the fine archive holds only the last 100.
        for i in 1..=150u64 {
            rrd.update(i * 10, &[1.0]).unwrap();
        }
        let recent = rrd.fetch(0, ConsolidationFn::Average, 1000, 1500).unwrap();
        assert_eq!(recent.step, 10); // fine archive reaches back to t=510
        let old = rrd.fetch(0, ConsolidationFn::Average, 0, 1500).unwrap();
        assert_eq!(old.step, 100); // needs the coarse archive
        assert!(old.known_count() > 0);
    }

    #[test]
    fn ring_wraps_and_keeps_recent_rows() {
        let mut rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        for i in 1..=250u64 {
            rrd.update(i * 10, &[i as f64]).unwrap();
        }
        let fine = &rrd.archives[0];
        assert_eq!(fine.written, 100);
        // Oldest surviving fine row is at t = (250-99)*10.
        assert_eq!(fine.earliest_row_time(10), Some(1510));
        assert!(fine.lookup(0, 1500, 10).is_nan());
        assert!((fine.lookup(0, 2500, 10) - 250.0).abs() < 1e-12);
    }

    #[test]
    fn huge_gap_fast_forward_is_consistent() {
        let mut rrd = Rrd::create(simple_spec(10, u64::MAX)).unwrap();
        rrd.update(10, &[1.0]).unwrap();
        // Jump 100k steps ahead with a constant rate; the ring must hold
        // the steady-state value everywhere.
        rrd.update(1_000_010, &[3.0]).unwrap();
        let series = rrd
            .fetch(0, ConsolidationFn::Average, 999_100, 1_000_000)
            .unwrap();
        assert_eq!(series.step, 10);
        assert!(series.values.iter().all(|v| (*v - 3.0).abs() < 1e-12));
        // And updates continue normally afterwards.
        rrd.update(1_000_020, &[5.0]).unwrap();
        let tail = rrd
            .fetch(0, ConsolidationFn::Average, 1_000_000, 1_000_020)
            .unwrap();
        assert!((tail.values.last().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn update_ordering_and_arity_errors() {
        let mut rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        rrd.update(10, &[1.0]).unwrap();
        assert!(matches!(
            rrd.update(10, &[1.0]),
            Err(RrdError::UpdateInPast { .. })
        ));
        assert!(matches!(
            rrd.update(20, &[1.0, 2.0]),
            Err(RrdError::ValueCountMismatch { .. })
        ));
    }

    #[test]
    fn fetch_unknown_cf_fails() {
        let rrd = Rrd::create(simple_spec(10, 100)).unwrap();
        assert!(matches!(
            rrd.fetch(0, ConsolidationFn::Max, 0, 100),
            Err(RrdError::NoSuchArchive)
        ));
    }

    #[test]
    fn min_max_last_consolidation() {
        let spec = RrdSpec {
            step: 10,
            start: 0,
            data_sources: vec![DataSourceDef::gauge("m", 100)],
            archives: vec![
                RraDef {
                    cf: ConsolidationFn::Min,
                    xff: 0.5,
                    pdp_per_row: 5,
                    rows: 10,
                },
                RraDef {
                    cf: ConsolidationFn::Max,
                    xff: 0.5,
                    pdp_per_row: 5,
                    rows: 10,
                },
                RraDef {
                    cf: ConsolidationFn::Last,
                    xff: 0.5,
                    pdp_per_row: 5,
                    rows: 10,
                },
            ],
        };
        let mut rrd = Rrd::create(spec).unwrap();
        for (i, v) in [3.0, 9.0, 1.0, 7.0, 5.0].iter().enumerate() {
            rrd.update((i as u64 + 1) * 10, &[*v]).unwrap();
        }
        let min = rrd.fetch(0, ConsolidationFn::Min, 0, 50).unwrap();
        let max = rrd.fetch(0, ConsolidationFn::Max, 0, 50).unwrap();
        let last = rrd.fetch(0, ConsolidationFn::Last, 0, 50).unwrap();
        assert_eq!(min.values, vec![1.0]);
        assert_eq!(max.values, vec![9.0]);
        assert_eq!(last.values, vec![5.0]);
    }

    #[test]
    fn xff_controls_partially_unknown_rows() {
        // 10 PDPs per row, xff=0.5: a row with >50% unknown is unknown.
        let spec = RrdSpec {
            step: 10,
            start: 0,
            data_sources: vec![DataSourceDef::gauge("m", 15)],
            archives: vec![RraDef::average(10, 10)],
        };
        let mut rrd = Rrd::create(spec).unwrap();
        // 4 known PDPs, then 6 unknown (heartbeat 15 < 60s gap).
        for i in 1..=4u64 {
            rrd.update(i * 10, &[2.0]).unwrap();
        }
        rrd.update(100, &[2.0]).unwrap(); // gap of 60 s: unknown
        let archive = &rrd.archives[0];
        assert_eq!(archive.written, 1);
        assert!(archive.lookup(0, 100, 10).is_nan());
    }

    #[test]
    fn default_ganglia_spec_records_a_day() {
        let mut rrd = Rrd::create(ganglia_default_spec("load_one", 0)).unwrap();
        let mut t = 0;
        for i in 0..5760u64 {
            t = (i + 1) * 15;
            rrd.update(t, &[(i % 100) as f64 / 10.0]).unwrap();
        }
        // Recent window at full resolution.
        let recent = rrd.fetch(0, ConsolidationFn::Average, t - 3600, t).unwrap();
        assert_eq!(recent.step, 15);
        assert!(recent.known_count() > 200);
        // Day-long window falls back to the 6-minute archive.
        let day = rrd.fetch(0, ConsolidationFn::Average, 0, t).unwrap();
        assert_eq!(day.step, 15 * 24);
        assert!(day.known_count() > 200);
        assert_eq!(rrd.update_count(), 5760);
    }

    #[test]
    fn series_helpers() {
        let series = Series {
            start: 100,
            step: 10,
            values: vec![1.0, f64::NAN, 3.0],
        };
        let pts: Vec<_> = series.points().collect();
        assert_eq!(pts[0].0, 100);
        assert_eq!(pts[2].0, 120);
        assert_eq!(series.known_count(), 2);
        assert_eq!(series.mean(), Some(2.0));
        let empty = Series {
            start: 0,
            step: 10,
            values: vec![f64::NAN],
        };
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn bounds_clamp_to_unknown() {
        let spec = RrdSpec {
            step: 10,
            start: 0,
            data_sources: vec![DataSourceDef {
                name: "pct".into(),
                dst: DataSourceType::Gauge,
                heartbeat: 100,
                min: 0.0,
                max: 100.0,
            }],
            archives: vec![RraDef::average(1, 10)],
        };
        let mut rrd = Rrd::create(spec).unwrap();
        rrd.update(10, &[150.0]).unwrap();
        rrd.update(20, &[50.0]).unwrap();
        let series = rrd.fetch(0, ConsolidationFn::Average, 0, 20).unwrap();
        assert!(series.values[0].is_nan());
        assert!((series.values[1] - 50.0).abs() < 1e-12);
    }
}
