//! Startup recovery: scan a journal, drop the torn tail, replay.
//!
//! Recovery invariants (see DESIGN.md §14):
//!
//! 1. **Prefix durability.** A journal on disk is a valid header
//!    followed by zero or more well-framed records and, possibly, one
//!    torn tail produced by a crash mid-write. The scan accepts the
//!    longest valid prefix and discards everything after the first
//!    short frame or CRC mismatch — never a record beyond the tear.
//! 2. **Idempotent replay.** Replaying a record whose timestamp is at
//!    or before the database's `last_update` is a no-op (the
//!    [`RrdError::UpdateInPast`] gate), so records that were already
//!    checkpointed into the `.rrd` files — or replayed once before a
//!    second crash — apply cleanly a second time.
//! 3. **Repair before reuse.** The torn tail is physically truncated
//!    off before the journal is appended to again; otherwise the next
//!    commit would land *after* garbage and be unreachable to a future
//!    scan.

use std::io::Read;
use std::path::Path;

use crate::cache::RrdSet;
use crate::error::RrdError;
use crate::journal::{crc32, JournalRecord, JOURNAL_MAGIC};

/// Outcome of scanning one journal file.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// Shard label from the header, if the header was intact.
    pub label: Option<String>,
    /// Records in the longest valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of the valid prefix (header + accepted records).
    pub valid_bytes: u64,
    /// Bytes discarded after the first bad frame (0 = clean file).
    pub torn_bytes: u64,
}

impl JournalScan {
    /// Whether the scan hit a torn tail.
    pub fn torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Scan `path`, accepting the longest valid prefix of records.
///
/// A missing file scans as empty. A file too short or mangled to even
/// carry its header yields no label and no records, with everything
/// counted as torn — the caller decides whether that is fatal.
pub fn scan_journal(path: &Path) -> Result<JournalScan, RrdError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(e.into()),
    };
    Ok(scan_bytes(&bytes))
}

/// Scan an in-memory journal image (the parsing core of
/// [`scan_journal`], exposed for tests and fault injection).
pub fn scan_bytes(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan::default();
    let total = bytes.len() as u64;
    let mut input = bytes;

    // Header: magic | u16 label_len | label | u32 crc32(label).
    let mut ok = input.len() >= JOURNAL_MAGIC.len() + 2
        && &input[..JOURNAL_MAGIC.len()] == JOURNAL_MAGIC.as_slice();
    if ok {
        input = &input[JOURNAL_MAGIC.len()..];
        let label_len = u16::from_be_bytes([input[0], input[1]]) as usize;
        input = &input[2..];
        if input.len() >= label_len + 4 {
            let label_raw = &input[..label_len];
            let crc = u32::from_be_bytes(input[label_len..label_len + 4].try_into().unwrap());
            match std::str::from_utf8(label_raw) {
                Ok(label) if crc32(label_raw) == crc => {
                    scan.label = Some(label.to_string());
                    input = &input[label_len + 4..];
                }
                _ => ok = false,
            }
        } else {
            ok = false;
        }
    }
    if !ok {
        scan.torn_bytes = total;
        return scan;
    }

    // Records: u32 len | u32 crc | payload, until the first bad frame.
    loop {
        if input.is_empty() {
            break;
        }
        if input.len() < 8 {
            break; // torn frame header
        }
        let len = u32::from_be_bytes(input[..4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(input[4..8].try_into().unwrap());
        if len > 1 << 20 || input.len() < 8 + len {
            break; // absurd length or torn payload
        }
        let payload = &input[8..8 + len];
        if crc32(payload) != crc {
            break; // corrupted payload
        }
        match JournalRecord::decode_payload(payload) {
            Ok(record) => scan.records.push(record),
            Err(_) => break, // framing ok but contents unparseable
        }
        input = &input[8 + len..];
    }
    scan.torn_bytes = input.len() as u64;
    scan.valid_bytes = total - scan.torn_bytes;
    scan
}

/// Scan `path` and, if a torn tail was found, truncate the file back to
/// its valid prefix (fsynced) so future appends extend a clean log.
pub fn scan_and_repair(path: &Path) -> Result<JournalScan, RrdError> {
    let scan = scan_journal(path)?;
    if scan.torn() {
        if scan.label.is_none() {
            // Even the header is unusable: the whole file is garbage.
            // Leave removal policy to the caller; truncating to zero
            // would just recreate an empty-but-present file.
            return Ok(scan);
        }
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_bytes)?;
        file.sync_all()?;
    }
    Ok(scan)
}

/// Counters from replaying scanned records into a set.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayStats {
    /// Records that applied a new update.
    pub applied: u64,
    /// Records skipped because the update was already present
    /// (`last_update` gate) — the idempotent-replay case.
    pub noops: u64,
    /// Records rejected for any other reason (kept for telemetry;
    /// should be zero in practice).
    pub errors: u64,
}

/// Replay `records` into `set` without re-journaling them.
pub fn replay(set: &mut RrdSet, records: &[JournalRecord]) -> ReplayStats {
    let mut stats = ReplayStats::default();
    for record in records {
        match set.apply_unjournaled(&record.key, record.ts, record.value) {
            Ok(()) => stats.applied += 1,
            Err(RrdError::UpdateInPast { .. }) => stats.noops += 1,
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Verify a journal header and return its label (used to map `.wal`
/// files back to shards without trusting file names).
pub fn read_label(path: &Path) -> Result<Option<String>, RrdError> {
    let mut file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // Header is tiny; read at most magic + len + max label + crc.
    let mut head = Vec::with_capacity(JOURNAL_MAGIC.len() + 2 + u16::MAX as usize + 4);
    file.by_ref()
        .take((JOURNAL_MAGIC.len() + 2 + u16::MAX as usize + 4) as u64)
        .read_to_end(&mut head)?;
    Ok(scan_bytes(&head).label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MetricKey;
    use crate::journal::Journal;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ganglia-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.wal")
    }

    fn record(i: u64) -> JournalRecord {
        JournalRecord {
            key: MetricKey::host_metric("meteor", format!("n{i}"), "load_one"),
            ts: i * 15,
            value: i as f64,
        }
    }

    #[test]
    fn clean_journal_scans_fully() {
        let path = temp_path("clean");
        let mut journal = Journal::new(&path, "meteor");
        for i in 1..=10 {
            journal.append(&record(i));
        }
        journal.commit().unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.label.as_deref(), Some("meteor"));
        assert_eq!(scan.records.len(), 10);
        assert!(!scan.torn());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_at_every_offset() {
        let path = temp_path("torn");
        let mut journal = Journal::new(&path, "meteor");
        for i in 1..=4 {
            journal.append(&record(i));
        }
        journal.commit().unwrap();
        let image = std::fs::read(&path).unwrap();
        let header_len = Journal::encode_header("meteor").len();
        for cut in 0..image.len() {
            let scan = scan_bytes(&image[..cut]);
            assert!(scan.records.len() <= 4, "cut={cut}");
            if cut < header_len {
                assert!(scan.label.is_none(), "cut={cut}");
            }
            // Every accepted record is bit-exact — a tear never
            // produces a *wrong* record, only fewer records.
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(*r, record(i as u64 + 1), "cut={cut}");
            }
        }
        // Corruption (not truncation) at every offset: flip one byte.
        for i in 0..image.len() {
            let mut mangled = image.clone();
            mangled[i] ^= 0xFF;
            let scan = scan_bytes(&mangled);
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(*r, record(i as u64 + 1));
            }
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn repair_truncates_then_appends_cleanly() {
        let path = temp_path("repair");
        let mut journal = Journal::new(&path, "meteor");
        journal.append(&record(1));
        journal.append(&record(2));
        journal.commit().unwrap();
        // Tear the last record in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let scan = scan_and_repair(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), scan.valid_bytes);

        // A fresh journal handle appends after the repaired prefix and
        // the log stays fully readable.
        let mut journal = Journal::new(&path, "meteor");
        journal.append(&record(3));
        journal.commit().unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn());
        assert_eq!(scan.records[1], record(3));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn read_label_reads_only_the_header() {
        let path = temp_path("label");
        let mut journal = Journal::new(&path, "ucsd/phys");
        journal.append(&record(1));
        journal.commit().unwrap();
        assert_eq!(read_label(&path).unwrap().as_deref(), Some("ucsd/phys"));
        assert_eq!(read_label(Path::new("/nonexistent/x.wal")).unwrap(), None);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
