//! Aligned multi-series export, in the spirit of `rrdtool xport`.
//!
//! Graph pages plot several metrics of one host (or one metric across
//! hosts) on a shared time axis. [`xport`] fetches each requested series
//! and resamples them onto one common grid — the coarsest step among
//! them — so rows line up even when the sources fell back to different
//! archive resolutions.

use crate::error::RrdError;
use crate::rrd::{Rrd, Series};
use crate::spec::ConsolidationFn;

/// One aligned export.
#[derive(Debug, Clone, PartialEq)]
pub struct Xport {
    /// Timestamp of the first row (interval end).
    pub start: u64,
    /// Seconds between rows.
    pub step: u64,
    /// Column labels, in request order.
    pub labels: Vec<String>,
    /// Rows of values, one per time step; `NAN` marks unknown cells.
    pub rows: Vec<Vec<f64>>,
}

impl Xport {
    /// Iterate `(timestamp, row)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (u64, &[f64])> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(move |(i, row)| (self.start + i as u64 * self.step, row.as_slice()))
    }
}

/// Fetch several databases over a shared window and align them.
///
/// Each entry is `(label, database, data-source index)`. Returns an
/// empty export for an empty request.
pub fn xport(
    requests: &[(&str, &Rrd, usize)],
    cf: ConsolidationFn,
    window_start: u64,
    window_end: u64,
) -> Result<Xport, RrdError> {
    if requests.is_empty() {
        return Ok(Xport {
            start: window_start,
            step: 1,
            labels: Vec::new(),
            rows: Vec::new(),
        });
    }
    let mut series = Vec::with_capacity(requests.len());
    for (_, rrd, ds) in requests {
        series.push(rrd.fetch(*ds, cf, window_start, window_end)?);
    }
    // Resample everything onto the coarsest grid.
    let step = series.iter().map(|s| s.step).max().expect("non-empty");
    let start = window_start / step * step + step;
    let mut rows = Vec::new();
    let mut t = start;
    while t <= window_end {
        let row = series.iter().map(|s| sample(s, t, step)).collect();
        rows.push(row);
        t += step;
    }
    Ok(Xport {
        start,
        step,
        labels: requests.iter().map(|(l, _, _)| l.to_string()).collect(),
        rows,
    })
}

/// Average of the known values of `series` inside the window `(t-step, t]`.
fn sample(series: &Series, t: u64, step: u64) -> f64 {
    let window_start = t.saturating_sub(step);
    let mut sum = 0.0;
    let mut count = 0u32;
    for (ts, v) in series.points() {
        if ts > window_start && ts <= t && !v.is_nan() {
            sum += v;
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / f64::from(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DataSourceDef, RraDef, RrdSpec};

    fn rrd_with(step: u64, values: &[f64]) -> Rrd {
        let spec = RrdSpec {
            step,
            start: 0,
            data_sources: vec![DataSourceDef::gauge("m", step * 4)],
            archives: vec![RraDef::average(1, 128)],
        };
        let mut rrd = Rrd::create(spec).unwrap();
        for (i, v) in values.iter().enumerate() {
            rrd.update((i as u64 + 1) * step, &[*v]).unwrap();
        }
        rrd
    }

    #[test]
    fn same_step_series_align_directly() {
        let a = rrd_with(10, &[1.0, 2.0, 3.0, 4.0]);
        let b = rrd_with(10, &[10.0, 20.0, 30.0, 40.0]);
        let out = xport(
            &[("a", &a, 0), ("b", &b, 0)],
            ConsolidationFn::Average,
            0,
            40,
        )
        .unwrap();
        assert_eq!(out.step, 10);
        assert_eq!(out.labels, vec!["a", "b"]);
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[2], vec![3.0, 30.0]);
        let pairs: Vec<(u64, &[f64])> = out.iter_rows().collect();
        assert_eq!(pairs[0].0, 10);
        assert_eq!(pairs[3].0, 40);
    }

    #[test]
    fn mixed_steps_resample_to_the_coarsest() {
        let fine = rrd_with(10, &[2.0; 12]); // constant 2.0, 10 s step
        let coarse = rrd_with(30, &[5.0, 7.0, 9.0, 11.0]); // 30 s step
        let out = xport(
            &[("fine", &fine, 0), ("coarse", &coarse, 0)],
            ConsolidationFn::Average,
            0,
            120,
        )
        .unwrap();
        assert_eq!(out.step, 30);
        assert_eq!(out.rows.len(), 4);
        // Fine series averages to its constant; coarse passes through.
        assert_eq!(out.rows[0], vec![2.0, 5.0]);
        assert_eq!(out.rows[3], vec![2.0, 11.0]);
    }

    #[test]
    fn unknown_cells_stay_unknown() {
        let mut sparse = rrd_with(10, &[1.0]);
        sparse.update_unknown(20).unwrap();
        sparse.update(30, &[3.0]).unwrap();
        let out = xport(&[("s", &sparse, 0)], ConsolidationFn::Average, 0, 30).unwrap();
        assert!(!out.rows[0][0].is_nan());
        assert!(out.rows[1][0].is_nan());
        assert!(!out.rows[2][0].is_nan());
    }

    #[test]
    fn empty_request_is_empty_export() {
        let out = xport(&[], ConsolidationFn::Average, 0, 100).unwrap();
        assert!(out.rows.is_empty());
        assert!(out.labels.is_empty());
    }
}
